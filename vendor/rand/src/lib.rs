//! Offline stand-in for the subset of the `rand` 0.8 API used in this
//! workspace (`Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64`,
//! the prelude). The container building this repository has no access to
//! crates.io, so the handful of external crates the workspace relies on are
//! vendored as minimal, API-compatible implementations.
//!
//! The statistical quality target is "good enough for randomized numerical
//! tests and matrix generators": generators are expected to be seeded
//! explicitly, and every use in the workspace is seed-deterministic.

use std::ops::Range;

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convert 64 random bits to a double in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, as rand's Standard distribution does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Element types that [`gen_range`](Rng::gen_range) can sample uniformly.
/// One blanket `SampleRange` impl over this trait (mirroring rand's
/// structure) keeps type inference working with unsuffixed float literals.
pub trait SampleUniform: PartialOrd + Sized {
    fn sample_half_open<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(range: Range<$t>, rng: &mut R) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias at these span sizes is irrelevant for tests.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, i64, i32, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(range: Range<f64>, rng: &mut R) -> f64 {
        assert!(range.start < range.end, "empty range in gen_range");
        let u = unit_f64(rng.next_u64());
        let v = range.start + u * (range.end - range.start);
        // Guard the half-open contract against rounding at the top end.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(range: Range<f32>, rng: &mut R) -> f32 {
        let r = f64::sample_half_open(range.start as f64..range.end as f64, rng) as f32;
        r.clamp(
            range.start,
            f32::from_bits(range.end.to_bits().wrapping_sub(1)),
        )
    }
}

/// Ranges that can be sampled uniformly (the subset of distributions used:
/// half-open integer and float ranges).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self, rng)
    }
}

/// Seedable generators (explicit-seed construction only).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand one `u64` into a full seed via SplitMix64 (the same scheme
    /// rand uses for `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (si, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *si = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Never all-zero.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..0.5);
            assert!((-2.0..0.5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..4000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "{lo} {hi}");
    }
}
