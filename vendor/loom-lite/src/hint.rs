//! Spin-loop hint: under the model a spin iteration is a *deprioritizing*
//! schedule point (`rt::Execution::yield_spin`) — the scheduler runs some
//! other thread before the spinner's next iteration, so bounded spin-waits
//! (a claimed slot whose writer hasn't stored yet, a next-block install)
//! terminate under DFS instead of unrolling into false livelock reports.
//! Outside a model run it is a plain no-op.

use crate::rt;

pub fn spin_loop() {
    if let Some((exec, tid)) = rt::current() {
        exec.yield_spin(tid);
    }
}
