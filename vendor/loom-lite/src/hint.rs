//! Spin-loop hint: under the model a spin is just a schedule point, so
//! spin-wait loops make progress instead of monopolizing the one active
//! virtual thread.

pub fn spin_loop() {
    crate::rt::yield_if_ctx();
}
