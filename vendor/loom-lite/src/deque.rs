//! Instrumented work-stealing deque mirroring the `crossbeam-deque` API
//! subset the pool uses. Built on the model [`Mutex`], so every queue
//! operation is a schedule point and steal/pop races are explored.
//!
//! Since PR 7 the runtime's `dcst_sync` no longer routes through this
//! module: the real `crossbeam-deque` (lock-free Chase–Lev + segment-list
//! injector) swaps its own atomics to this crate's instrumented ones under
//! `--cfg dcst_model_check`, so the pool-level model suite explores the
//! actual protocol. This mutex-based mirror stays as a known-good oracle
//! for loom-lite's self-tests.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Empty => f(),
            other => other,
        }
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// First success wins; otherwise `Retry` if any source needs a retry.
impl<T> FromIterator<Steal<T>> for Steal<T> {
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut retry = false;
        for s in iter {
            match s {
                Steal::Success(v) => return Steal::Success(v),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

/// A worker's local queue; owners pop LIFO or FIFO by flavor, stealers
/// always take the oldest item.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    pub fn push(&self, value: T) {
        self.queue.lock().push_back(value);
    }

    pub fn pop(&self) -> Option<T> {
        let mut q = self.queue.lock();
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }
}

/// Global injector queue shared by all workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, value: T) {
        self.queue.lock().push_back(value);
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Pop one task and move a batch of follow-ons to `dest` (half the
    /// queue, capped like crossbeam's batch limit).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock();
        let first = match q.pop_front() {
            Some(v) => v,
            None => return Steal::Empty,
        };
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut d = dest.queue.lock();
            for _ in 0..batch {
                match q.pop_front() {
                    Some(v) => d.push_back(v),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}
