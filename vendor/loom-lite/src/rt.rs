//! The cooperative scheduler: one OS thread per virtual thread, exactly one
//! runnable at a time, every instrumented operation a schedule point.

use std::cell::RefCell;
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

/// One recorded scheduling decision: index `chosen` out of `alts` runnable
/// threads. Only decision points with more than one alternative are
/// recorded, so the DFS tree contains no trivial nodes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub alts: usize,
}

/// How the scheduler resolves multi-way decision points.
pub(crate) enum Mode {
    /// Replay `prefix`, then always pick the first runnable thread
    /// (depth-first systematic exploration).
    Dfs { prefix: Vec<Choice> },
    /// SplitMix64-driven random choice; same state, same schedule.
    Random { state: u64 },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    /// Parked by [`Execution::yield_spin`]: runnable in principle, but
    /// deprioritized until another thread has been scheduled. Spinning
    /// twice in a row with no intervening step by anyone else is
    /// stutter-equivalent to spinning once (the spinner re-reads unchanged
    /// state), so excluding the spinner from the very next decision loses
    /// no interleavings — and it keeps the DFS from unrolling bounded
    /// spin-waits (slot-write waits, next-block installs in the lock-free
    /// queues) into false livelock reports.
    Yielded,
    Blocked,
    Finished,
}

struct Inner {
    states: Vec<TState>,
    /// The single virtual thread allowed to run right now.
    active: usize,
    /// Decision trace of this execution (branching points only).
    choices: Vec<Choice>,
    replay_pos: usize,
    mode: Mode,
    yields: usize,
    max_yields: usize,
    failure: Option<String>,
    /// Set on failure: every thread parks forever at its next schedule
    /// point instead of continuing a broken execution.
    abandoned: bool,
    /// Set when every registered thread finished.
    complete: bool,
    /// Threads blocked in `join` on the indexed thread.
    join_waiters: Vec<Vec<usize>>,
}

/// Shared state of one execution. Virtual threads and the monitor all hold
/// an `Arc` to it; the `OsCondvar` is the only real blocking primitive in
/// the whole model.
pub(crate) struct Execution {
    inner: OsMutex<Inner>,
    cv: OsCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The executing virtual thread's (execution, tid), if any. `None` outside
/// a model run — instrumented types then fall back to plain behaviour.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

/// Schedule point for the current thread, if one exists.
pub(crate) fn yield_if_ctx() {
    if let Some((exec, tid)) = current() {
        exec.yield_point(tid);
    }
}

fn park_forever() -> ! {
    loop {
        std::thread::park();
    }
}

fn lock_inner(exec: &Execution) -> std::sync::MutexGuard<'_, Inner> {
    // A virtual thread can only panic outside `inner`'s critical sections,
    // so poisoning here means a bug in the scheduler itself.
    exec.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl Execution {
    pub fn new(mode: Mode, max_yields: usize) -> Arc<Self> {
        Arc::new(Execution {
            inner: OsMutex::new(Inner {
                states: Vec::new(),
                active: 0,
                choices: Vec::new(),
                replay_pos: 0,
                mode,
                yields: 0,
                max_yields,
                failure: None,
                abandoned: false,
                complete: false,
                join_waiters: Vec::new(),
            }),
            cv: OsCondvar::new(),
        })
    }

    /// Register a new virtual thread; returns its tid. The thread starts
    /// `Runnable` but must [`wait_turn`](Self::wait_turn) before touching
    /// anything.
    pub fn register_thread(&self) -> usize {
        let mut g = lock_inner(self);
        g.states.push(TState::Runnable);
        g.join_waiters.push(Vec::new());
        g.states.len() - 1
    }

    /// Block until this thread is the active one.
    pub fn wait_turn(&self, tid: usize) {
        let mut g = lock_inner(self);
        loop {
            if g.abandoned {
                drop(g);
                park_forever();
            }
            if g.active == tid && g.states[tid] == TState::Runnable {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A schedule point: hand the scheduler the chance to switch threads,
    /// then wait until this thread is (again) the active one.
    pub fn yield_point(&self, tid: usize) {
        let mut g = lock_inner(self);
        if g.abandoned {
            drop(g);
            park_forever();
        }
        g.yields += 1;
        if g.yields > g.max_yields {
            let yields = g.yields;
            self.fail_locked(
                &mut g,
                format!("livelock: schedule-point budget ({yields}) exceeded"),
            );
            drop(g);
            park_forever();
        }
        self.pick_next(&mut g);
        loop {
            if g.abandoned {
                drop(g);
                park_forever();
            }
            if g.active == tid && g.states[tid] == TState::Runnable {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Schedule point for one spin-wait iteration: like
    /// [`yield_point`](Self::yield_point), but the caller is deprioritized
    /// (state [`TState::Yielded`]) so another runnable thread — one that
    /// can actually change the state the spinner is waiting on — runs
    /// before the spinner's next iteration. The spinner re-enters the
    /// candidate set at the next decision point, so both spin-first and
    /// progress-first orders are still explored; spin iterations still
    /// consume the schedule-point budget, so genuine livelocks (spinners
    /// waiting on each other) are still reported.
    pub fn yield_spin(&self, tid: usize) {
        let mut g = lock_inner(self);
        if g.abandoned {
            drop(g);
            park_forever();
        }
        g.yields += 1;
        if g.yields > g.max_yields {
            let yields = g.yields;
            self.fail_locked(
                &mut g,
                format!("livelock: schedule-point budget ({yields}) exceeded"),
            );
            drop(g);
            park_forever();
        }
        g.states[tid] = TState::Yielded;
        self.pick_next(&mut g);
        loop {
            if g.abandoned {
                drop(g);
                park_forever();
            }
            if g.active == tid && g.states[tid] == TState::Runnable {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Mark this thread blocked and schedule someone else; returns once a
    /// wakeup ([`set_runnable`](Self::set_runnable)) made it active again.
    ///
    /// Because execution is serialized, the caller may deregister from
    /// whatever wait-list it joined *before* calling this — no other
    /// thread runs in between.
    pub fn block_self(&self, tid: usize) {
        let mut g = lock_inner(self);
        if g.abandoned {
            drop(g);
            park_forever();
        }
        g.states[tid] = TState::Blocked;
        self.pick_next(&mut g);
        loop {
            if g.abandoned {
                drop(g);
                park_forever();
            }
            if g.active == tid && g.states[tid] == TState::Runnable {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Wake a blocked thread (it becomes schedulable, not active).
    pub fn set_runnable(&self, tid: usize) {
        let mut g = lock_inner(self);
        if g.states[tid] == TState::Blocked {
            g.states[tid] = TState::Runnable;
        }
    }

    pub fn is_finished(&self, tid: usize) -> bool {
        lock_inner(self).states[tid] == TState::Finished
    }

    /// Block the current thread (`me`) until `target` finishes. Returns
    /// immediately if it already has.
    pub fn block_on_join(&self, me: usize, target: usize) {
        {
            let mut g = lock_inner(self);
            if g.states[target] == TState::Finished {
                return;
            }
            g.join_waiters[target].push(me);
        }
        self.block_self(me);
    }

    /// Mark this thread finished, wake its joiners, and either complete
    /// the execution or schedule a survivor.
    pub fn finish_thread(&self, tid: usize) {
        let mut g = lock_inner(self);
        if g.abandoned {
            // Don't park: a finished thread has nothing left to corrupt,
            // let its OS thread exit.
            return;
        }
        g.states[tid] = TState::Finished;
        let joiners = std::mem::take(&mut g.join_waiters[tid]);
        for j in joiners {
            if g.states[j] == TState::Blocked {
                g.states[j] = TState::Runnable;
            }
        }
        if g.states.iter().all(|s| *s == TState::Finished) {
            g.complete = true;
            self.cv.notify_all();
        } else {
            self.pick_next(&mut g);
        }
    }

    /// Record a panic that escaped a virtual thread as the execution's
    /// failure and abandon the execution.
    pub fn fail_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        let mut g = lock_inner(self);
        self.fail_locked(&mut g, format!("panic: {message}"));
    }

    /// Monitor side: wait for the execution to complete or fail.
    pub fn wait_outcome(&self) -> (Option<String>, Vec<Choice>) {
        let mut g = lock_inner(self);
        while !g.complete && g.failure.is_none() {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        (g.failure.clone(), g.choices.clone())
    }

    fn fail_locked(&self, g: &mut Inner, message: String) {
        if g.failure.is_none() {
            let trace: Vec<usize> = g.choices.iter().map(|c| c.chosen).collect();
            g.failure = Some(format!(
                "{message} (after {} schedule points; choice trace {:?})",
                g.yields, trace
            ));
        }
        g.abandoned = true;
        self.cv.notify_all();
    }

    /// Pick the next active thread among the runnable ones, recording the
    /// decision when there is a real choice. No runnable threads means the
    /// execution either completed or deadlocked.
    fn pick_next(&self, g: &mut Inner) {
        let mut runnable: Vec<usize> = (0..g.states.len())
            .filter(|&t| g.states[t] == TState::Runnable)
            .collect();
        if runnable.is_empty() {
            // Only spinners left: promote them — a spin loop may
            // legitimately be the only live work (e.g. everyone waits on
            // one slow writer that just got blocked on a model mutex).
            for s in g.states.iter_mut() {
                if *s == TState::Yielded {
                    *s = TState::Runnable;
                }
            }
            runnable = (0..g.states.len())
                .filter(|&t| g.states[t] == TState::Runnable)
                .collect();
        }
        if runnable.is_empty() {
            if g.states.iter().all(|s| *s == TState::Finished) {
                g.complete = true;
                self.cv.notify_all();
            } else {
                let blocked = g.states.iter().filter(|s| **s == TState::Blocked).count();
                self.fail_locked(
                    g,
                    format!("deadlock: {blocked} live thread(s) blocked, none runnable"),
                );
            }
            return;
        }
        let idx = if runnable.len() == 1 {
            0
        } else {
            let n = runnable.len();
            let chosen = match &mut g.mode {
                Mode::Dfs { prefix } => {
                    if g.replay_pos < prefix.len() {
                        let c = prefix[g.replay_pos];
                        g.replay_pos += 1;
                        // Replays are deterministic, so the recorded branch
                        // width must match; clamp defensively in release.
                        debug_assert_eq!(c.alts, n, "non-deterministic replay");
                        c.chosen.min(n - 1)
                    } else {
                        0
                    }
                }
                Mode::Random { state } => {
                    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = *state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    (z % n as u64) as usize
                }
            };
            g.choices.push(Choice { chosen, alts: n });
            chosen
        };
        g.active = runnable[idx];
        // A choice has been made: every spinner re-enters the candidate set
        // at the next decision point (it never runs twice in a row while a
        // non-spinner is runnable, which is what bounds spin-waits).
        for s in g.states.iter_mut() {
            if *s == TState::Yielded {
                *s = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }
}
