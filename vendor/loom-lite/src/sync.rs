//! Instrumented `Mutex`, `Condvar`, and atomics, mirroring the
//! `parking_lot` / `std::sync::atomic` API subset the pool uses.

use crate::rt;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as OsMutex;

struct MState {
    locked: bool,
    /// Tids blocked in `lock`; all are woken on unlock and barge.
    waiters: Vec<usize>,
}

/// Model mutex with the `parking_lot` shape: `lock()` returns the guard
/// directly, no poisoning.
pub struct Mutex<T> {
    state: OsMutex<MState>,
    data: UnsafeCell<T>,
}

// SAFETY: `data` is only reachable through a `MutexGuard`, and `acquire`
// grants the guard to one thread at a time (the `state` lock makes the
// locked-flag handoff atomic even outside a model run).
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above; `&Mutex<T>` only exposes `T` behind the exclusion
// protocol, so sharing the handle across threads is sound for `T: Send`.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            state: OsMutex::new(MState {
                locked: false,
                waiters: Vec::new(),
            }),
            data: UnsafeCell::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.acquire();
        MutexGuard { mutex: self }
    }

    fn acquire(&self) {
        match rt::current() {
            Some((exec, tid)) => loop {
                exec.yield_point(tid);
                let mut st = self.state.lock().expect("model mutex state");
                if !st.locked {
                    st.locked = true;
                    return;
                }
                st.waiters.push(tid);
                drop(st);
                // Serialized execution: nobody can release (and wake us)
                // between the registration above and this block.
                exec.block_self(tid);
            },
            // Outside a model run: plain mutual exclusion via the state
            // lock, spinning on contention (only ever hit by misuse, but
            // must stay sound).
            None => loop {
                let mut st = self.state.lock().expect("model mutex state");
                if !st.locked {
                    st.locked = true;
                    return;
                }
                drop(st);
                std::thread::yield_now();
            },
        }
    }

    fn release(&self) {
        self.release_raw();
        if let Some((exec, tid)) = rt::current() {
            // Unlock is a schedule point too: a woken waiter may barge in
            // before this thread's next operation.
            exec.yield_point(tid);
        }
    }

    /// Unlock and wake waiters WITHOUT a schedule point. Needed by
    /// [`Condvar::wait`]: between its waiter registration and its block
    /// nothing else may run, or a notify landing in that window would be
    /// lost and misreported as a deadlock.
    fn release_raw(&self) {
        let woken = {
            let mut st = self.state.lock().expect("model mutex state");
            st.locked = false;
            std::mem::take(&mut st.waiters)
        };
        if let Some((exec, _)) = rt::current() {
            for w in woken {
                exec.set_runnable(w);
            }
        }
    }
}

pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves this thread holds the exclusion flag.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`; `&mut self` gives unique guard access.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.release();
    }
}

/// Mirror of `parking_lot::WaitTimeoutResult`; the model never times out.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(());

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        false
    }
}

/// Model condvar: no spurious wakeups, `wait_for` never times out. A
/// protocol that needs the timeout for liveness therefore deadlocks under
/// the model — which is the point.
pub struct Condvar {
    waiters: OsMutex<Vec<usize>>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            waiters: OsMutex::new(Vec::new()),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let (exec, tid) = rt::current().expect("model Condvar used outside a model run");
        self.waiters.lock().expect("model condvar state").push(tid);
        // Atomic under serialization: register, release (no schedule
        // point!), block. The next thread runs only once `block_self` has
        // parked this one, so no notify can slip into the gap.
        guard.mutex.release_raw();
        exec.block_self(tid);
        guard.mutex.acquire();
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        self.wait(guard);
        WaitTimeoutResult(())
    }

    pub fn notify_one(&self) {
        let woken = {
            let mut w = self.waiters.lock().expect("model condvar state");
            if w.is_empty() {
                None
            } else {
                Some(w.remove(0))
            }
        };
        if let Some((exec, _)) = rt::current() {
            if let Some(w) = woken {
                exec.set_runnable(w);
            }
        }
    }

    pub fn notify_all(&self) {
        let woken = std::mem::take(&mut *self.waiters.lock().expect("model condvar state"));
        if let Some((exec, _)) = rt::current() {
            for w in woken {
                exec.set_runnable(w);
            }
        }
    }
}

pub mod atomic {
    //! Instrumented atomics: every access is a schedule point; all
    //! orderings execute as sequentially consistent (the scheduler
    //! serializes everything anyway). Backed by real `std` atomics so the
    //! types stay sound even outside a model run.

    use crate::rt;
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self { v: <$std>::new(v) }
                }

                pub fn load(&self, _order: Ordering) -> $prim {
                    rt::yield_if_ctx();
                    self.v.load(Ordering::SeqCst)
                }

                pub fn store(&self, val: $prim, _order: Ordering) {
                    rt::yield_if_ctx();
                    self.v.store(val, Ordering::SeqCst)
                }

                pub fn swap(&self, val: $prim, _order: Ordering) -> $prim {
                    rt::yield_if_ctx();
                    self.v.swap(val, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    rt::yield_if_ctx();
                    self.v
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicIsize, std::sync::atomic::AtomicIsize, isize);

    impl AtomicUsize {
        pub fn fetch_add(&self, val: usize, _order: Ordering) -> usize {
            rt::yield_if_ctx();
            self.v.fetch_add(val, Ordering::SeqCst)
        }

        pub fn fetch_sub(&self, val: usize, _order: Ordering) -> usize {
            rt::yield_if_ctx();
            self.v.fetch_sub(val, Ordering::SeqCst)
        }

        pub fn fetch_or(&self, val: usize, _order: Ordering) -> usize {
            rt::yield_if_ctx();
            self.v.fetch_or(val, Ordering::SeqCst)
        }
    }

    impl AtomicIsize {
        pub fn fetch_add(&self, val: isize, _order: Ordering) -> isize {
            rt::yield_if_ctx();
            self.v.fetch_add(val, Ordering::SeqCst)
        }

        pub fn fetch_sub(&self, val: isize, _order: Ordering) -> isize {
            rt::yield_if_ctx();
            self.v.fetch_sub(val, Ordering::SeqCst)
        }
    }

    /// Instrumented `AtomicPtr`: same shape as the macro-generated atomics,
    /// written out by hand because of the generic parameter.
    #[derive(Debug, Default)]
    pub struct AtomicPtr<T> {
        v: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            Self {
                v: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        pub fn load(&self, _order: Ordering) -> *mut T {
            rt::yield_if_ctx();
            self.v.load(Ordering::SeqCst)
        }

        pub fn store(&self, p: *mut T, _order: Ordering) {
            rt::yield_if_ctx();
            self.v.store(p, Ordering::SeqCst)
        }

        pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
            rt::yield_if_ctx();
            self.v.swap(p, Ordering::SeqCst)
        }

        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            rt::yield_if_ctx();
            self.v
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        }
    }

    /// Instrumented memory fence: a schedule point plus a real fence. The
    /// model executes everything sequentially consistent anyway, so the
    /// schedule point (exploring what runs between the fenced accesses) is
    /// the part that matters.
    pub fn fence(order: Ordering) {
        rt::yield_if_ctx();
        std::sync::atomic::fence(order);
    }
}
