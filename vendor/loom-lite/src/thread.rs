//! Virtual-thread spawn/join. Each virtual thread is a real OS thread that
//! parks itself until the scheduler makes it active.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub struct JoinHandle {
    tid: usize,
    os: Option<std::thread::JoinHandle<()>>,
}

/// Spawn a virtual thread running `f`. Must be called from inside a model
/// run. The spawn itself is a schedule point: the child may run before the
/// parent's next operation.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    let (exec, parent) = rt::current().expect("loom_lite::thread::spawn outside a model run");
    let tid = exec.register_thread();
    let child_exec = exec.clone();
    let os = std::thread::Builder::new()
        .name(format!("loom-lite-{tid}"))
        .spawn(move || {
            rt::set_current(child_exec.clone(), tid);
            child_exec.wait_turn(tid);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => child_exec.finish_thread(tid),
                Err(payload) => child_exec.fail_panic(payload),
            }
        })
        .expect("spawn loom-lite virtual thread");
    exec.yield_point(parent);
    JoinHandle { tid, os: Some(os) }
}

impl JoinHandle {
    /// Wait for the virtual thread to finish. Mirrors
    /// `std::thread::JoinHandle::join`'s signature; a child panic fails the
    /// whole execution before this ever returns an `Err`.
    pub fn join(mut self) -> std::thread::Result<()> {
        let (exec, me) = rt::current().expect("loom_lite join outside a model run");
        loop {
            exec.yield_point(me);
            if exec.is_finished(self.tid) {
                break;
            }
            exec.block_on_join(me, self.tid);
        }
        // The virtual thread has retired; reap the OS thread (it exits
        // promptly after `finish_thread`).
        match self.os.take() {
            Some(os) => os.join(),
            None => Ok(()),
        }
    }
}
