//! A minimal deterministic-interleaving model checker, loom-inspired.
//!
//! The real `loom` reimplements every `std::sync` primitive atop a
//! permutation-exploring scheduler and a C11 memory-model simulator. This
//! crate keeps the part that finds the bugs our pool can actually have —
//! lost wakeups, drained-successor races, steal/pop interleavings — and
//! drops the rest:
//!
//! * **Serialized execution on real OS threads.** Each virtual thread is an
//!   OS thread, but a cooperative scheduler lets exactly one run at a time;
//!   every instrumented operation (mutex lock/unlock, condvar wait/notify,
//!   atomic access, deque op) is a *schedule point* where the scheduler may
//!   switch threads. Code between schedule points runs atomically, exactly
//!   as in loom.
//! * **Sequentially consistent memory only.** Because execution is
//!   serialized, every atomic op is globally ordered; weak-memory
//!   reorderings are not explored. The pool's protocols are designed to be
//!   correct under SC plus acquire/release pairs that SC subsumes, so SC
//!   exploration still falsifies the protocol-level races we care about.
//! * **Bounded exhaustive + randomized search.** A DFS over scheduling
//!   choices explores the interleaving tree (each decision records
//!   `(chosen, alternatives)`; backtracking replays the prefix with the
//!   last branchable choice bumped), capped at a configurable execution
//!   count, then a seeded SplitMix64 scheduler samples random
//!   interleavings. Same seed, same schedule: failures are reproducible.
//! * **Deadlocks are failures.** `Condvar::wait_for` is modeled as a plain
//!   `wait` (timeouts never fire), so a protocol whose liveness depends on
//!   a timeout backstop — i.e. one that can lose a wakeup — deadlocks
//!   under the model and is reported with its schedule trace. A failing
//!   execution is abandoned in place: its OS threads stay parked forever
//!   (a bounded leak, one execution's worth, since exploration stops at
//!   the first failure).
//! * **No spurious condvar wakeups.** Waiters wake only via notify. This
//!   under-approximates std semantics but keeps traces short; the pool
//!   must not *rely* on spurious wakeups for liveness anyway.
//!
//! Entry points: [`model`] (assert no failure) and [`Builder::check`]
//! (returns a [`Report`]). Test bodies must route all synchronization
//! through [`sync`], [`thread`], and [`deque`]; bookkeeping inside a model
//! body should use plain `std` atomics (never hold an uninstrumented lock
//! across an instrumented op — the scheduler cannot see it).

pub mod deque;
pub mod hint;
mod rt;
pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rt::{Choice, Execution, Mode};

/// Exploration budget and seed for one [`Builder::check`] run.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Cap on depth-first (systematic) executions before switching to
    /// random exploration. The DFS is exhaustive iff it completes below
    /// this cap.
    pub max_dfs_executions: usize,
    /// Number of randomly scheduled executions after the DFS phase.
    pub random_iterations: usize,
    /// Seed for the random phase's SplitMix64 schedule generator.
    pub seed: u64,
    /// Per-execution schedule-point budget; exceeding it is reported as a
    /// livelock.
    pub max_yields: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_dfs_executions: 1000,
            random_iterations: 1000,
            seed: 0x5eed_1e55_u64,
            max_yields: 100_000,
        }
    }
}

/// Outcome of a [`Builder::check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Total interleavings executed (DFS + random).
    pub executions: usize,
    /// First failure found (deadlock, livelock, or panic), with its
    /// schedule trace; `None` when every explored interleaving passed.
    pub failure: Option<String>,
    /// True when the DFS visited the *entire* interleaving tree below the
    /// cap — the absence of failures is then a proof under this model,
    /// not a sample.
    pub exhausted: bool,
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Explore interleavings of `f`, which is re-run once per execution.
    pub fn check<F: Fn() + Send + Sync + 'static>(&self, f: F) -> Report {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut executions = 0usize;
        let mut prefix: Vec<Choice> = Vec::new();
        while executions < self.max_dfs_executions {
            let (failure, choices) = run_one(
                &f,
                Mode::Dfs {
                    prefix: std::mem::take(&mut prefix),
                },
                self.max_yields,
            );
            executions += 1;
            if failure.is_some() {
                return Report {
                    executions,
                    failure,
                    exhausted: false,
                };
            }
            match next_prefix(choices) {
                Some(p) => prefix = p,
                None => {
                    return Report {
                        executions,
                        failure: None,
                        exhausted: true,
                    }
                }
            }
        }
        let mut seed = self.seed;
        for _ in 0..self.random_iterations {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let (failure, _) = run_one(&f, Mode::Random { state: seed }, self.max_yields);
            executions += 1;
            if failure.is_some() {
                return Report {
                    executions,
                    failure,
                    exhausted: false,
                };
            }
        }
        Report {
            executions,
            failure: None,
            exhausted: false,
        }
    }
}

/// Explore with default budgets and panic on the first failing
/// interleaving (the loom-style entry point).
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) -> Report {
    let report = Builder::default().check(f);
    if let Some(failure) = &report.failure {
        panic!("loom-lite: failing interleaving found: {failure}");
    }
    report
}

/// DFS backtrack: bump the deepest choice that still has an untried
/// alternative, dropping everything after it.
fn next_prefix(mut choices: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = choices.last().copied() {
        if last.chosen + 1 < last.alts {
            choices.last_mut().expect("non-empty").chosen += 1;
            return Some(choices);
        }
        choices.pop();
    }
    None
}

/// Run one execution of `f` under `mode`; returns (failure, choice trace).
fn run_one(
    f: &Arc<dyn Fn() + Send + Sync>,
    mode: Mode,
    max_yields: usize,
) -> (Option<String>, Vec<Choice>) {
    let exec = Execution::new(mode, max_yields);
    let tid0 = exec.register_thread();
    debug_assert_eq!(tid0, 0);
    let body_exec = exec.clone();
    let body = f.clone();
    std::thread::Builder::new()
        .name("loom-lite-main".into())
        .spawn(move || {
            rt::set_current(body_exec.clone(), 0);
            body_exec.wait_turn(0);
            match catch_unwind(AssertUnwindSafe(|| body())) {
                Ok(()) => body_exec.finish_thread(0),
                Err(payload) => body_exec.fail_panic(payload),
            }
        })
        .expect("spawn loom-lite main thread");
    exec.wait_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::{Condvar, Mutex};
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::atomic::Ordering as StdOrdering;

    #[test]
    fn counter_increments_race_free_with_atomics() {
        let report = model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
        assert!(report.executions >= 2, "must explore both orders");
    }

    #[test]
    fn small_spaces_are_exhausted() {
        let report = Builder::default().check(|| {
            let m = Arc::new(Mutex::new(0usize));
            let m2 = m.clone();
            let h = thread::spawn(move || {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            h.join().unwrap();
            assert_eq!(*m.lock(), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted, "two-thread mutex space is tiny");
    }

    #[test]
    fn lost_wakeup_is_detected_as_deadlock() {
        // Classic unsynchronized flag + condvar: the waiter can check the
        // flag, then the notifier sets it and notifies *before* the waiter
        // blocks — a lost wakeup. The model must find that interleaving.
        struct Cell {
            flag: StdAtomicUsize,
            lock: Mutex<()>,
            cv: Condvar,
        }
        let report = Builder::default().check(|| {
            let c = Arc::new(Cell {
                flag: StdAtomicUsize::new(0),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            });
            let c2 = c.clone();
            let h = thread::spawn(move || {
                c2.flag.store(1, StdOrdering::SeqCst);
                let _g = c2.lock.lock();
                c2.cv.notify_all();
            });
            // BUG under test: the flag check is outside the lock, so the
            // store+notify can land between the check and the wait.
            if c.flag.load(StdOrdering::SeqCst) == 0 {
                let mut g = c.lock.lock();
                c.cv.wait(&mut g);
            }
            drop(h);
        });
        let failure = report.failure.expect("lost wakeup must deadlock");
        assert!(failure.contains("deadlock"), "{failure}");
    }

    #[test]
    fn correct_wait_protocol_passes() {
        struct Cell {
            flag: Mutex<bool>,
            cv: Condvar,
        }
        let report = Builder::default().check(|| {
            let c = Arc::new(Cell {
                flag: Mutex::new(false),
                cv: Condvar::new(),
            });
            let c2 = c.clone();
            let h = thread::spawn(move || {
                *c2.flag.lock() = true;
                c2.cv.notify_all();
            });
            let mut g = c.flag.lock();
            while !*g {
                c.cv.wait(&mut g);
            }
            drop(g);
            h.join().unwrap();
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn child_panic_fails_the_execution() {
        let report = Builder {
            max_dfs_executions: 8,
            random_iterations: 0,
            ..Builder::default()
        }
        .check(|| {
            let h = thread::spawn(|| panic!("child boom"));
            let _ = h.join();
        });
        let failure = report.failure.expect("child panic must be reported");
        assert!(failure.contains("child boom"), "{failure}");
    }

    #[test]
    fn deque_steal_and_pop_agree() {
        let report = Builder {
            max_dfs_executions: 400,
            random_iterations: 100,
            ..Builder::default()
        }
        .check(|| {
            let w = deque::Worker::new_lifo();
            w.push(1usize);
            w.push(2);
            let s = w.stealer();
            let seen = Arc::new(StdAtomicUsize::new(0));
            let seen2 = seen.clone();
            let h = thread::spawn(move || {
                if let deque::Steal::Success(v) = s.steal() {
                    seen2.fetch_add(v, StdOrdering::SeqCst);
                }
            });
            while let Some(v) = w.pop() {
                seen.fetch_add(v, StdOrdering::SeqCst);
            }
            h.join().unwrap();
            assert_eq!(seen.load(StdOrdering::SeqCst), 3, "every item exactly once");
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = || {
            Builder {
                max_dfs_executions: 0,
                random_iterations: 50,
                seed: 42,
                ..Builder::default()
            }
            .check(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let c2 = c.clone();
                let h = thread::spawn(move || {
                    c2.fetch_add(1, Ordering::SeqCst);
                });
                c.fetch_add(1, Ordering::SeqCst);
                h.join().unwrap();
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.failure.is_some(), b.failure.is_some());
    }
}
