//! Offline stand-in for the `parking_lot` API subset this workspace uses:
//! [`Mutex`] (non-poisoning `lock()`), [`Condvar`] with `wait`/`wait_for`/
//! `notify_one`/`notify_all`, and [`RwLock`]. Built on `std::sync`;
//! poisoning is swallowed (parking_lot has no poisoning), which is the
//! behavioural property the runtime's panic containment relies on.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok(pair) => pair,
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(3));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 3, "non-poisoning lock");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait_for(&mut started, Duration::from_millis(100));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
