//! Offline stand-in for the `criterion` API subset this workspace uses:
//! `Criterion`, `benchmark_group` with `sample_size`/`throughput`/
//! `bench_with_input`/`bench_function`/`finish`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It measures wall-clock medians over a calibrated iteration count and
//! prints one line per benchmark (plus element throughput when declared).
//! No HTML reports, statistics, or baseline comparison — enough to run
//! `cargo bench` offline and read relative numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Identity function that defeats constant-propagation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    /// Target time per benchmark; kept modest so full suites finish offline.
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
            sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let report = run_bench(self.measurement_time, self.sample_size, &mut f);
        print_report(&id.to_string(), None, &report);
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_bench(self.criterion.measurement_time, samples, &mut f);
        print_report(&format!("{}/{}", self.name, id), self.throughput, &report);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, routine: F) {
        self.iter(routine)
    }
}

struct Report {
    median_ns: f64,
}

/// Calibrate an iteration count against the time budget, then take
/// `samples` timed runs and report the median.
fn run_bench<F: FnMut(&mut Bencher)>(budget: Duration, samples: usize, f: &mut F) -> Report {
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_sample = budget.as_secs_f64() / samples.max(1) as f64;
        if b.elapsed.as_secs_f64() >= per_sample.min(0.05) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    Report {
        median_ns: per_iter[per_iter.len() / 2],
    }
}

fn print_report(name: &str, throughput: Option<Throughput>, report: &Report) {
    let time = if report.median_ns < 1e3 {
        format!("{:.1} ns", report.median_ns)
    } else if report.median_ns < 1e6 {
        format!("{:.2} µs", report.median_ns / 1e3)
    } else if report.median_ns < 1e9 {
        format!("{:.2} ms", report.median_ns / 1e6)
    } else {
        format!("{:.3} s", report.median_ns / 1e9)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (report.median_ns * 1e-9);
            println!("{name:<40} {time:>12}  {:.3} Gelem/s", rate / 1e9);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (report.median_ns * 1e-9);
            println!(
                "{name:<40} {time:>12}  {:.3} GiB/s",
                rate / (1u64 << 30) as f64
            );
        }
        None => println!("{name:<40} {time:>12}"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(21u64 * 2));
        assert!(b.elapsed > Duration::ZERO || b.iters == 10);
    }
}
