//! Offline stand-in for the `proptest` API subset this workspace uses:
//! the `proptest!` macro (with `#![proptest_config(..)]`), `Strategy` with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `proptest::collection::vec`, `Just`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! reports its inputs via `Debug` where available, but is not minimized),
//! and deterministic per-test seeding derived from the test name (override
//! with `PROPTEST_SEED`). Case counts honor `ProptestConfig::cases`.

use std::fmt;

/// Deterministic RNG driving the strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Stable per-test seed: FNV-1a of the test name, unless the
    /// `PROPTEST_SEED` environment variable overrides it.
    pub fn deterministic(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A failing test case (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented here.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: a fixed length or a half-open range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        Fixed(usize),
        Range(std::ops::Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len_or_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Range(r) => {
                    assert!(r.start < r.end, "empty vec length range");
                    r.start + rng.below((r.end - r.start) as u64) as usize
                }
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    pub use super::{Just, Strategy};
}

pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError};
}

pub mod prelude {
    pub use super::collection;
    pub use super::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// The test-defining macro. Supports an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `fn name(pat in strategy, ...) { body }` items with outer attributes
/// (including `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config($cfg) $($rest)*);
    };
    (@with_config($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let seed_state = rng.clone();
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    // Bodies may end with `return Ok(())`, making the
                    // trailing Ok unreachable — that is fine.
                    #[allow(unreachable_code)]
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n(rng state before case: {:?}; \
                             re-run with PROPTEST_SEED to reproduce)",
                            case + 1, config.cases, e, seed_state
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (2usize..10).prop_flat_map(|n| collection::vec(0.0f64..1.0, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_runs_and_passes(x in 0usize..100, y in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y), "y out of range: {y}");
            if x == 1000 {
                return Ok(()); // exercise the early-return form
            }
            prop_assert_eq!(x, x);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0i32..5, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_context() {
        proptest! {
            @with_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x too small: {x}");
            }
        }
        inner();
    }
}
