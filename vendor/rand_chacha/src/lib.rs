//! Offline stand-in for `rand_chacha`. Only [`ChaCha8Rng`] is exposed,
//! because that is the only type the workspace names. It IS a real ChaCha
//! core (8 double-rounds) so streams are high quality, but no compatibility
//! with the upstream crate's exact output stream is promised — every use in
//! the workspace is self-consistent (seed → data → property check).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, counter mode, 64-bit output chunks.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12 of the ChaCha matrix).
    key: [u32; 8],
    /// Block counter (words 12..14) — 64-bit, no stream words used.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next 32-bit word to serve from `block` (16 = exhausted).
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] stay zero (stream id).
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(input) {
            *o = o.wrapping_add(i);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.index] as u64;
        let hi = self.block[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mean: f64 = (0..20_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
