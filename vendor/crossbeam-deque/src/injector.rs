//! Lock-free MPMC injector queue (segment list).
//!
//! A singly linked list of fixed-size blocks, in the style of crossbeam's
//! `SegQueue`: producers claim slots by CAS on the tail index, consumers by
//! CAS on the head index, and the producer that claims the last slot of a
//! block installs the next block. Indices advance by `1 << SHIFT` so bit 0
//! of the head index can carry the `HAS_NEXT` hint ("head block is not the
//! tail block"), and each 32-index lap maps to the 31 slots of one block
//! plus one phantom index used for the block handoff.
//!
//! Reclamation is epoch-free: a block can only be freed after all of its
//! slots have been read, which consumers coordinate through per-slot
//! `READ`/`DESTROY` state bits — the *last* reader of a block (in either
//! role) frees it. No reader can hold a pointer to a freed block because it
//! must have claimed its slot index before the block became fully read.

use crate::sys::{fence, spin_hint, AtomicPtr, AtomicUsize, Ordering};
use crate::{Steal, Worker};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;

/// Indices per lap: one block's slots plus the phantom handoff index.
const LAP: usize = 32;
/// Slots per block.
const BLOCK_CAP: usize = LAP - 1;
/// Indices advance in steps of `1 << SHIFT`, freeing bit 0 for `HAS_NEXT`.
const SHIFT: usize = 1;
/// Head-index bit: set when the head block is known not to be the tail
/// block (skips the emptiness check on the steal fast path).
const HAS_NEXT: usize = 1;

/// Slot state bit: the producer has finished writing the value.
const WRITE: usize = 1;
/// Slot state bit: the consumer has finished reading the value.
const READ: usize = 2;
/// Slot state bit: the block is being destroyed; the in-flight reader of
/// this slot takes over the destruction cascade.
const DESTROY: usize = 4;

/// Batch cap for [`Injector::steal_batch_and_pop`], matching the real
/// crate's flush limit.
const MAX_BATCH: usize = 16;

struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

impl<T> Slot<T> {
    fn new() -> Slot<T> {
        Slot {
            value: UnsafeCell::new(MaybeUninit::uninit()),
            state: AtomicUsize::new(0),
        }
    }

    /// Spins until the producer that claimed this slot has written its
    /// value. Bounded: the producer already won its index CAS, so the wait
    /// is for a store that is always coming.
    fn wait_write(&self) {
        while self.state.load(Ordering::Acquire) & WRITE == 0 {
            spin_hint();
        }
    }
}

struct Block<T> {
    next: AtomicPtr<Block<T>>,
    slots: [Slot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn alloc() -> *mut Block<T> {
        Box::into_raw(Box::new(Block {
            next: AtomicPtr::new(ptr::null_mut()),
            slots: std::array::from_fn(|_| Slot::new()),
        }))
    }

    /// Spins until the next block is installed by the producer that claimed
    /// the last slot of this one. Bounded for the same reason as
    /// `wait_write`.
    fn wait_next(&self) -> *mut Block<T> {
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            spin_hint();
        }
    }

    /// Marks slots `[start, BLOCK_CAP - 1)` as destroyed and frees the
    /// block once no reader is still inside it. The reader of the final
    /// slot starts the cascade with `start = 0`; a reader that observes
    /// `DESTROY` on its own slot continues it from the next slot.
    ///
    /// # Safety
    /// `this` must be a block whose every slot has been claimed by a
    /// consumer, and the cascade must be entered per the protocol above.
    unsafe fn destroy(this: *mut Block<T>, start: usize) {
        for i in start..BLOCK_CAP - 1 {
            // SAFETY: `this` is alive — the cascade only reaches slot i
            // after every reader before it has checked out.
            let slot = unsafe { &(*this).slots[i] };
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                // A reader is still mid-read in this slot; it observed the
                // DESTROY bit and takes over from slot i + 1.
                return;
            }
        }
        // Every slot has been read: the block can go.
        // SAFETY: last participant out frees the block exactly once.
        unsafe { drop(Box::from_raw(this)) };
    }
}

/// One end of the queue: an index plus the block it points into, kept on
/// its own cache line so producers and consumers do not false-share.
#[repr(align(64))]
struct Position<T> {
    index: AtomicUsize,
    block: AtomicPtr<Block<T>>,
}

/// The global FIFO injection queue: lock-free MPMC push and steal.
pub struct Injector<T> {
    head: Position<T>,
    tail: Position<T>,
}

// SAFETY: items are handed between threads through the slot-state protocol
// (WRITE published with Release, consumed after an Acquire check); all
// queue structure is atomics.
unsafe impl<T: Send> Send for Injector<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector (first block allocated eagerly).
    pub fn new() -> Injector<T> {
        let first = Block::<T>::alloc();
        Injector {
            head: Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            },
            tail: Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            },
        }
    }

    /// Pushes an item onto the tail. Lock-free: the only wait is the
    /// bounded spin for a racing producer's block install.
    // dcst-hot
    pub fn push(&self, value: T) {
        let mut tail = self.tail.index.load(Ordering::Acquire);
        let mut block = self.tail.block.load(Ordering::Acquire);

        loop {
            let offset = (tail >> SHIFT) % LAP;
            if offset == BLOCK_CAP {
                // Phantom index: the producer that claimed the last slot is
                // installing the next block; wait for the index to move.
                spin_hint();
                tail = self.tail.index.load(Ordering::Acquire);
                block = self.tail.block.load(Ordering::Acquire);
                continue;
            }

            let new_tail = tail + (1 << SHIFT);
            match self.tail.index.compare_exchange(
                tail,
                new_tail,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if offset + 1 == BLOCK_CAP {
                        // Claimed the last slot: install the next block and
                        // move the tail index across the phantom slot.
                        let next = Block::<T>::alloc();
                        let next_index = new_tail.wrapping_add(1 << SHIFT);
                        self.tail.block.store(next, Ordering::Release);
                        self.tail.index.store(next_index, Ordering::Release);
                        // SAFETY: `block` cannot be freed while its last
                        // slot (ours) has not been written and read.
                        unsafe { (*block).next.store(next, Ordering::Release) };
                    }
                    // SAFETY: the index CAS gave this producer exclusive
                    // write access to `slot`; WRITE below publishes it.
                    unsafe {
                        let slot = &(*block).slots[offset];
                        slot.value.get().write(MaybeUninit::new(value));
                        slot.state.fetch_or(WRITE, Ordering::Release);
                    }
                    return;
                }
                Err(t) => {
                    tail = t;
                    block = self.tail.block.load(Ordering::Acquire);
                }
            }
        }
    }

    /// Racy emptiness hint (exact only when the queue is quiescent).
    pub fn is_empty(&self) -> bool {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        head >> SHIFT == tail >> SHIFT
    }

    /// Approximate queue length; used only to size steal batches.
    fn len_hint(&self) -> usize {
        let tail = self.tail.index.load(Ordering::Acquire) >> SHIFT;
        let head = (self.head.index.load(Ordering::Acquire) & !HAS_NEXT) >> SHIFT;
        // Includes up to one phantom index per lap — fine for a hint.
        tail.saturating_sub(head)
    }

    /// Attempts to steal the item at the head.
    // dcst-hot
    pub fn steal(&self) -> Steal<T> {
        let mut head = self.head.index.load(Ordering::Acquire);
        let mut block = self.head.block.load(Ordering::Acquire);

        loop {
            let offset = (head >> SHIFT) % LAP;
            if offset == BLOCK_CAP {
                // Phantom index: a consumer is moving head to the next
                // block; wait for the move.
                spin_hint();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }

            let mut new_head = head + (1 << SHIFT);
            if new_head & HAS_NEXT == 0 {
                // Order the head read before the tail read so a racing
                // push's index CAS is observed (mirrors SegQueue::pop).
                fence(Ordering::SeqCst);
                let tail = self.tail.index.load(Ordering::Relaxed);
                if head >> SHIFT == tail >> SHIFT {
                    return Steal::Empty;
                }
                if (head >> SHIFT) / LAP != (tail >> SHIFT) / LAP {
                    new_head |= HAS_NEXT;
                }
            }

            match self.head.index.compare_exchange(
                head,
                new_head,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // SAFETY: the head CAS gave this consumer exclusive
                    // read access to slot `offset` of `block`, which stays
                    // alive until the destroy cascade — entered only after
                    // this reader checks out below.
                    unsafe {
                        if offset + 1 == BLOCK_CAP {
                            // Claimed the last slot: move head across the
                            // phantom index into the next block.
                            let next = (*block).wait_next();
                            let mut next_index = (new_head & !HAS_NEXT).wrapping_add(1 << SHIFT);
                            if !(*next).next.load(Ordering::Relaxed).is_null() {
                                next_index |= HAS_NEXT;
                            }
                            self.head.block.store(next, Ordering::Release);
                            self.head.index.store(next_index, Ordering::Release);
                        }

                        let slot = &(*block).slots[offset];
                        slot.wait_write();
                        let value = slot.value.get().read().assume_init();

                        if offset + 1 == BLOCK_CAP {
                            // Last reader of the block starts the cascade.
                            Block::destroy(block, 0);
                        } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                            // Destruction already started; take it over.
                            Block::destroy(block, offset + 1);
                        }
                        return Steal::Success(value);
                    }
                }
                Err(_) => return Steal::Retry,
            }
        }
    }

    /// Steals one item and moves up to half the remaining queue (capped at
    /// `MAX_BATCH`) into `dest`'s local deque.
    // dcst-hot
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let first = match self.steal() {
            Steal::Success(v) => v,
            other => return other,
        };
        let batch = (self.len_hint() / 2).min(MAX_BATCH);
        for _ in 0..batch {
            match self.steal() {
                Steal::Success(v) => dest.push(v),
                // Empty: done. Retry: keep the guaranteed `first` rather
                // than spinning — the pool re-polls on its next pass.
                _ => break,
            }
        }
        Steal::Success(first)
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Sole owner now: drain unread items and free the remaining block
        // chain (blocks before `head.block` were freed by the cascade).
        let mut head = self.head.index.load(Ordering::Relaxed) & !HAS_NEXT;
        let tail = self.tail.index.load(Ordering::Relaxed);
        let mut block = self.head.block.load(Ordering::Relaxed);
        // SAFETY: no other handles exist; indices delimit exactly the
        // written-but-unread slots, and each block is freed exactly once as
        // head crosses its phantom index.
        unsafe {
            while head >> SHIFT != tail >> SHIFT {
                let offset = (head >> SHIFT) % LAP;
                if offset < BLOCK_CAP {
                    let slot = &(*block).slots[offset];
                    drop(slot.value.get().read().assume_init());
                } else {
                    let next = (*block).next.load(Ordering::Relaxed);
                    drop(Box::from_raw(block));
                    block = next;
                }
                head = head.wrapping_add(1 << SHIFT);
            }
            if !block.is_null() {
                drop(Box::from_raw(block));
            }
        }
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Injector { .. }")
    }
}
