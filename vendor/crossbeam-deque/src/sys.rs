//! Atomic alias layer for the lock-free structures.
//!
//! Normal builds re-export `std::sync::atomic`; under
//! `RUSTFLAGS="--cfg dcst_model_check"` every atomic access and fence
//! resolves to `loom-lite`'s instrumented equivalents, making each one a
//! schedule point so the model checker can drive the pop/steal CAS races,
//! buffer growth, and the injector's block handoff through exhaustively
//! explored interleavings. `spin_hint` maps to the model's deprioritizing
//! yield so bounded spin-waits (slot-write, next-block install) cannot be
//! misreported as livelocks.

#[cfg(not(dcst_model_check))]
pub use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

#[cfg(not(dcst_model_check))]
#[inline]
pub fn spin_hint() {
    std::hint::spin_loop();
}

#[cfg(dcst_model_check)]
pub use loom_lite::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

#[cfg(dcst_model_check)]
pub fn spin_hint() {
    loom_lite::hint::spin_loop();
}
