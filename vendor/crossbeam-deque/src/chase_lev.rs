//! The Chase–Lev lock-free work-stealing deque.
//!
//! One owner thread pushes and pops at the *bottom*; any number of thieves
//! steal from the *top*. Two monotonically increasing `AtomicIsize` indices
//! delimit the live window `[top, bottom)` inside a power-of-two circular
//! buffer, so the same index is never reused for two different items and the
//! classic ABA problem cannot arise on the `top` CAS.
//!
//! Memory-ordering sketch (the full argument lives in DESIGN.md):
//!
//! * `push` publishes the slot write with a `Release` store of `bottom`; a
//!   thief's `Acquire` load of `bottom` therefore sees the item it is about
//!   to read.
//! * `pop` decrements `bottom`, then issues a `SeqCst` fence before reading
//!   `top`; `steal` reads `top`, then issues a `SeqCst` fence before reading
//!   `bottom`. The two fences order the owner's decrement against the
//!   thief's claim so both sides cannot conclude they own the same last
//!   element.
//! * The only decision point under contention is a single CAS on `top` —
//!   the owner runs it for the final element, thieves run it on every
//!   steal. Exactly one contender wins each index.
//!
//! Reclamation is epoch-free: `grow` retires the old buffer onto an
//! owner-only list instead of freeing it, so a thief holding a stale buffer
//! pointer can still read its (immutable at index ≥ `top`) slots. Retired
//! buffers are freed when the last handle drops. Because capacity doubles,
//! total retired memory stays below the final buffer's size.

use crate::sys::{fence, AtomicIsize, AtomicPtr, Ordering};
use crate::Steal;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Default initial capacity of a worker deque (power of two).
const MIN_CAP: usize = 64;

/// A fixed-capacity circular slot array. Logical index `i` lives at
/// physical slot `i & (cap - 1)`.
struct Buffer<T> {
    ptr: *mut MaybeUninit<T>,
    cap: usize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let mut slots: Vec<MaybeUninit<T>> = Vec::with_capacity(cap);
        // SAFETY: `MaybeUninit<T>` requires no initialization and the Vec
        // was allocated with capacity `cap`, so setting the length only
        // exposes uninitialized-but-valid MaybeUninit slots.
        unsafe { slots.set_len(cap) };
        let ptr = Box::into_raw(slots.into_boxed_slice()) as *mut MaybeUninit<T>;
        // Reached from `push` only on capacity doubling.
        // xtask-lint: allow(hot-path) — amortized O(1) cold growth path
        Box::into_raw(Box::new(Buffer { ptr, cap }))
    }

    /// Frees a buffer allocated by [`Buffer::alloc`]. Slot *contents* are
    /// not dropped here — live items are drained by `Inner::drop` first.
    ///
    /// # Safety
    /// `buf` must come from `Buffer::alloc` and must not be freed twice.
    unsafe fn dealloc(buf: *mut Buffer<T>) {
        // SAFETY: per the contract above, both raw pointers were produced
        // by Box::into_raw with exactly these types and lengths.
        unsafe {
            let b = Box::from_raw(buf);
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                b.ptr, b.cap,
            )));
        }
    }

    /// Pointer to the physical slot for logical index `index`.
    ///
    /// # Safety
    /// The buffer must be alive; reading the slot additionally requires the
    /// Chase–Lev protocol to guarantee it holds an initialized item.
    unsafe fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        // SAFETY: the mask keeps the offset within the allocation.
        unsafe { self.ptr.add(index as usize & (self.cap - 1)) }
    }
}

/// State shared between the owner [`Worker`] and its [`Stealer`]s.
struct Inner<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers retired by `grow`; freed only on drop (owner-only access —
    /// guarded by `Worker` being `!Sync` and `grow` being owner-only).
    retired: UnsafeCell<Vec<*mut Buffer<T>>>,
    /// Number of buffer growths. Plain std atomic on purpose: bookkeeping
    /// for `RuntimeMetrics`, never a schedule point under the model
    /// checker.
    grows: AtomicU64,
    /// Model-check-only mutation switch: the single-element `pop` claims
    /// `top` with a plain store instead of the CAS, reintroducing the
    /// double-delivery race the checker must catch.
    #[cfg(dcst_model_check)]
    buggy_pop: bool,
}

// SAFETY: Inner owns its items (drained on drop) and every shared field is
// accessed through atomics; `retired` is confined to the owner thread by
// the protocol documented on the field. Items cross threads via steal,
// hence the `T: Send` bound.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: as above — concurrent access goes through the Chase–Lev
// protocol's atomics only.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole remaining handle: plain loads are exact and no concurrent
        // operations are possible.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        let mut i = top;
        while i != bottom {
            // SAFETY: slots in [top, bottom) hold initialized items that no
            // other handle can reach any more.
            unsafe { drop((*buf).slot(i).read().assume_init()) };
            i = i.wrapping_add(1);
        }
        // SAFETY: the current buffer and every retired buffer were created
        // by Buffer::alloc and are freed exactly once, here.
        unsafe {
            Buffer::dealloc(buf);
            for old in std::mem::take(&mut *self.retired.get()) {
                Buffer::dealloc(old);
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// `pop` takes the newest item (owner end).
    Lifo,
    /// `pop` takes the oldest item (steals from its own top).
    Fifo,
}

/// The owner handle: single-threaded `push`/`pop` at the bottom end.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    flavor: Flavor,
    /// `*mut ()` suppresses `Sync`: push/pop are owner-only by contract.
    _marker: PhantomData<*mut ()>,
}

// SAFETY: the handle may migrate to another thread as a whole (T: Send);
// PhantomData<*mut ()> keeps it !Sync so two threads can never share one.
unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Worker<T> {
    fn with_flavor(flavor: Flavor, cap: usize) -> Worker<T> {
        let cap = cap.next_power_of_two().max(2);
        Worker {
            inner: Arc::new(Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(Buffer::alloc(cap)),
                retired: UnsafeCell::new(Vec::new()),
                grows: AtomicU64::new(0),
                #[cfg(dcst_model_check)]
                buggy_pop: false,
            }),
            flavor,
            _marker: PhantomData,
        }
    }

    /// FIFO worker: `pop` returns items in push order.
    pub fn new_fifo() -> Worker<T> {
        Worker::with_flavor(Flavor::Fifo, MIN_CAP)
    }

    /// LIFO worker: `pop` returns the most recently pushed item.
    pub fn new_lifo() -> Worker<T> {
        Worker::with_flavor(Flavor::Lifo, MIN_CAP)
    }

    /// LIFO worker with an explicit initial capacity (rounded up to a power
    /// of two). Exists so growth paths can be exercised deterministically
    /// by tests and benches; the real crate sizes buffers internally.
    pub fn new_lifo_with_capacity(cap: usize) -> Worker<T> {
        Worker::with_flavor(Flavor::Lifo, cap)
    }

    /// LIFO worker whose single-element `pop` skips the top CAS — the
    /// seeded mutation for the model-check suite. Never compiled into
    /// normal builds.
    #[cfg(dcst_model_check)]
    pub fn new_lifo_with_buggy_pop() -> Worker<T> {
        let mut w = Worker::with_flavor(Flavor::Lifo, MIN_CAP);
        Arc::get_mut(&mut w.inner)
            .expect("fresh worker has a unique Inner")
            .buggy_pop = true;
        w
    }

    /// A stealer handle sharing this deque. Cloneable, usable from any
    /// thread.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Owner-side emptiness check (exact at the linearization point).
    pub fn is_empty(&self) -> bool {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        b.wrapping_sub(t) <= 0
    }

    /// Number of items currently in the deque (owner-side snapshot).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        b.wrapping_sub(t).max(0) as usize
    }

    /// How many times this deque's buffer has grown.
    pub fn grow_count(&self) -> u64 {
        self.inner.grows.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Doubles the buffer, copying the live window `[top, bottom)`. Owner
    /// only; the old buffer is retired, not freed, so in-flight stealers
    /// keep reading valid memory.
    fn grow(&self, old: *mut Buffer<T>, top: isize, bottom: isize) -> *mut Buffer<T> {
        // SAFETY: `old` is the current buffer (owner observed it under the
        // protocol); slots in [top, bottom) are initialized and copying
        // MaybeUninit bytes to the new buffer transfers them verbatim.
        let new = unsafe {
            let new = Buffer::alloc((*old).cap * 2);
            let mut i = top;
            while i != bottom {
                std::ptr::copy_nonoverlapping((*old).slot(i), (*new).slot(i), 1);
                i = i.wrapping_add(1);
            }
            new
        };
        self.inner.buffer.store(new, Ordering::Release);
        // SAFETY: `retired` is owner-only (Worker is !Sync); no concurrent
        // access is possible.
        unsafe { (*self.inner.retired.get()).push(old) };
        self.inner
            .grows
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        new
    }

    /// Pushes an item onto the bottom end. Wait-free for the owner apart
    /// from occasional (amortized O(1)) buffer growth.
    // dcst-hot
    pub fn push(&self, value: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf = self.inner.buffer.load(Ordering::Relaxed);

        // SAFETY: cap is only written at construction/grow by the owner.
        let cap = unsafe { (*buf).cap };
        if b.wrapping_sub(t) >= cap as isize {
            buf = self.grow(buf, t, b);
        }

        // SAFETY: slot `b` is outside the live window [t, b), so no thief
        // reads it; the Release store below publishes the write.
        unsafe { (*buf).slot(b).write(MaybeUninit::new(value)) };
        self.inner
            .bottom
            .store(b.wrapping_add(1), Ordering::Release);
    }

    /// Pops an item: the newest for LIFO workers, the oldest for FIFO.
    // dcst-hot
    pub fn pop(&self) -> Option<T> {
        match self.flavor {
            Flavor::Lifo => self.pop_lifo(),
            Flavor::Fifo => self.pop_fifo(),
        }
    }

    // dcst-hot
    fn pop_lifo(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.inner.bottom.store(b, Ordering::Relaxed);
        // Publish the decrement before inspecting `top`: pairs with the
        // fence in `Stealer::steal` (see module docs / DESIGN.md).
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);

        let len = b.wrapping_sub(t);
        if len < 0 {
            // Deque was empty; restore bottom.
            self.inner
                .bottom
                .store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }

        let buf = self.inner.buffer.load(Ordering::Relaxed);
        if len > 0 {
            // At least two items were present: slot `b` cannot be touched
            // by thieves (they contend on `top` < `b`).
            // SAFETY: slot b holds the initialized item just excluded from
            // the live window by the bottom decrement.
            return Some(unsafe { (*buf).slot(b).read().assume_init() });
        }

        // Exactly one item left: race thieves for it via the top CAS.
        #[cfg(dcst_model_check)]
        if self.inner.buggy_pop {
            // MUTATION (model check only): plain store instead of CAS. A
            // concurrent thief whose CAS also succeeds on `t` now receives
            // the same item — the checker must flag the double delivery.
            // SAFETY: mutation under test; mirrors the read below.
            let value = unsafe { (*buf).slot(b).read().assume_init() };
            self.inner.top.store(t.wrapping_add(1), Ordering::SeqCst);
            self.inner
                .bottom
                .store(b.wrapping_add(1), Ordering::Relaxed);
            return Some(value);
        }

        let won = self
            .inner
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        // Either way the deque is now empty at bottom = b + 1 = top.
        self.inner
            .bottom
            .store(b.wrapping_add(1), Ordering::Relaxed);
        if won {
            // SAFETY: winning the CAS grants exclusive ownership of slot b
            // (== slot t); thieves that lost will not read it.
            Some(unsafe { (*buf).slot(b).read().assume_init() })
        } else {
            None
        }
    }

    // dcst-hot
    fn pop_fifo(&self) -> Option<T> {
        // FIFO pop takes from the top end, i.e. the owner competes like a
        // thief against real thieves. Retry on CAS contention: each retry
        // means some thief made progress, so this terminates.
        loop {
            match steal_from(&self.inner) {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => crate::sys::spin_hint(),
            }
        }
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Worker { .. }")
    }
}

/// A thief handle: lock-free `steal` from the top end, any thread.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Racy emptiness hint: may be stale by the time the caller acts on
    /// it, so it must only ever gate heuristics (e.g. the pool's pre-park
    /// re-check), never correctness.
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        b.wrapping_sub(t) <= 0
    }

    /// How many times the owner has grown this deque's buffer.
    pub fn grow_count(&self) -> u64 {
        self.inner.grows.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Attempts to steal the oldest item.
    // dcst-hot
    pub fn steal(&self) -> Steal<T> {
        steal_from(&self.inner)
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Stealer { .. }")
    }
}

/// The steal protocol, shared by `Stealer::steal` and FIFO `Worker::pop`.
// dcst-hot
fn steal_from<T>(inner: &Inner<T>) -> Steal<T> {
    let t = inner.top.load(Ordering::Acquire);
    // Order the `top` read before the `bottom` read: pairs with the fence
    // in `pop_lifo` so a concurrent owner pop of the last item is not
    // missed by both sides.
    fence(Ordering::SeqCst);
    let b = inner.bottom.load(Ordering::Acquire);

    if b.wrapping_sub(t) <= 0 {
        return Steal::Empty;
    }

    // Load the buffer only after `top`: even if the owner grows (and
    // retires this buffer) concurrently, retired buffers stay allocated
    // until drop and slot `t` of an older buffer still holds the item
    // copied from it, so the speculative read below stays sound.
    let buf = inner.buffer.load(Ordering::Acquire);
    // SAFETY: speculative read of slot t as MaybeUninit bytes; it is only
    // materialized as a T after winning the CAS below. The allocation is
    // alive (retired buffers are not freed until drop).
    let value = unsafe { (*buf).slot(t).read() };

    if inner
        .top
        .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
        .is_err()
    {
        // Lost the race for index t — the bytes read above are abandoned
        // without materializing a T, so no double drop can occur.
        return Steal::Retry;
    }

    // SAFETY: winning the CAS on `top` transfers ownership of index t to
    // this thief exclusively.
    Steal::Success(unsafe { value.assume_init() })
}
