//! Offline stand-in for `crossbeam-deque`: [`Worker`], [`Stealer`],
//! [`Injector`], [`Steal`] with the semantics the runtime's work-stealing
//! pool relies on. Built on mutex-protected `VecDeque`s instead of the
//! lock-free Chase–Lev deque — the same observable behaviour (FIFO or LIFO
//! local queue, batched injector steals, per-worker stealers stealing from
//! the opposite end) at a contention cost that is irrelevant at this
//! workspace's task granularity.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Empty => f(),
            other => other,
        }
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// First success wins; otherwise `Retry` if any source needs a retry.
impl<T> FromIterator<Steal<T>> for Steal<T> {
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut retry = false;
        for s in iter {
            match s {
                Steal::Success(v) => return Steal::Success(v),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

/// A worker's local queue. `new_fifo` gives FIFO pop order (submission
/// fairness); `new_lifo` pops the most recently pushed task (cache-hot
/// chains). Stealers always take from the front — the end LIFO owners pop
/// from last, matching crossbeam's flavor semantics.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    pub fn push(&self, value: T) {
        self.queue.lock().unwrap().push_back(value);
    }

    pub fn pop(&self) -> Option<T> {
        let mut q = self.queue.lock().unwrap();
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

/// Handle stealing single items from another worker's queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }
}

/// Global injector queue shared by all workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, value: T) {
        self.queue.lock().unwrap().push_back(value);
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Pop one task and move a batch of follow-ons to `dest` (half the
    /// queue, capped like crossbeam's batch limit).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock().unwrap();
        let first = match q.pop_front() {
            Some(v) => v,
            None => return Steal::Empty,
        };
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut d = dest.queue.lock().unwrap();
            for _ in 0..batch {
                match q.pop_front() {
                    Some(v) => d.push_back(v),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_via_injector_batches() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let mut got = Vec::new();
        while let Steal::Success(v) = inj.steal_batch_and_pop(&w) {
            got.push(v);
            while let Some(v) = w.pop() {
                got.push(v);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn collect_prefers_success() {
        let steals = vec![Steal::Empty, Steal::Retry, Steal::Success(7)];
        let s: Steal<i32> = steals.into_iter().collect();
        assert_eq!(s, Steal::Success(7));
        let s: Steal<i32> = vec![Steal::Empty, Steal::Retry].into_iter().collect();
        assert_eq!(s, Steal::Retry);
        let s: Steal<i32> = vec![Steal::Empty::<i32>].into_iter().collect();
        assert_eq!(s, Steal::Empty);
    }

    #[test]
    fn stealers_drain_worker() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty::<i32>);
    }

    #[test]
    fn lifo_owner_pops_newest_stealer_takes_oldest() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }
}
