//! Offline implementation of the `crossbeam-deque` API subset this
//! workspace uses: [`Worker`], [`Stealer`], [`Injector`], [`Steal`].
//!
//! Since PR 7 this is no longer a mutexed stand-in: the worker deque is a
//! real lock-free Chase–Lev deque ([`chase_lev`]) and the injector a
//! lock-free MPMC segment list ([`injector`]), both routed through the
//! [`sys`] atomic alias layer so the exact same protocol code runs under
//! `--cfg dcst_model_check` with loom-lite's instrumented atomics. The
//! original mutex-based implementation survives as [`mutexed`], serving as
//! the contention baseline in the scheduler task-storm bench.

mod chase_lev;
mod injector;
pub mod mutexed;
mod sys;

pub use chase_lev::{Stealer, Worker};
pub use injector::Injector;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was observed empty.
    Empty,
    /// An item was stolen.
    Success(T),
    /// Lost a race (CAS contention); the source may still have items.
    Retry,
}

impl<T> Steal<T> {
    /// If this attempt didn't succeed, try `f`. Crossbeam semantics: `f`
    /// runs on `Empty` *and* on `Retry`, and a `Retry` is sticky — if
    /// neither attempt succeeds but either needs a retry, the combined
    /// result is `Retry`, never a spurious `Empty` (a pool that parked on
    /// that `Empty` could strand a task until the backstop wake).
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Empty => f(),
            Steal::Success(v) => Steal::Success(v),
            Steal::Retry => {
                if let Steal::Success(v) = f() {
                    Steal::Success(v)
                } else {
                    Steal::Retry
                }
            }
        }
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// First success wins; otherwise `Retry` if any source needs a retry —
/// `Empty` only when every source reported empty, so a steal sweep never
/// tells the pool to park while a contended deque still holds work.
impl<T> FromIterator<Steal<T>> for Steal<T> {
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut retry = false;
        for s in iter {
            match s {
                Steal::Success(v) => return Steal::Success(v),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

#[cfg(all(test, not(dcst_model_check)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order_via_injector_batches() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let mut got = Vec::new();
        loop {
            match inj.steal_batch_and_pop(&w) {
                Steal::Success(v) => {
                    got.push(v);
                    while let Some(v) = w.pop() {
                        got.push(v);
                    }
                }
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn collect_prefers_success() {
        let steals = vec![Steal::Empty, Steal::Retry, Steal::Success(7)];
        let s: Steal<i32> = steals.into_iter().collect();
        assert_eq!(s, Steal::Success(7));
        let s: Steal<i32> = vec![Steal::Empty, Steal::Retry].into_iter().collect();
        assert_eq!(s, Steal::Retry);
        let s: Steal<i32> = vec![Steal::Empty::<i32>].into_iter().collect();
        assert_eq!(s, Steal::Empty);
    }

    #[test]
    fn collect_retry_sticks_across_mixes() {
        // Retry anywhere + no success => Retry, regardless of position.
        let s: Steal<i32> = vec![Steal::Retry, Steal::Empty, Steal::Empty]
            .into_iter()
            .collect();
        assert_eq!(s, Steal::Retry);
        let s: Steal<i32> = vec![Steal::Empty, Steal::Empty, Steal::Retry]
            .into_iter()
            .collect();
        assert_eq!(s, Steal::Retry);
        // Success after a Retry still wins.
        let s: Steal<i32> = vec![Steal::Retry, Steal::Success(1)].into_iter().collect();
        assert_eq!(s, Steal::Success(1));
        // All empty (and the empty iterator) => Empty.
        let s: Steal<i32> = vec![Steal::Empty, Steal::Empty].into_iter().collect();
        assert_eq!(s, Steal::Empty);
        let s: Steal<i32> = Vec::new().into_iter().collect();
        assert_eq!(s, Steal::Empty);
    }

    #[test]
    fn or_else_tries_fallback_on_retry_and_preserves_retry() {
        // Empty => fallback decides.
        assert_eq!(
            Steal::Empty.or_else(|| Steal::Success(1)),
            Steal::Success(1)
        );
        assert_eq!(Steal::<i32>::Empty.or_else(|| Steal::Empty), Steal::Empty);
        // Success short-circuits.
        assert_eq!(
            Steal::Success(2).or_else(|| Steal::Success(9)),
            Steal::Success(2)
        );
        // Retry runs the fallback...
        assert_eq!(
            Steal::Retry.or_else(|| Steal::Success(3)),
            Steal::Success(3)
        );
        // ...but stays Retry when the fallback doesn't succeed, even if the
        // fallback says Empty (the first source may still hold work).
        assert_eq!(Steal::<i32>::Retry.or_else(|| Steal::Empty), Steal::Retry);
        assert_eq!(Steal::<i32>::Retry.or_else(|| Steal::Retry), Steal::Retry);
    }

    #[test]
    fn stealers_drain_worker() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty::<i32>);
    }

    #[test]
    fn lifo_owner_pops_newest_stealer_takes_oldest() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn growth_preserves_order_and_items() {
        // Tiny initial capacity: forces many doublings.
        let w = Worker::new_lifo_with_capacity(2);
        let s = w.stealer();
        for i in 0..1000 {
            w.push(i);
        }
        assert!(
            w.grow_count() >= 8,
            "expected growth, got {}",
            w.grow_count()
        );
        assert_eq!(w.len(), 1000);
        // Steal half from the top (oldest first)...
        for i in 0..500 {
            assert_eq!(s.steal(), Steal::Success(i));
        }
        // ...and pop the rest LIFO (newest first).
        for i in (500..1000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn dropping_deque_drops_remaining_items_exactly_once() {
        let token = Arc::new(());
        {
            let w = Worker::new_lifo_with_capacity(2);
            let _s = w.stealer();
            for _ in 0..100 {
                w.push(Arc::clone(&token));
            }
            w.pop();
            // 99 items left in a grown deque (plus retired buffers).
        }
        assert_eq!(Arc::strong_count(&token), 1);

        let token = Arc::new(());
        {
            let inj = Injector::new();
            // Span multiple blocks (31 slots each).
            for _ in 0..100 {
                inj.push(Arc::clone(&token));
            }
            let mut n = 0;
            while inj.steal().is_success() {
                n += 1;
                if n == 40 {
                    break;
                }
            }
        }
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn injector_fifo_and_block_boundaries() {
        let inj = Injector::new();
        // 100 items cross three 31-slot blocks.
        for i in 0..100 {
            inj.push(i);
        }
        assert!(!inj.is_empty());
        for i in 0..100 {
            assert_eq!(inj.steal(), Steal::Success(i));
        }
        assert_eq!(inj.steal(), Steal::Empty::<i32>);
        assert!(inj.is_empty());
        // Reusable after a full drain.
        inj.push(7);
        assert_eq!(inj.steal(), Steal::Success(7));
    }

    #[test]
    fn concurrent_steal_and_pop_deliver_each_item_once() {
        // 4 thieves + the owner popping, tiny buffer so growth happens
        // under active stealing. Every pushed item must be seen exactly
        // once across all parties.
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 4;
        let w = Worker::new_lifo_with_capacity(2);
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
        let done = Arc::new(AtomicUsize::new(0));

        // Pre-fill past the initial capacity before any thief exists, so
        // at least one growth is guaranteed deterministically; later
        // growths then happen under live stealing.
        for i in 0..16 {
            w.push(i);
        }
        assert!(w.grow_count() > 0);

        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = w.stealer();
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                std::thread::spawn(move || loop {
                    match s.steal() {
                        Steal::Success(i) => {
                            seen[i].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                return;
                            }
                            std::thread::yield_now();
                        }
                        Steal::Retry => std::hint::spin_loop(),
                    }
                })
            })
            .collect();

        for i in 16..ITEMS {
            w.push(i);
            if i % 3 == 0 {
                if let Some(j) = w.pop() {
                    seen[j].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        while let Some(j) = w.pop() {
            seen[j].fetch_add(1, Ordering::Relaxed);
        }
        done.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        // Owner drained everything it could and thieves exited on Empty;
        // anything left (raced in at the end) is still in the deque: none,
        // since the owner drained after the last push.
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} delivered {c:?} times"
            );
        }
    }

    #[test]
    fn injector_mpmc_delivers_each_item_once() {
        const PER_PRODUCER: usize = 10_000;
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 4;
        let inj = Arc::new(Injector::new());
        let seen: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..PER_PRODUCER * PRODUCERS)
                .map(|_| AtomicUsize::new(0))
                .collect(),
        );
        let pushed = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let inj = Arc::clone(&inj);
                let pushed = Arc::clone(&pushed);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        inj.push(p * PER_PRODUCER + i);
                        pushed.fetch_add(1, Ordering::Release);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let inj = Arc::clone(&inj);
                let seen = Arc::clone(&seen);
                let pushed = Arc::clone(&pushed);
                std::thread::spawn(move || loop {
                    match inj.steal() {
                        Steal::Success(i) => {
                            seen[i].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if pushed.load(Ordering::Acquire) == PER_PRODUCER * PRODUCERS
                                && inj.is_empty()
                            {
                                return;
                            }
                            std::thread::yield_now();
                        }
                        Steal::Retry => std::hint::spin_loop(),
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        for h in consumers {
            h.join().unwrap();
        }
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} delivered {c:?} times"
            );
        }
    }

    #[test]
    fn steal_batch_and_pop_moves_batch_to_dest() {
        let inj = Injector::new();
        for i in 0..40 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let first = inj.steal_batch_and_pop(&w);
        assert_eq!(first, Steal::Success(0));
        // Batch cap is 16; dest received a FIFO prefix of the remainder.
        let batched = w.len();
        assert!(batched > 0 && batched <= 16, "batched = {batched}");
        for i in 0..batched {
            assert_eq!(w.pop(), Some(i + 1));
        }
    }

    #[test]
    fn mutexed_baseline_matches_semantics() {
        let inj = mutexed::Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = mutexed::Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        let s = w.stealer();
        assert!(!s.is_empty());
        assert!(s.steal().is_success());
    }
}
