//! The original mutex-based stand-in, kept as the contention baseline for
//! the scheduler task-storm bench (`metrics_overhead --sched-out`): same
//! observable semantics as the lock-free [`crate::Worker`] /
//! [`crate::Injector`] (FIFO/LIFO local queue, front-stealing, batched
//! injector steals), but every operation takes a lock. Not used by the
//! runtime.
//!
//! Lock poisoning is tolerated (`PoisonError::into_inner`): the queues hold
//! plain task payloads with no invariant spanning the critical section, and
//! a bench thread that panicked mid-push must not wedge its peers.

use crate::Steal;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Mutexed worker queue. `new_fifo` pops in push order, `new_lifo` pops the
/// most recent push; stealers always take from the front.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    pub fn push(&self, value: T) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(value);
    }

    pub fn pop(&self) -> Option<T> {
        let mut q = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_empty()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

/// Handle stealing single items from the front of a mutexed worker queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
        {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_empty()
    }
}

/// Mutexed global injection queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, value: T) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(value);
    }

    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_empty()
    }

    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
        {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Pop one task and move a batch of follow-ons to `dest` (half the
    /// queue, capped like crossbeam's batch limit).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let first = match q.pop_front() {
            Some(v) => v,
            None => return Steal::Empty,
        };
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut d = dest
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for _ in 0..batch {
                match q.pop_front() {
                    Some(v) => d.push_back(v),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}
