//! QR-iteration robustness: gradings, clusters, sign conventions, and
//! agreement between the value-only and full paths.

use dcst_qriter::{eigenvalues, steqr, QrIteration};
use dcst_tridiag::gen::MatrixType;
use dcst_tridiag::{sturm_count, SymTridiag};

#[test]
fn strongly_graded_matrix() {
    // Diagonal spanning 12 orders of magnitude with couplings at the
    // geometric means — normwise-stable QR must still deliver small
    // residuals relative to ‖T‖.
    let n = 24;
    let d: Vec<f64> = (0..n).map(|i| 10f64.powi(-(i as i32) / 2)).collect();
    let e: Vec<f64> = (0..n - 1).map(|i| 0.1 * (d[i] * d[i + 1]).sqrt()).collect();
    let t = SymTridiag::new(d, e);
    let (lam, v) = steqr(&t).unwrap();
    let r = dcst_matrix::residual_error(n, |x, y| t.matvec(x, y), &lam, &v, t.max_norm());
    assert!(r < 1e-14, "residual {r}");
    assert!(dcst_matrix::orthogonality_error(&v) < 1e-14);
}

#[test]
fn eigenvalue_counts_match_sturm() {
    let t = MatrixType::Type6.generate(60, 44);
    let lam = eigenvalues(&t).unwrap();
    for &probe in &[-0.9, -0.5, 0.0, 0.3, 0.8] {
        let direct = lam.iter().filter(|&&l| l < probe).count();
        assert_eq!(sturm_count(&t, probe), direct, "probe {probe}");
    }
}

#[test]
fn sign_flip_of_offdiagonals_preserves_spectrum() {
    // T and DTD with D = diag(±1) are similar: flipping the sign of any
    // off-diagonal entry leaves the spectrum unchanged.
    let t = MatrixType::Type6.generate(40, 8);
    let mut e = t.e.clone();
    for (i, x) in e.iter_mut().enumerate() {
        if i % 3 == 0 {
            *x = -*x;
        }
    }
    let flipped = SymTridiag::new(t.d.clone(), e);
    let a = eigenvalues(&t).unwrap();
    let b = eigenvalues(&flipped).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-12 * t.max_norm().max(1.0));
    }
}

#[test]
fn zero_matrix_and_constant_diagonal() {
    let z = SymTridiag::new(vec![0.0; 10], vec![0.0; 9]);
    let (lam, v) = steqr(&z).unwrap();
    assert!(lam.iter().all(|&l| l == 0.0));
    assert!(dcst_matrix::orthogonality_error(&v) < 1e-15);

    let c = SymTridiag::new(vec![3.5; 10], vec![0.0; 9]);
    let (lam, _) = steqr(&c).unwrap();
    assert!(lam.iter().all(|&l| l == 3.5));
}

#[test]
fn two_by_two_exact_rotation() {
    // Known analytic eigenpair: [[3, 4], [4, -3]] has λ = ±5.
    let t = SymTridiag::new(vec![3.0, -3.0], vec![4.0]);
    let (lam, v) = steqr(&t).unwrap();
    assert!((lam[0] + 5.0).abs() < 1e-14);
    assert!((lam[1] - 5.0).abs() < 1e-14);
    // Eigenvector of λ = 5: (2, 1)/√5.
    let ratio = v[(0, 1)] / v[(1, 1)];
    assert!((ratio - 2.0).abs() < 1e-13, "ratio {ratio}");
}

#[test]
fn values_only_path_is_consistent_across_types() {
    for ty in [
        MatrixType::Type8,
        MatrixType::Type11,
        MatrixType::Type12,
        MatrixType::Type15,
    ] {
        let t = ty.generate(48, 12);
        let only = QrIteration.solve_values(&t).unwrap();
        let (full, _) = QrIteration.solve(&t).unwrap();
        for (a, b) in only.iter().zip(&full) {
            assert!(
                (a - b).abs() < 1e-11 * t.max_norm().max(1.0),
                "type {}",
                ty.index()
            );
        }
    }
}

#[test]
fn near_reducible_chain() {
    // Alternating strong/negligible couplings: effectively 2x2 blocks.
    let n = 12;
    let d = vec![1.0; n];
    let e: Vec<f64> = (0..n - 1)
        .map(|i| if i % 2 == 0 { 0.5 } else { 1e-300 })
        .collect();
    let t = SymTridiag::new(d, e);
    let (lam, v) = steqr(&t).unwrap();
    // Spectrum: 0.5 and 1.5, each with multiplicity n/2.
    assert_eq!(
        lam.iter().filter(|&&l| (l - 0.5).abs() < 1e-12).count(),
        n / 2
    );
    assert_eq!(
        lam.iter().filter(|&&l| (l - 1.5).abs() < 1e-12).count(),
        n / 2
    );
    assert!(dcst_matrix::orthogonality_error(&v) < 1e-14);
}
