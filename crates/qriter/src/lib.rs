//! Implicit-shift QR iteration for the symmetric tridiagonal eigenproblem.
//!
//! This is the workspace's `dsteqr`/`dsterf` analogue: the leaf solver of
//! the divide & conquer tree and the reference solver in tests. One
//! Wilkinson-shifted implicit QR sweep per outer iteration, bulge chased
//! top-to-bottom, rotations optionally accumulated into an eigenvector
//! block.

mod steqr;

pub use steqr::{eigenvalues, steqr, steqr_mut, QrError, ZBlock};

use dcst_matrix::Matrix;
use dcst_tridiag::SymTridiag;

/// Facade: the QR-iteration tridiagonal eigensolver.
///
/// ```
/// use dcst_qriter::QrIteration;
/// use dcst_tridiag::SymTridiag;
///
/// let t = SymTridiag::toeplitz121(16);
/// let (values, vectors) = QrIteration.solve(&t).unwrap();
/// assert_eq!(values.len(), 16);
/// assert_eq!(vectors.cols(), 16);
/// ```
pub struct QrIteration;

impl QrIteration {
    /// Full eigen-decomposition `T = V Λ Vᵀ`; values ascending, vectors in
    /// matching column order.
    pub fn solve(&self, t: &SymTridiag) -> Result<(Vec<f64>, Matrix), QrError> {
        steqr(t)
    }

    /// Eigenvalues only (root-free), ascending.
    pub fn solve_values(&self, t: &SymTridiag) -> Result<Vec<f64>, QrError> {
        eigenvalues(t)
    }
}
