//! The implicit-shift QR sweep and its driver.

use dcst_matrix::util::{lapy2, EPS, SAFE_MIN};
use dcst_matrix::Matrix;
use dcst_tridiag::SymTridiag;

/// Maximum QR sweeps per eigenvalue before giving up (LAPACK uses 30).
const MAXIT_PER_EIG: usize = 30;

/// Error from the QR iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QrError {
    /// Input contained NaN or infinity.
    NonFinite,
    /// An unreduced block failed to converge within `30·n` sweeps.
    NoConvergence {
        block_start: usize,
        block_end: usize,
    },
}

impl std::fmt::Display for QrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QrError::NonFinite => write!(f, "matrix contains NaN or infinite entries"),
            QrError::NoConvergence {
                block_start,
                block_end,
            } => {
                write!(
                    f,
                    "QR iteration failed to converge on block {block_start}..={block_end}"
                )
            }
        }
    }
}

impl std::error::Error for QrError {}

impl QrError {
    /// Translate a block-local failure to global matrix coordinates by
    /// adding the leaf's row offset (drivers report errors in global rows).
    pub fn with_offset(self, off: usize) -> Self {
        match self {
            QrError::NonFinite => QrError::NonFinite,
            QrError::NoConvergence {
                block_start,
                block_end,
            } => QrError::NoConvergence {
                block_start: block_start + off,
                block_end: block_end + off,
            },
        }
    }
}

/// A column-major eigenvector block with leading dimension `ld`: the
/// iteration updates `nrows` rows of columns `0..ncols` of `buf`.
///
/// For a standalone solve this is a whole `n x n` matrix; inside D&C it is
/// the leaf's diagonal block of the global eigenvector matrix.
pub struct ZBlock<'a> {
    pub buf: &'a mut [f64],
    pub ld: usize,
    pub nrows: usize,
}

impl ZBlock<'_> {
    #[inline]
    fn rotate_cols(&mut self, j: usize, c: f64, s: f64) {
        // [col_j, col_{j+1}] ← [col_j, col_{j+1}] · [[c, s], [-s, c]]
        let (a, b) = self.buf.split_at_mut((j + 1) * self.ld);
        let colj = &mut a[j * self.ld..j * self.ld + self.nrows];
        let colj1 = &mut b[..self.nrows];
        for (x, y) in colj.iter_mut().zip(colj1.iter_mut()) {
            let (xv, yv) = (*x, *y);
            *x = c * xv - s * yv;
            *y = s * xv + c * yv;
        }
    }

    fn swap_cols(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let (i, j) = (i.min(j), i.max(j));
        let (a, b) = self.buf.split_at_mut(j * self.ld);
        a[i * self.ld..i * self.ld + self.nrows].swap_with_slice(&mut b[..self.nrows]);
    }
}

/// Givens pair `(c, s)` with `c·x − s·z = r ≥ |x|`-ish and `s·x + c·z = 0`.
#[inline]
fn givens(x: f64, z: f64) -> (f64, f64, f64) {
    if z == 0.0 {
        return (1.0, 0.0, x);
    }
    let r = lapy2(x, z);
    (x / r, -z / r, r)
}

/// Wilkinson shift for the trailing 2×2 `[[a, b], [b, c]]`: the eigenvalue
/// of the block closer to `c`.
#[inline]
fn wilkinson_shift(a: f64, b: f64, c: f64) -> f64 {
    let delta = 0.5 * (a - c);
    if delta == 0.0 && b == 0.0 {
        return c;
    }
    let denom = delta.abs() + lapy2(delta, b);
    let sgn = if delta >= 0.0 { 1.0 } else { -1.0 };
    c - sgn * b * b / denom
}

/// One implicit QR sweep with shift `mu` on the unreduced block `l..=m`.
fn qr_sweep(d: &mut [f64], e: &mut [f64], l: usize, m: usize, mu: f64, z: &mut Option<ZBlock<'_>>) {
    let mut x = d[l] - mu;
    let mut bulge = e[l];
    for k in l..m {
        let (c, s, r) = givens(x, bulge);
        if k > l {
            e[k - 1] = r;
        }
        // Two-sided rotation on rows/cols (k, k+1).
        let (dk, dk1, ek) = (d[k], d[k + 1], e[k]);
        d[k] = c * c * dk - 2.0 * c * s * ek + s * s * dk1;
        d[k + 1] = s * s * dk + 2.0 * c * s * ek + c * c * dk1;
        e[k] = c * s * (dk - dk1) + (c * c - s * s) * ek;
        if k + 1 < m {
            bulge = -s * e[k + 1];
            e[k + 1] *= c;
        }
        x = e[k];
        if let Some(zb) = z.as_mut() {
            zb.rotate_cols(k, c, s);
        }
    }
}

/// Negligibility threshold for `e[i]` between `d[i]` and `d[i+1]`
/// (LAPACK's geometric-mean test).
#[inline]
fn negligible(e: f64, di: f64, di1: f64) -> bool {
    let tst = e.abs();
    tst * tst <= EPS * EPS * di.abs() * di1.abs() + SAFE_MIN
}

/// In-place QR iteration on `(d, e)`; on success `d` holds eigenvalues
/// ascending and `e` is destroyed. If `z` is given, its columns are
/// transformed by the accumulated rotations and permuted with the final
/// sort — pass identity to obtain the eigenvectors of the tridiagonal.
///
/// A block that exhausts its Wilkinson-shift sweep budget is retried once
/// with a fresh budget under an exceptional-shift strategy (à la `dlahqr`)
/// before `NoConvergence` is reported.
pub fn steqr_mut(d: &mut [f64], e: &mut [f64], z: Option<ZBlock<'_>>) -> Result<(), QrError> {
    steqr_mut_with_budget(d, e, z, MAXIT_PER_EIG, true)
}

/// Test hook: run the iteration with an explicit per-eigenvalue sweep
/// budget and the rescue retry toggled, so starvation and rescue can be
/// exercised without a pathological input.
#[doc(hidden)]
pub fn steqr_mut_with_budget(
    d: &mut [f64],
    e: &mut [f64],
    mut z: Option<ZBlock<'_>>,
    maxit_per_eig: usize,
    rescue: bool,
) -> Result<(), QrError> {
    let n = d.len();
    assert!(
        e.len() + 1 == n || (n == 0 && e.is_empty()),
        "off-diagonal length mismatch"
    );
    if let Some(zb) = &z {
        assert!(zb.ld >= zb.nrows && zb.buf.len() >= n.saturating_sub(1) * zb.ld + zb.nrows);
    }
    if d.iter().chain(e.iter()).any(|x| !x.is_finite()) {
        return Err(QrError::NonFinite);
    }
    if n <= 1 {
        return Ok(());
    }
    if dcst_matrix::failpoints::fire("steqr") {
        return Err(QrError::NoConvergence {
            block_start: 0,
            block_end: n - 1,
        });
    }

    // Global scaling keeps squared quantities representable.
    let anorm = d
        .iter()
        .chain(e.iter())
        .fold(0.0f64, |a, &x| a.max(x.abs()));
    let mut scale = 1.0;
    if anorm > 0.0 {
        if anorm > 1e145 {
            scale = 1e145 / anorm;
        } else if anorm < 1e-145 {
            scale = 1e-145 / anorm;
        }
    }
    if scale != 1.0 {
        d.iter_mut().for_each(|x| *x *= scale);
        e.iter_mut().for_each(|x| *x *= scale);
    }

    let mut maxit = maxit_per_eig * n;
    let mut iters = 0usize;
    // Once the Wilkinson budget is exhausted the block gets a single fresh
    // budget under a different shift strategy: every fourth sweep uses an
    // exceptional shift (a deliberate perturbation off the trailing 2×2's
    // eigenvalue, as dlahqr does) to break shift-cycling stagnation.
    let mut rescuing = false;
    let mut m = n - 1; // current active bottom index
    while m > 0 {
        // Deflate converged bottom eigenvalues.
        if negligible(e[m - 1], d[m - 1], d[m]) {
            e[m - 1] = 0.0;
            m -= 1;
            continue;
        }
        // Find the top of the unreduced block ending at m.
        let mut l = m - 1;
        while l > 0 && !negligible(e[l - 1], d[l - 1], d[l]) {
            l -= 1;
        }
        if iters >= maxit {
            if rescue && !rescuing {
                rescuing = true;
                maxit = iters + MAXIT_PER_EIG * n;
            } else {
                return Err(QrError::NoConvergence {
                    block_start: l,
                    block_end: m,
                });
            }
        }
        iters += 1;
        let mu = if rescuing && iters.is_multiple_of(4) {
            d[m] - 0.75 * e[m - 1].abs()
        } else {
            wilkinson_shift(d[m - 1], e[m - 1], d[m])
        };
        qr_sweep(d, e, l, m, mu, &mut z);
    }

    // One batched registry update per successful call (never per sweep).
    dcst_matrix::metrics::add("steqr.sweeps", iters as u64);
    if rescuing {
        dcst_matrix::metrics::add("steqr.exceptional_rescues", 1);
    }

    if scale != 1.0 {
        let inv = 1.0 / scale;
        d.iter_mut().for_each(|x| *x *= inv);
    }

    // Sort eigenvalues ascending, permuting eigenvector columns in step
    // (selection sort with column swaps, as in dsteqr).
    for i in 0..n - 1 {
        let mut kmin = i;
        for j in i + 1..n {
            if d[j] < d[kmin] {
                kmin = j;
            }
        }
        if kmin != i {
            d.swap(i, kmin);
            if let Some(zb) = z.as_mut() {
                zb.swap_cols(i, kmin);
            }
        }
    }
    // NaN-corruption site: models a silent kernel breakdown that produces
    // garbage instead of an error, for testing downstream detection.
    dcst_matrix::failpoints::poke_nan("nan-steqr", d);
    Ok(())
}

/// Full eigen-decomposition of `t`: values ascending plus the orthogonal
/// eigenvector matrix.
pub fn steqr(t: &SymTridiag) -> Result<(Vec<f64>, Matrix), QrError> {
    let n = t.n();
    let mut d = t.d.clone();
    let mut e = t.e.clone();
    let mut v = Matrix::identity(n);
    {
        let z = ZBlock {
            buf: v.as_mut_slice(),
            ld: n.max(1),
            nrows: n,
        };
        steqr_mut(&mut d, &mut e, Some(z))?;
    }
    Ok((d, v))
}

/// Eigenvalues only, ascending (root-free `dsterf` analogue).
pub fn eigenvalues(t: &SymTridiag) -> Result<Vec<f64>, QrError> {
    let mut d = t.d.clone();
    let mut e = t.e.clone();
    steqr_mut(&mut d, &mut e, None)?;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::{orthogonality_error, residual_error};
    use dcst_tridiag::gen::MatrixType;

    fn check_eigen(t: &SymTridiag, lam: &[f64], v: &Matrix, tol_scale: f64) {
        let n = t.n();
        let orth = orthogonality_error(v);
        assert!(orth < tol_scale * 1e-15, "orthogonality {orth}");
        let res = residual_error(n, |x, y| t.matvec(x, y), lam, v, t.max_norm());
        assert!(res < tol_scale * 1e-15, "residual {res}");
        assert!(lam.windows(2).all(|w| w[0] <= w[1]), "values sorted");
    }

    #[test]
    fn solves_known_2x2() {
        let t = SymTridiag::new(vec![2.0, 0.0], vec![1.0]);
        let (lam, v) = steqr(&t).unwrap();
        // Eigenvalues of [[2,1],[1,0]] are 1 ± sqrt(2).
        assert!((lam[0] - (1.0 - 2.0f64.sqrt())).abs() < 1e-14);
        assert!((lam[1] - (1.0 + 2.0f64.sqrt())).abs() < 1e-14);
        check_eigen(&t, &lam, &v, 10.0);
    }

    #[test]
    fn solves_toeplitz_exactly() {
        let n = 24;
        let t = SymTridiag::toeplitz121(n);
        let (lam, v) = steqr(&t).unwrap();
        for (k, &l) in lam.iter().enumerate() {
            let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - want).abs() < 1e-13, "eig {k}: {l} vs {want}");
        }
        check_eigen(&t, &lam, &v, 10.0);
    }

    #[test]
    fn diagonal_matrix_is_only_sorted() {
        let t = SymTridiag::new(vec![3.0, 1.0, 2.0], vec![0.0, 0.0]);
        let (lam, v) = steqr(&t).unwrap();
        assert_eq!(lam, vec![1.0, 2.0, 3.0]);
        // Eigenvectors are permuted unit vectors.
        assert_eq!(v.col(0)[1], 1.0);
        assert_eq!(v.col(1)[2], 1.0);
        assert_eq!(v.col(2)[0], 1.0);
    }

    #[test]
    fn all_table3_types_small() {
        for ty in MatrixType::ALL {
            let t = ty.generate(60, 42);
            let (lam, v) = steqr(&t).unwrap();
            check_eigen(&t, &lam, &v, 100.0);
        }
    }

    #[test]
    fn wilkinson_has_close_pairs() {
        let t = dcst_tridiag::gen::wilkinson(21);
        let (lam, v) = steqr(&t).unwrap();
        check_eigen(&t, &lam, &v, 100.0);
        // The top pair of W21+ agrees to ~1e-15 relative.
        let gap = lam[20] - lam[19];
        assert!(gap < 1e-12, "top Wilkinson pair gap {gap}");
    }

    #[test]
    fn eigenvalues_match_full_solve() {
        let t = MatrixType::Type6.generate(50, 3);
        let only = eigenvalues(&t).unwrap();
        let (lam, _) = steqr(&t).unwrap();
        for (a, b) in only.iter().zip(&lam) {
            assert!((a - b).abs() < 1e-12 * t.max_norm());
        }
    }

    #[test]
    fn starved_budget_fails_without_rescue_but_recovers_with_it() {
        let t = MatrixType::Type4.generate(40, 7);
        // One sweep per eigenvalue is far too few for a dense-spectrum
        // matrix: without the rescue path the block must report failure.
        let mut d = t.d.clone();
        let mut e = t.e.clone();
        let err = steqr_mut_with_budget(&mut d, &mut e, None, 1, false).unwrap_err();
        assert!(matches!(err, QrError::NoConvergence { .. }));
        // The rescue grants a fresh budget under the exceptional-shift
        // strategy and must converge to the same spectrum as the normal
        // solver.
        let mut d = t.d.clone();
        let mut e = t.e.clone();
        steqr_mut_with_budget(&mut d, &mut e, None, 1, true).unwrap();
        let want = eigenvalues(&t).unwrap();
        for (a, b) in d.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12 * t.max_norm(), "{a} vs {b}");
        }
    }

    #[test]
    fn rescue_preserves_eigenvectors() {
        let t = MatrixType::Type5.generate(32, 11);
        let n = t.n();
        let mut d = t.d.clone();
        let mut e = t.e.clone();
        let mut v = Matrix::identity(n);
        {
            let z = ZBlock {
                buf: v.as_mut_slice(),
                ld: n,
                nrows: n,
            };
            steqr_mut_with_budget(&mut d, &mut e, Some(z), 1, true).unwrap();
        }
        check_eigen(&t, &d, &v, 100.0);
    }

    #[test]
    fn offset_translation_maps_block_coordinates() {
        let err = QrError::NoConvergence {
            block_start: 2,
            block_end: 5,
        };
        assert_eq!(
            err.with_offset(100),
            QrError::NoConvergence {
                block_start: 102,
                block_end: 105,
            }
        );
        assert_eq!(QrError::NonFinite.with_offset(7), QrError::NonFinite);
    }

    #[test]
    fn rejects_non_finite() {
        let t = SymTridiag::new(vec![1.0, f64::NAN], vec![1.0]);
        assert_eq!(steqr(&t).unwrap_err(), QrError::NonFinite);
    }

    #[test]
    fn empty_and_singleton() {
        let (lam, _) = steqr(&SymTridiag::new(vec![], vec![])).unwrap();
        assert!(lam.is_empty());
        let (lam, v) = steqr(&SymTridiag::new(vec![5.0], vec![])).unwrap();
        assert_eq!(lam, vec![5.0]);
        assert_eq!(v.as_slice(), &[1.0]);
    }

    #[test]
    fn scaling_handles_extreme_norms() {
        let t = SymTridiag::new(vec![1e200, -1e200, 5e199], vec![1e199, 2e199]);
        let (lam, v) = steqr(&t).unwrap();
        check_eigen(&t, &lam, &v, 100.0);
        let t = SymTridiag::new(vec![1e-200, -1e-200, 5e-201], vec![1e-201, 2e-201]);
        let (lam, v) = steqr(&t).unwrap();
        check_eigen(&t, &lam, &v, 100.0);
    }

    #[test]
    fn zblock_with_offset_ld() {
        // Solve a 3x3 leaf writing into the middle block of a 7x7 matrix.
        let t = SymTridiag::new(vec![1.0, 2.0, 3.0], vec![0.5, 0.5]);
        let n = 3;
        let big = 7usize;
        let mut v = Matrix::zeros(big, big);
        // Identity block at (2, 2).
        for i in 0..n {
            v[(2 + i, 2 + i)] = 1.0;
        }
        let mut d = t.d.clone();
        let mut e = t.e.clone();
        {
            let off = 2 + 2 * big;
            let z = ZBlock {
                buf: &mut v.as_mut_slice()[off..],
                ld: big,
                nrows: n,
            };
            steqr_mut(&mut d, &mut e, Some(z)).unwrap();
        }
        // The 3x3 block must be the leaf's eigenvectors; rest untouched.
        let (lam_ref, v_ref) = steqr(&t).unwrap();
        for (a, b) in d.iter().zip(&lam_ref) {
            assert!((a - b).abs() < 1e-14);
        }
        for j in 0..n {
            for i in 0..n {
                assert!((v[(2 + i, 2 + j)].abs() - v_ref[(i, j)].abs()).abs() < 1e-12);
            }
        }
        assert_eq!(v[(0, 0)], 0.0);
        assert_eq!(v[(6, 6)], 0.0);
    }
}
