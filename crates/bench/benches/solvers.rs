//! Criterion end-to-end benchmarks: the four D&C variants and MRRR on one
//! representative matrix per deflation regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcst_core::{
    DcOptions, ForkJoinDc, LevelParallelDc, SequentialDc, TaskFlowDc, TridiagEigensolver,
};
use dcst_mrrr::{MrrrOptions, MrrrSolver};
use dcst_tridiag::gen::MatrixType;

fn opts(threads: usize) -> DcOptions {
    DcOptions {
        threads,
        ..DcOptions::default()
    }
}

fn bench_solvers(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let n = 512;
    for ty in [MatrixType::Type2, MatrixType::Type4] {
        let t = ty.generate(n, 21);
        let mut group = c.benchmark_group(format!("solve_type{}_n{n}", ty.index()));
        group.sample_size(10);
        let solvers: Vec<Box<dyn TridiagEigensolver>> = vec![
            Box::new(SequentialDc::new(opts(1))),
            Box::new(ForkJoinDc::new(opts(threads))),
            Box::new(LevelParallelDc::new(opts(threads))),
            Box::new(TaskFlowDc::new(opts(threads))),
        ];
        for solver in &solvers {
            group.bench_with_input(
                BenchmarkId::from_parameter(solver.name()),
                &t,
                |bench, t| {
                    bench.iter(|| solver.solve(t).unwrap());
                },
            );
        }
        let mrrr = MrrrSolver::new(MrrrOptions {
            threads,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter("mrrr"), &t, |bench, t| {
            bench.iter(|| mrrr.solve(t).unwrap());
        });
        group.finish();
    }
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
