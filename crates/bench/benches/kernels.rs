//! Criterion micro-benchmarks of the numerical kernels underlying the
//! merge phase: GEMM, secular-equation roots, deflation, the QR-iteration
//! leaf solver, and the prescribed-spectrum generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcst_matrix::{gemm, gemm_axpy_ref, gemm_par};
use dcst_secular::{deflate, solve_secular_root, DeflationInput};
use dcst_tridiag::gen::MatrixType;

/// Packed micro-kernel GEMM (1 and 2 threads) against the seed
/// register-blocked AXPY kernel kept as `gemm_axpy_ref`.
fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256, 512] {
        let a = vec![0.5f64; n * n];
        let b = vec![0.25f64; n * n];
        let mut out = vec![0.0f64; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bench, &n| {
            bench.iter(|| gemm(n, n, n, 1.0, &a, n, &b, n, 0.0, &mut out, n));
        });
        group.bench_with_input(BenchmarkId::new("packed_2t", n), &n, |bench, &n| {
            bench.iter(|| gemm_par(2, n, n, n, 1.0, &a, n, &b, n, 0.0, &mut out, n));
        });
        group.bench_with_input(BenchmarkId::new("axpy_ref", n), &n, |bench, &n| {
            bench.iter(|| gemm_axpy_ref(n, n, n, 1.0, &a, n, &b, n, 0.0, &mut out, n));
        });
    }
    group.finish();
}

fn bench_secular(c: &mut Criterion) {
    let mut group = c.benchmark_group("secular_roots");
    for &k in &[64usize, 256, 1024] {
        let d: Vec<f64> = (0..k).map(|i| i as f64).collect();
        let z = vec![(1.0 / k as f64).sqrt(); k];
        let mut delta = vec![0.0; k];
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            bench.iter(|| {
                // Solve a representative middle root.
                solve_secular_root(k / 2, &d, &z, 1.0, &mut delta).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_deflation(c: &mut Criterion) {
    let mut group = c.benchmark_group("deflation");
    for &n in &[256usize, 1024] {
        let d: Vec<f64> = (0..n).map(|i| (i / 2) as f64).collect(); // pairs of ties
        let z = vec![(1.0 / n as f64).sqrt(); n];
        let idxq: Vec<usize> = {
            let mut v: Vec<usize> = (0..n / 2).collect();
            v.extend(n / 2..n);
            v
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                deflate(&DeflationInput {
                    d: &d,
                    z: &z,
                    beta: 1.0,
                    n1: n / 2,
                    idxq: &idxq,
                })
            });
        });
    }
    group.finish();
}

fn bench_leaf_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("steqr_leaf");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let t = MatrixType::Type6.generate(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| dcst_qriter::steqr(&t).unwrap());
        });
    }
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("rkpw_generator");
    group.sample_size(20);
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| MatrixType::Type3.generate(n, 9));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_secular,
    bench_deflation,
    bench_leaf_solver,
    bench_generator
);
criterion_main!(benches);
