//! Subset computation (the paper's Section I: MRRR's main asset is the
//! Θ(n·k) subset solve, "such an option was not included within the
//! classical D&C implementations").
//!
//! Times MRRR computing k of n eigenpairs against both the full MRRR
//! solve and the full task-flow D&C solve: the crossover shows when the
//! subset capability makes MRRR the right choice even where full-spectrum
//! D&C wins.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin subset -- --n 1024
//! ```

use dcst_bench::{fmt_s, time_taskflow, Args, Table};
use dcst_mrrr::{MrrrOptions, MrrrSolver};
use dcst_tridiag::gen::MatrixType;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 1024);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());
    let t = MatrixType::Type4.generate(n, 55);
    let mrrr = MrrrSolver::new(MrrrOptions {
        threads,
        ..Default::default()
    });

    let start = Instant::now();
    let _ = mrrr.solve(&t).expect("full mrrr");
    let t_full_mrrr = start.elapsed().as_secs_f64();
    let (t_dc, _, _) = time_taskflow(threads, &t);

    println!(
        "type 4 matrix, n = {n}: full MRRR {} | full task-flow D&C {}\n",
        fmt_s(t_full_mrrr),
        fmt_s(t_dc)
    );
    let mut table = Table::new(&[
        "k (subset size)",
        "t_mrrr(k of n)",
        "vs full MRRR",
        "vs full D&C",
    ]);
    for frac in [1usize, 5, 10, 25, 50] {
        let k = (n * frac / 100).max(1);
        let start = Instant::now();
        let (vals, vecs) = mrrr.solve_range(&t, 0, k - 1).expect("subset mrrr");
        let tk = start.elapsed().as_secs_f64();
        assert!(vals.len() >= k && vecs.cols() == vals.len());
        table.row(vec![
            format!("{k} ({frac}%)"),
            fmt_s(tk),
            format!("{:.1}x faster", t_full_mrrr / tk),
            format!("{:.1}x vs D&C", t_dc / tk),
        ]);
    }
    table.print();
}
