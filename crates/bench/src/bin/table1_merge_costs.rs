//! Table I: operation costs of the merge steps, plus the merge-phase
//! perf trajectory for the SIMD secular kernels.
//!
//! Runs the task-flow solver on a low-deflation matrix, prints the paper's
//! cost model instantiated per merge (columns of Table I) next to the
//! measured per-kernel times from the execution trace, folds the trace
//! into the six merge buckets (deflate / LAED4 / local-W / assemble /
//! GEMM / copy), and micro-benchmarks the dispatched secular kernels
//! against their retained scalar oracles at `k ≈ 1024`. Writes
//! `BENCH_merge.json` (override with `--out`); with `--tree` also prints
//! the merge tree of Figure 1.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin table1_merge_costs -- --n 1000
//! ```

use dcst_bench::{fmt_s, Args, Table};
use dcst_core::{merge_cost_model, DcOptions, PartitionTree, TaskFlowDc};
use dcst_tridiag::gen::MatrixType;
use std::fmt::Write as _;
use std::time::Instant;

/// Merge bucket of a traced kernel (None for out-of-merge work).
fn bucket_of(kernel: &str) -> Option<&'static str> {
    match kernel {
        "ComputeDeflation" => Some("deflate"),
        "LAED4" => Some("laed4"),
        "ComputeLocalW" | "ReduceW" => Some("local_w"),
        "ComputeVect" => Some("assemble"),
        "UpdateVect" => Some("gemm"),
        "PermuteV" | "CopyBackDeflated" | "SortEigenvalues" | "SortCopy" | "SortCopyBack" => {
            Some("copy")
        }
        _ => None,
    }
}

const BUCKETS: [&str; 6] = ["deflate", "laed4", "local_w", "assemble", "gemm", "copy"];

/// Best-of-`reps` wall-clock seconds for one kernel invocation.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: faults pages, settles the SIMD dispatch
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// SIMD-vs-scalar micro-bench of the three secular hot loops on one
/// synthetic k-pole problem. Returns (label, simd_s, scalar_s) triples in
/// bucket order (LAED4, local-W, assemble).
fn bench_secular_kernels(k: usize, reps: usize) -> Vec<(&'static str, f64, f64)> {
    // Strictly ascending poles with irregular gaps, unit-norm w.
    let dlamda: Vec<f64> = (0..k)
        .map(|i| i as f64 + 0.3 * ((i * 7 % 13) as f64) / 13.0)
        .collect();
    let w = vec![(1.0 / k as f64).sqrt(); k];
    let rho = 1.0;

    let mut deltas = vec![0.0f64; k * k];
    let mut lam = vec![0.0f64; k];

    let solve_all = |scalar: bool, deltas: &mut [f64], lam: &mut [f64]| {
        for j in 0..k {
            let col = &mut deltas[j * k..(j + 1) * k];
            lam[j] = if scalar {
                dcst_secular::solve_secular_root_scalar(j, &dlamda, &w, rho, col)
            } else {
                dcst_secular::solve_secular_root(j, &dlamda, &w, rho, col)
            }
            .expect("secular root failed");
        }
    };

    let laed4_simd = best_of(reps, || solve_all(false, &mut deltas, &mut lam));
    let laed4_scalar = best_of(reps, || solve_all(true, &mut deltas, &mut lam));

    // Re-solve with the dispatched path so downstream kernels see the
    // deltas the real solver would produce.
    solve_all(false, &mut deltas, &mut lam);

    let lw_simd = best_of(reps, || {
        std::hint::black_box(dcst_secular::local_w_products(&dlamda, &deltas, k, 0, 0..k));
    });
    let lw_scalar = best_of(reps, || {
        std::hint::black_box(dcst_secular::local_w_products_scalar(
            &dlamda,
            &deltas,
            k,
            0,
            0..k,
        ));
    });

    let partials = vec![dcst_secular::local_w_products(&dlamda, &deltas, k, 0, 0..k)];
    let zhat = dcst_secular::reduce_w(&w, &partials);
    let ident: Vec<usize> = (0..k).collect();
    // assemble_vectors overwrites the delta columns, so each timed run
    // restores them first; the restore cost is measured separately and
    // subtracted from both paths.
    let pristine = deltas.clone();
    let restore = best_of(reps, || {
        deltas.copy_from_slice(&pristine);
        std::hint::black_box(&deltas);
    });
    let asm_simd = best_of(reps, || {
        deltas.copy_from_slice(&pristine);
        dcst_secular::assemble_vectors(&zhat, &mut deltas, k, 0, 0..k, &ident);
    }) - restore;
    let asm_scalar = best_of(reps, || {
        deltas.copy_from_slice(&pristine);
        dcst_secular::assemble_vectors_scalar(&zhat, &mut deltas, k, 0, 0..k, &ident);
    }) - restore;

    vec![
        ("LAED4 (all k roots)", laed4_simd, laed4_scalar),
        (
            "local-W (k columns)",
            lw_simd.max(1e-9),
            lw_scalar.max(1e-9),
        ),
        (
            "assemble (k columns)",
            asm_simd.max(1e-9),
            asm_scalar.max(1e-9),
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 1000);
    let min_part = args.usize_or("--min-part", 300);
    let nb = args.usize_or("--nb", 128);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());
    let ksec = args.usize_or("--k", 1024);
    let reps = args.usize_or("--reps", 3);
    let out_path = args.value("--out").unwrap_or("BENCH_merge.json");

    if args.flag("--tree") {
        let tree = PartitionTree::build(n, min_part);
        println!("Figure 1 — merge tree for n = {n}, minimal partition {min_part}:");
        for (h, level) in tree.merge_levels().iter().enumerate() {
            let descr: Vec<String> = level
                .iter()
                .map(|&m| {
                    let node = &tree.nodes[m];
                    format!(
                        "[{}..{}) = {}+{}",
                        node.off,
                        node.off + node.n,
                        node.n1,
                        node.n - node.n1
                    )
                })
                .collect();
            println!(
                "  level {} ({} merges): {}",
                h + 1,
                level.len(),
                descr.join("  ")
            );
        }
        println!();
    }

    // Low deflation (type 4) exercises every step of the model.
    let t = MatrixType::Type4.generate(n, 42);
    let solver = TaskFlowDc::new(DcOptions {
        min_part,
        nb,
        threads,
        extra_workspace: true,
        use_gatherv: true,
    });
    let (_, stats, trace) = solver.solve_traced(&t).expect("solve failed");

    println!("Table I — merge-step cost model (type 4 matrix, n = {n}):");
    let mut table = Table::new(&[
        "merge n",
        "k (non-defl)",
        "deflation",
        "permute",
        "secular",
        "stabilize",
        "copy-back",
        "compute X",
        "update V=VX",
        "total",
    ]);
    for stat in &stats.merges {
        let c = merge_cost_model(stat);
        table.row(vec![
            stat.n.to_string(),
            stat.k.to_string(),
            format!("{:.0}%", 100.0 * stat.deflation_ratio()),
            c.permute.to_string(),
            c.secular.to_string(),
            c.stabilize.to_string(),
            c.copy_back.to_string(),
            c.compute_vect.to_string(),
            c.update_vect.to_string(),
            c.total().to_string(),
        ]);
    }
    table.print();

    println!("\nMeasured kernel totals (execution trace, {threads} threads):");
    let mut meas = Table::new(&["kernel", "tasks", "total time (us)", "share"]);
    let kstats = trace.kernel_stats();
    let total: u64 = kstats.iter().map(|k| k.total_us).sum();
    for k in &kstats {
        meas.row(vec![
            k.name.to_string(),
            k.count.to_string(),
            k.total_us.to_string(),
            format!("{:.1}%", 100.0 * k.total_us as f64 / total.max(1) as f64),
        ]);
    }
    meas.print();

    // ---- merge buckets.
    let mut bucket_us = std::collections::BTreeMap::new();
    for b in BUCKETS {
        bucket_us.insert(b, 0u64);
    }
    for k in &kstats {
        if let Some(b) = bucket_of(k.name) {
            *bucket_us.get_mut(b).unwrap() += k.total_us;
        }
    }
    let merge_total: u64 = bucket_us.values().sum();
    println!("\nMerge-phase buckets:");
    let mut btab = Table::new(&["bucket", "total time (us)", "share of merge"]);
    for b in BUCKETS {
        let us = bucket_us[b];
        btab.row(vec![
            b.to_string(),
            us.to_string(),
            format!("{:.1}%", 100.0 * us as f64 / merge_total.max(1) as f64),
        ]);
    }
    btab.print();

    // ---- SIMD-vs-scalar secular kernels at k ≈ 1024.
    let level = dcst_matrix::simd_level();
    println!("\nSecular kernels, SIMD ({level:?}) vs scalar oracle at k = {ksec}:");
    let kernels = bench_secular_kernels(ksec, reps);
    let mut stab = Table::new(&["kernel", "simd", "scalar", "speedup"]);
    let (mut simd_sum, mut scalar_sum) = (0.0f64, 0.0f64);
    for &(name, simd, scalar) in &kernels {
        simd_sum += simd;
        scalar_sum += scalar;
        stab.row(vec![
            name.to_string(),
            fmt_s(simd),
            fmt_s(scalar),
            format!("{:.2}x", scalar / simd),
        ]);
    }
    let combined = scalar_sum / simd_sum;
    stab.row(vec![
        "combined".to_string(),
        fmt_s(simd_sum),
        fmt_s(scalar_sum),
        format!("{combined:.2}x"),
    ]);
    stab.print();

    // ---- JSON output.
    let mut json = String::from("{\n  \"bench\": \"table1_merge_costs\",\n");
    write!(
        json,
        "  \"n\": {n},\n  \"threads\": {threads},\n  \"simd_level\": \"{level:?}\",\n"
    )
    .unwrap();
    json.push_str("  \"merge_buckets_us\": {");
    for (i, b) in BUCKETS.iter().enumerate() {
        let sep = if i + 1 < BUCKETS.len() { ", " } else { "" };
        write!(json, "\"{b}\": {}{sep}", bucket_us[b]).unwrap();
    }
    json.push_str("},\n");
    write!(json, "  \"secular_kernels\": {{\n    \"k\": {ksec},\n").unwrap();
    let labels = ["laed4", "local_w", "assemble"];
    for (label, &(_, simd, scalar)) in labels.iter().zip(&kernels) {
        writeln!(
            json,
            "    \"{label}_simd_s\": {simd:.6}, \"{label}_scalar_s\": {scalar:.6}, \
             \"{label}_speedup\": {:.3},",
            scalar / simd
        )
        .unwrap();
    }
    write!(json, "    \"combined_speedup\": {combined:.3}\n  }}\n}}\n").unwrap();
    std::fs::write(out_path, &json).expect("write BENCH_merge.json");
    println!("\nwrote {out_path}");
}
