//! Table I: operation costs of the merge steps.
//!
//! Runs the task-flow solver on a low-deflation matrix, prints the paper's
//! cost model instantiated per merge (columns of Table I) next to the
//! measured per-kernel times from the execution trace, and with `--tree`
//! also prints the merge tree of Figure 1.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin table1_merge_costs -- --n 1000
//! ```

use dcst_bench::{Args, Table};
use dcst_core::{merge_cost_model, DcOptions, PartitionTree, TaskFlowDc};
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 1000);
    let min_part = args.usize_or("--min-part", 300);
    let nb = args.usize_or("--nb", 128);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());

    if args.flag("--tree") {
        let tree = PartitionTree::build(n, min_part);
        println!("Figure 1 — merge tree for n = {n}, minimal partition {min_part}:");
        for (h, level) in tree.merge_levels().iter().enumerate() {
            let descr: Vec<String> = level
                .iter()
                .map(|&m| {
                    let node = &tree.nodes[m];
                    format!(
                        "[{}..{}) = {}+{}",
                        node.off,
                        node.off + node.n,
                        node.n1,
                        node.n - node.n1
                    )
                })
                .collect();
            println!(
                "  level {} ({} merges): {}",
                h + 1,
                level.len(),
                descr.join("  ")
            );
        }
        println!();
    }

    // Low deflation (type 4) exercises every step of the model.
    let t = MatrixType::Type4.generate(n, 42);
    let solver = TaskFlowDc::new(DcOptions {
        min_part,
        nb,
        threads,
        extra_workspace: true,
        use_gatherv: true,
    });
    let (_, stats, trace) = solver.solve_traced(&t).expect("solve failed");

    println!("Table I — merge-step cost model (type 4 matrix, n = {n}):");
    let mut table = Table::new(&[
        "merge n",
        "k (non-defl)",
        "deflation",
        "permute",
        "secular",
        "stabilize",
        "copy-back",
        "compute X",
        "update V=VX",
        "total",
    ]);
    for stat in &stats.merges {
        let c = merge_cost_model(stat);
        table.row(vec![
            stat.n.to_string(),
            stat.k.to_string(),
            format!("{:.0}%", 100.0 * stat.deflation_ratio()),
            c.permute.to_string(),
            c.secular.to_string(),
            c.stabilize.to_string(),
            c.copy_back.to_string(),
            c.compute_vect.to_string(),
            c.update_vect.to_string(),
            c.total().to_string(),
        ]);
    }
    table.print();

    println!("\nMeasured kernel totals (execution trace, {threads} threads):");
    let mut meas = Table::new(&["kernel", "tasks", "total time (us)", "share"]);
    let stats = trace.kernel_stats();
    let total: u64 = stats.iter().map(|k| k.total_us).sum();
    for k in &stats {
        meas.row(vec![
            k.name.to_string(),
            k.count.to_string(),
            k.total_us.to_string(),
            format!("{:.1}%", 100.0 * k.total_us as f64 / total.max(1) as f64),
        ]);
    }
    meas.print();
}
