//! Table I: operation costs of the merge steps, plus the merge-phase
//! perf trajectory for the SIMD secular kernels.
//!
//! Runs the task-flow solver on a low-deflation matrix, prints the paper's
//! cost model instantiated per merge (columns of Table I) next to the
//! measured per-kernel times from the execution trace, folds the trace
//! into the six merge buckets (deflate / LAED4 / local-W / assemble /
//! GEMM / copy), measures the dense-vs-rank-structured eigenvector-update
//! crossover, and micro-benchmarks the dispatched secular kernels against
//! their retained scalar oracles at `k ≈ 1024`. Writes `BENCH_merge.json`
//! (override with `--out`); with `--tree` also prints the merge tree of
//! Figure 1; with `--baseline FILE [--max-regress-pct P]` exits 1 if the
//! structured-update speedup regresses past the gate.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin table1_merge_costs -- --n 1000
//! ```

use dcst_bench::{fmt_s, Args, Table};
use dcst_core::{
    merge_cost_model, DcOptions, MetricsRecorder, PartitionTree, SolveMode, TaskFlowDc,
};
use dcst_matrix::{set_update_policy, UpdatePolicy};
use dcst_runtime::{jsonv, Trace};
use dcst_tridiag::gen::MatrixType;
use std::fmt::Write as _;
use std::time::Instant;

/// Merge bucket of a traced kernel (None for out-of-merge work).
fn bucket_of(kernel: &str) -> Option<&'static str> {
    match kernel {
        "ComputeDeflation" => Some("deflate"),
        "LAED4" => Some("laed4"),
        "ComputeLocalW" | "ReduceW" => Some("local_w"),
        "ComputeVect" => Some("assemble"),
        // The rank-structured update tasks are the gemm step's replacements:
        // planning/compression, the Q·U basis products, the join barrier
        // and the structured multiply all displace dense GEMM time.
        "UpdateVect" | "UpdateVectStructured" | "CompressW" | "StructBasis" | "StructJoin" => {
            Some("gemm")
        }
        "PermuteV" | "CopyBackDeflated" | "SortEigenvalues" | "SortBarrier" | "SortCopy"
        | "SortCopyBack" => Some("copy"),
        _ => None,
    }
}

/// Solver kernels that legitimately run outside the merge phase. Anything
/// traced that is neither here nor in [`bucket_of`] trips the bucket
/// audit below — that is how unbucketed kernels (the old double/missing
/// attribution bug) surface instead of silently skewing the table.
const OUT_OF_MERGE: [&str; 3] = ["Scale", "STEDC", "ScaleBack"];

const BUCKETS: [&str; 6] = ["deflate", "laed4", "local_w", "assemble", "gemm", "copy"];

/// Fold a trace into the six merge buckets by walking the raw records —
/// each record lands in exactly one bucket (the old kernel_stats-based
/// fold could attribute a renamed kernel twice or not at all). Returns
/// the per-bucket totals and the merge wall-clock (total busy time minus
/// known out-of-merge work); panics on an unrecognized kernel and when
/// the six buckets do not sum to the merge time within 2%.
fn merge_buckets(trace: &Trace) -> (std::collections::BTreeMap<&'static str, u64>, u64) {
    let mut bucket_us = std::collections::BTreeMap::new();
    for b in BUCKETS {
        bucket_us.insert(b, 0u64);
    }
    let mut merge_us = 0u64;
    for r in &trace.records {
        let dur = r.end_us - r.start_us;
        match bucket_of(r.name) {
            Some(b) => {
                *bucket_us.get_mut(b).unwrap() += dur;
                merge_us += dur;
            }
            None => assert!(
                OUT_OF_MERGE.contains(&r.name),
                "kernel '{}' is neither bucketed nor known out-of-merge; \
                 fix bucket_of() so the Table I shares stay exhaustive",
                r.name
            ),
        }
    }
    let bucket_sum: u64 = bucket_us.values().sum();
    let drift = (bucket_sum as f64 - merge_us as f64).abs();
    assert!(
        drift <= 0.02 * merge_us.max(1) as f64,
        "six-bucket sum {bucket_sum}us vs merge wall-clock {merge_us}us: off by more than 2%"
    );
    (bucket_us, merge_us)
}

/// Best-of-`reps` wall-clock seconds for one kernel invocation.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: faults pages, settles the SIMD dispatch
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One dense-vs-structured crossover measurement.
struct Crossover {
    n: usize,
    deflation: &'static str,
    dense_merge_s: f64,
    structured_merge_s: f64,
    dense_gemm_s: f64,
    structured_gemm_s: f64,
    merges: u64,
    blocks: u64,
    rank: u64,
    flops_saved: u64,
}

impl Crossover {
    fn speedup(&self) -> f64 {
        self.dense_merge_s / self.structured_merge_s.max(1e-12)
    }
    fn gemm_speedup(&self) -> f64 {
        self.dense_gemm_s / self.structured_gemm_s.max(1e-12)
    }
}

/// Merge-phase and gemm-bucket seconds of one traced single-thread solve
/// under the current update policy, plus the structured counters.
fn traced_merge_s(t: &dcst_tridiag::SymTridiag) -> (f64, f64, [u64; 4]) {
    // min_part scales with n so every size gets a comparable two-level
    // tree whose root merge is ~n (min_part = 300 would leave n = 250
    // with no merge phase at all).
    let solver = TaskFlowDc::new(DcOptions {
        min_part: (t.n() / 4).max(32),
        nb: 128,
        threads: 1,
        extra_workspace: true,
        use_gatherv: true,
        mode: SolveMode::Full,
    });
    let rec = MetricsRecorder::start();
    let (_, stats, trace) = solver.solve_traced(t).expect("crossover solve failed");
    let m = rec.finish(&stats);
    let (bucket_us, merge_us) = merge_buckets(&trace);
    (
        merge_us as f64 / 1e6,
        bucket_us["gemm"] as f64 / 1e6,
        [
            m.structured_merges,
            m.structured_blocks,
            m.structured_rank,
            m.structured_flops_saved,
        ],
    )
}

/// The dense-vs-structured crossover curve: each size × deflation regime
/// solved on one thread per forced policy (the regime the ISSUE's 39.7 ms
/// GEMM-wall measurement comes from). The two policies alternate within
/// every rep — best-of over interleaved pairs — so slow machine drift
/// (thermal, frequency scaling) cannot skew the ratio the way timing all
/// dense reps before all structured reps would. Restores the auto policy.
fn bench_crossover(sizes: &[usize], reps: usize) -> Vec<Crossover> {
    let mut out = Vec::new();
    for &n in sizes {
        for (deflation, mt) in [("low", MatrixType::Type4), ("high", MatrixType::Type2)] {
            let t = mt.generate(n, 42);
            let (mut dense_merge_s, mut dense_gemm_s) = (f64::INFINITY, f64::INFINITY);
            let (mut structured_merge_s, mut structured_gemm_s) = (f64::INFINITY, f64::INFINITY);
            let mut counters = [0u64; 4];
            for _ in 0..reps.max(1) {
                set_update_policy(UpdatePolicy::ForceDense);
                let (dm, dg, _) = traced_merge_s(&t);
                dense_merge_s = dense_merge_s.min(dm);
                dense_gemm_s = dense_gemm_s.min(dg);
                set_update_policy(UpdatePolicy::ForceStructured);
                let (sm, sg, c) = traced_merge_s(&t);
                structured_merge_s = structured_merge_s.min(sm);
                structured_gemm_s = structured_gemm_s.min(sg);
                counters = c;
            }
            out.push(Crossover {
                n,
                deflation,
                dense_merge_s,
                structured_merge_s,
                dense_gemm_s,
                structured_gemm_s,
                merges: counters[0],
                blocks: counters[1],
                rank: counters[2],
                flops_saved: counters[3],
            });
        }
    }
    set_update_policy(UpdatePolicy::Auto);
    out
}

/// SIMD-vs-scalar micro-bench of the three secular hot loops on one
/// synthetic k-pole problem. Returns (label, simd_s, scalar_s) triples in
/// bucket order (LAED4, local-W, assemble).
fn bench_secular_kernels(k: usize, reps: usize) -> Vec<(&'static str, f64, f64)> {
    // Strictly ascending poles with irregular gaps, unit-norm w.
    let dlamda: Vec<f64> = (0..k)
        .map(|i| i as f64 + 0.3 * ((i * 7 % 13) as f64) / 13.0)
        .collect();
    let w = vec![(1.0 / k as f64).sqrt(); k];
    let rho = 1.0;

    let mut deltas = vec![0.0f64; k * k];
    let mut lam = vec![0.0f64; k];

    let solve_all = |scalar: bool, deltas: &mut [f64], lam: &mut [f64]| {
        for j in 0..k {
            let col = &mut deltas[j * k..(j + 1) * k];
            lam[j] = if scalar {
                dcst_secular::solve_secular_root_scalar(j, &dlamda, &w, rho, col)
            } else {
                dcst_secular::solve_secular_root(j, &dlamda, &w, rho, col)
            }
            .expect("secular root failed");
        }
    };

    let laed4_simd = best_of(reps, || solve_all(false, &mut deltas, &mut lam));
    let laed4_scalar = best_of(reps, || solve_all(true, &mut deltas, &mut lam));

    // Re-solve with the dispatched path so downstream kernels see the
    // deltas the real solver would produce.
    solve_all(false, &mut deltas, &mut lam);

    let lw_simd = best_of(reps, || {
        std::hint::black_box(dcst_secular::local_w_products(&dlamda, &deltas, k, 0, 0..k));
    });
    let lw_scalar = best_of(reps, || {
        std::hint::black_box(dcst_secular::local_w_products_scalar(
            &dlamda,
            &deltas,
            k,
            0,
            0..k,
        ));
    });

    let partials = vec![dcst_secular::local_w_products(&dlamda, &deltas, k, 0, 0..k)];
    let zhat = dcst_secular::reduce_w(&w, &partials);
    let ident: Vec<usize> = (0..k).collect();
    // assemble_vectors overwrites the delta columns, so each timed run
    // restores them first; the restore cost is measured separately and
    // subtracted from both paths.
    let pristine = deltas.clone();
    let restore = best_of(reps, || {
        deltas.copy_from_slice(&pristine);
        std::hint::black_box(&deltas);
    });
    let asm_simd = best_of(reps, || {
        deltas.copy_from_slice(&pristine);
        dcst_secular::assemble_vectors(&zhat, &mut deltas, k, 0, 0..k, &ident);
    }) - restore;
    let asm_scalar = best_of(reps, || {
        deltas.copy_from_slice(&pristine);
        dcst_secular::assemble_vectors_scalar(&zhat, &mut deltas, k, 0, 0..k, &ident);
    }) - restore;

    vec![
        ("LAED4 (all k roots)", laed4_simd, laed4_scalar),
        (
            "local-W (k columns)",
            lw_simd.max(1e-9),
            lw_scalar.max(1e-9),
        ),
        (
            "assemble (k columns)",
            asm_simd.max(1e-9),
            asm_scalar.max(1e-9),
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 1000);
    let min_part = args.usize_or("--min-part", 300);
    let nb = args.usize_or("--nb", 128);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());
    let ksec = args.usize_or("--k", 1024);
    let reps = args.usize_or("--reps", 3);
    let out_path = args.value("--out").unwrap_or("BENCH_merge.json");

    if args.flag("--tree") {
        let tree = PartitionTree::build(n, min_part);
        println!("Figure 1 — merge tree for n = {n}, minimal partition {min_part}:");
        for (h, level) in tree.merge_levels().iter().enumerate() {
            let descr: Vec<String> = level
                .iter()
                .map(|&m| {
                    let node = &tree.nodes[m];
                    format!(
                        "[{}..{}) = {}+{}",
                        node.off,
                        node.off + node.n,
                        node.n1,
                        node.n - node.n1
                    )
                })
                .collect();
            println!(
                "  level {} ({} merges): {}",
                h + 1,
                level.len(),
                descr.join("  ")
            );
        }
        println!();
    }

    // Low deflation (type 4) exercises every step of the model.
    let t = MatrixType::Type4.generate(n, 42);
    let solver = TaskFlowDc::new(DcOptions {
        min_part,
        nb,
        threads,
        extra_workspace: true,
        use_gatherv: true,
        mode: SolveMode::Full,
    });
    let (_, stats, trace) = solver.solve_traced(&t).expect("solve failed");

    println!("Table I — merge-step cost model (type 4 matrix, n = {n}):");
    let mut table = Table::new(&[
        "merge n",
        "k (non-defl)",
        "deflation",
        "permute",
        "secular",
        "stabilize",
        "copy-back",
        "compute X",
        "update V=VX",
        "total",
    ]);
    for stat in &stats.merges {
        let c = merge_cost_model(stat);
        table.row(vec![
            stat.n.to_string(),
            stat.k.to_string(),
            format!("{:.0}%", 100.0 * stat.deflation_ratio()),
            c.permute.to_string(),
            c.secular.to_string(),
            c.stabilize.to_string(),
            c.copy_back.to_string(),
            c.compute_vect.to_string(),
            c.update_vect.to_string(),
            c.total().to_string(),
        ]);
    }
    table.print();

    println!("\nMeasured kernel totals (execution trace, {threads} threads):");
    let mut meas = Table::new(&["kernel", "tasks", "total time (us)", "share"]);
    let kstats = trace.kernel_stats();
    let total: u64 = kstats.iter().map(|k| k.total_us).sum();
    for k in &kstats {
        meas.row(vec![
            k.name.to_string(),
            k.count.to_string(),
            k.total_us.to_string(),
            format!("{:.1}%", 100.0 * k.total_us as f64 / total.max(1) as f64),
        ]);
    }
    meas.print();

    // ---- merge buckets (audited per-record attribution).
    let (bucket_us, merge_total) = merge_buckets(&trace);
    println!("\nMerge-phase buckets (sum audited against merge wall-clock):");
    let mut btab = Table::new(&["bucket", "total time (us)", "share of merge"]);
    for b in BUCKETS {
        let us = bucket_us[b];
        btab.row(vec![
            b.to_string(),
            us.to_string(),
            format!("{:.1}%", 100.0 * us as f64 / merge_total.max(1) as f64),
        ]);
    }
    btab.print();

    // ---- dense vs rank-structured update crossover.
    let xover = if args.flag("--skip-crossover") {
        Vec::new()
    } else {
        let sizes: Vec<usize> = args
            .value("--crossover-ns")
            .map(|v| {
                v.split(',')
                    .map(|s| s.parse().expect("--crossover-ns is a comma list"))
                    .collect()
            })
            .unwrap_or_else(|| vec![250, 500, 1000, 2000]);
        // Enough interleaved pairs that a transient machine-noise burst
        // (the runs are best-of) cannot cover the whole timing window.
        let xreps = args.usize_or("--crossover-reps", 5);
        bench_crossover(&sizes, xreps)
    };
    if !xover.is_empty() {
        println!("\nDense vs rank-structured update (1 thread, forced policies):");
        let mut xtab = Table::new(&[
            "n",
            "deflation",
            "dense merge",
            "structured merge",
            "speedup",
            "gemm speedup",
            "blocks",
            "total rank",
        ]);
        for e in &xover {
            xtab.row(vec![
                e.n.to_string(),
                e.deflation.to_string(),
                fmt_s(e.dense_merge_s),
                fmt_s(e.structured_merge_s),
                format!("{:.2}x", e.speedup()),
                format!("{:.2}x", e.gemm_speedup()),
                e.blocks.to_string(),
                e.rank.to_string(),
            ]);
        }
        xtab.print();
        if let Some(e) = xover.iter().find(|e| e.n == 1000 && e.deflation == "low") {
            // The acceptance bar: the structured path must beat the dense
            // oracle by ≥ 1.3x on the low-deflation n = 1000 merge phase
            // it was built for. In gate mode (--baseline) the committed
            // baseline plus --max-regress-pct governs instead, so a noisy
            // CI box compares against its own calibrated number.
            if args.value("--baseline").is_none() {
                assert!(
                    e.speedup() >= 1.3,
                    "rank-structured merge speedup {:.2}x at n=1000 low-deflation is below the 1.3x bar",
                    e.speedup()
                );
            }
            println!(
                "crossover bar: {:.2}x merge speedup at n=1000 low-deflation (>= 1.3x required)",
                e.speedup()
            );
        }
    }

    // ---- SIMD-vs-scalar secular kernels at k ≈ 1024.
    let level = dcst_matrix::simd_level();
    println!("\nSecular kernels, SIMD ({level:?}) vs scalar oracle at k = {ksec}:");
    let kernels = bench_secular_kernels(ksec, reps);
    let mut stab = Table::new(&["kernel", "simd", "scalar", "speedup"]);
    let (mut simd_sum, mut scalar_sum) = (0.0f64, 0.0f64);
    for &(name, simd, scalar) in &kernels {
        simd_sum += simd;
        scalar_sum += scalar;
        stab.row(vec![
            name.to_string(),
            fmt_s(simd),
            fmt_s(scalar),
            format!("{:.2}x", scalar / simd),
        ]);
    }
    let combined = scalar_sum / simd_sum;
    stab.row(vec![
        "combined".to_string(),
        fmt_s(simd_sum),
        fmt_s(scalar_sum),
        format!("{combined:.2}x"),
    ]);
    stab.print();

    // ---- JSON output.
    let mut json = String::from("{\n  \"bench\": \"table1_merge_costs\",\n");
    write!(
        json,
        "  \"n\": {n},\n  \"threads\": {threads},\n  \"simd_level\": \"{level:?}\",\n"
    )
    .unwrap();
    json.push_str("  \"merge_buckets_us\": {");
    for (i, b) in BUCKETS.iter().enumerate() {
        let sep = if i + 1 < BUCKETS.len() { ", " } else { "" };
        write!(json, "\"{b}\": {}{sep}", bucket_us[b]).unwrap();
    }
    json.push_str("},\n");
    writeln!(json, "  \"merge_wall_us\": {merge_total},").unwrap();
    if !xover.is_empty() {
        json.push_str("  \"rank_structured\": {\n    \"entries\": [\n");
        for (i, e) in xover.iter().enumerate() {
            let sep = if i + 1 < xover.len() { "," } else { "" };
            writeln!(
                json,
                "      {{\"n\": {}, \"deflation\": \"{}\", \"dense_merge_s\": {:.6}, \
                 \"structured_merge_s\": {:.6}, \"speedup\": {:.3}, \"gemm_speedup\": {:.3}, \
                 \"structured_merges\": {}, \"compressed_blocks\": {}, \"total_rank\": {}, \
                 \"flops_saved\": {}}}{sep}",
                e.n,
                e.deflation,
                e.dense_merge_s,
                e.structured_merge_s,
                e.speedup(),
                e.gemm_speedup(),
                e.merges,
                e.blocks,
                e.rank,
                e.flops_saved
            )
            .unwrap();
        }
        json.push_str("    ]");
        if let Some(e) = xover.iter().find(|e| e.n == 1000 && e.deflation == "low") {
            write!(json, ",\n    \"speedup_n1000_low\": {:.3}", e.speedup()).unwrap();
        }
        json.push_str("\n  },\n");
    }
    write!(json, "  \"secular_kernels\": {{\n    \"k\": {ksec},\n").unwrap();
    let labels = ["laed4", "local_w", "assemble"];
    for (label, &(_, simd, scalar)) in labels.iter().zip(&kernels) {
        writeln!(
            json,
            "    \"{label}_simd_s\": {simd:.6}, \"{label}_scalar_s\": {scalar:.6}, \
             \"{label}_speedup\": {:.3},",
            scalar / simd
        )
        .unwrap();
    }
    write!(json, "    \"combined_speedup\": {combined:.3}\n  }}\n}}\n").unwrap();
    std::fs::write(out_path, &json).expect("write BENCH_merge.json");
    println!("\nwrote {out_path}");

    // ---- regression gate (CI): compare the structured-update speedup
    // against a committed baseline, mirroring metrics_overhead.
    if let Some(path) = args.value("--baseline") {
        let max_pct: f64 = args
            .value("--max-regress-pct")
            .map(|v| v.parse().expect("--max-regress-pct is a number"))
            .unwrap_or(15.0);
        let new = xover
            .iter()
            .find(|e| e.n == 1000 && e.deflation == "low")
            .expect("gate mode needs the n=1000 low-deflation crossover point")
            .speedup();
        let body = std::fs::read_to_string(path).expect("read baseline json");
        let doc = jsonv::parse(&body).expect("baseline is valid JSON");
        let base = doc
            .get("rank_structured")
            .and_then(|v| v.get("speedup_n1000_low"))
            .and_then(|v| v.as_num())
            .expect("baseline rank_structured.speedup_n1000_low");
        let drop_pct = 100.0 * (base - new) / base;
        println!("vs baseline {path}: speedup {new:.2}x vs {base:.2}x ({drop_pct:+.1}% drop, limit {max_pct}%)");
        if drop_pct > max_pct {
            eprintln!("FAIL: structured-update speedup regressed more than {max_pct}%");
            std::process::exit(1);
        }
        println!("OK: structured-update speedup within the {max_pct}% gate");
    }
}
