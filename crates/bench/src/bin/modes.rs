//! Solve-mode benchmark: values-only memory high-water vs the full solve,
//! and subset solve time as a function of the requested eigenvector count
//! (ISSUE 9's acceptance gates).
//!
//! The binary installs a counting global allocator (current bytes +
//! high-water, tracked across all threads), so the values-only claim —
//! boundary-row propagation replaces the three n×n workspace buffers with
//! O(n) state — is measured, not asserted. The subset sweep times the
//! task-flow driver at k ∈ {n/16, n/8, n/4, n/2, n} requested columns;
//! k = n/16 crosses the MRRR-fallback threshold (`16·k ≤ n`), so the curve
//! also exercises the Θ(n·k) route.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin modes -- \
//!     --sizes 1000,2000,4000 --subset-n 2000 --out BENCH_modes.json \
//!     --gate-mem-pct 25 --gate-subset-pct 40
//! ```
//!
//! With the gate flags set, a violated bound exits non-zero (the CI job
//! runs exactly that invocation).

use dcst_bench::{fmt_s, Args, Table};
use dcst_core::{DcOptions, SolveMode, TaskFlowDc, TridiagEigensolver};
use dcst_tridiag::gen::MatrixType;
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Counting wrapper around the system allocator: live bytes and the
/// high-water mark, across every thread. Relaxed is enough — the counters
/// are monotonic bookkeeping, never synchronization.
struct CountingAlloc;

fn bump(sz: usize) {
    let now = CURRENT.fetch_add(sz, Relaxed) + sz;
    PEAK.fetch_max(now, Relaxed);
}

// SAFETY: every method delegates verbatim to `System` and only adds
// atomic counter bookkeeping; layout/pointer contracts are untouched.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Relaxed);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                bump(new_size - layout.size());
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak allocation (bytes above the pre-call level) across `f`.
fn measure_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let base = CURRENT.load(Relaxed);
    PEAK.store(base, Relaxed);
    let r = f();
    (PEAK.load(Relaxed).saturating_sub(base), r)
}

fn solver(threads: usize, mode: SolveMode) -> TaskFlowDc {
    TaskFlowDc::new(DcOptions {
        threads,
        mode,
        ..DcOptions::default()
    })
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

struct MemRow {
    n: usize,
    peak_full: usize,
    peak_vals: usize,
    ratio: f64,
    t_full: f64,
    t_vals: f64,
}

fn series(rows: &[MemRow], f: impl Fn(&MemRow) -> String) -> String {
    rows.iter().map(f).collect::<Vec<_>>().join(", ")
}

fn main() -> ExitCode {
    let args = Args::parse();
    let sizes = args.sizes_or(&[1000, 2000, 4000]);
    let subset_n = args.usize_or("--subset-n", 2000);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());
    let gate_mem_pct = args
        .value("--gate-mem-pct")
        .map(|v| v.parse::<f64>().expect("--gate-mem-pct wants a percentage"));
    let gate_subset_pct = args.value("--gate-subset-pct").map(|v| {
        v.parse::<f64>()
            .expect("--gate-subset-pct wants a percentage")
    });

    // ---- values-only vs full: allocation high-water + value agreement.
    let mut mem_table = Table::new(&[
        "n",
        "full peak",
        "values-only peak",
        "ratio",
        "t_full",
        "t_values",
    ]);
    let mut mem_rows: Vec<MemRow> = Vec::new();
    for &n in &sizes {
        let t = MatrixType::Type4.generate(n, 77);
        let start = Instant::now();
        let (peak_full, full) = measure_peak(|| solver(threads, SolveMode::Full).solve(&t));
        let t_full = start.elapsed().as_secs_f64();
        let full = full.expect("full solve");
        let start = Instant::now();
        let (peak_vals, vals) = measure_peak(|| solver(threads, SolveMode::ValuesOnly).solve(&t));
        let t_vals = start.elapsed().as_secs_f64();
        let vals = vals.expect("values-only solve");
        // Correctness rides along: values must agree within 50·n·ε·‖T‖.
        let tol = 50.0 * n as f64 * f64::EPSILON * t.max_norm().max(1.0);
        for (i, (a, b)) in vals.values.iter().zip(&full.values).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "n={n} value {i}: {a} vs {b} (tol {tol})"
            );
        }
        let ratio = peak_vals as f64 / peak_full as f64;
        mem_table.row(vec![
            n.to_string(),
            format!("{:.1} MiB", mb(peak_full)),
            format!("{:.1} MiB", mb(peak_vals)),
            format!("{:.1}%", 100.0 * ratio),
            fmt_s(t_full),
            fmt_s(t_vals),
        ]);
        mem_rows.push(MemRow {
            n,
            peak_full,
            peak_vals,
            ratio,
            t_full,
            t_vals,
        });
    }
    println!("values-only vs full (type 4, {threads} threads):\n");
    mem_table.print();

    // ---- subset: time vs requested eigenvector count k.
    let n = subset_n;
    let t = MatrixType::Type4.generate(n, 77);
    let mut sub_table = Table::new(&["k (vectors)", "t_subset", "vs k=n"]);
    let fracs = [16usize, 8, 4, 2, 1];
    let mut sub_rows: Vec<(usize, f64)> = Vec::new();
    for &den in &fracs {
        let k = (n / den).max(1);
        let start = Instant::now();
        let eig = solver(threads, SolveMode::Subset { il: 0, iu: k - 1 })
            .solve(&t)
            .expect("subset solve");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(eig.values.len(), k);
        assert_eq!(eig.vectors.cols(), k);
        sub_rows.push((k, secs));
    }
    let t_full_k = sub_rows.last().expect("k sweep nonempty").1;
    for &(k, secs) in &sub_rows {
        sub_table.row(vec![
            format!("{k} ({:.1}%)", 100.0 * k as f64 / n as f64),
            fmt_s(secs),
            format!("{:.1}%", 100.0 * secs / t_full_k),
        ]);
    }
    println!("\nsubset solve time vs k (type 4, n = {n}, {threads} threads):\n");
    sub_table.print();

    // ---- JSON artifact.
    if let Some(path) = args.value("--out") {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"threads\": {threads},\n"));
        s.push_str(&format!(
            "  \"sizes\": [{}],\n",
            series(&mem_rows, |r| r.n.to_string())
        ));
        s.push_str(&format!(
            "  \"full_peak_bytes\": [{}],\n",
            series(&mem_rows, |r| r.peak_full.to_string())
        ));
        s.push_str(&format!(
            "  \"values_only_peak_bytes\": [{}],\n",
            series(&mem_rows, |r| r.peak_vals.to_string())
        ));
        s.push_str(&format!(
            "  \"peak_ratio\": [{}],\n",
            series(&mem_rows, |r| format!("{:.4}", r.ratio))
        ));
        s.push_str(&format!(
            "  \"full_seconds\": [{}],\n",
            series(&mem_rows, |r| format!("{:.4}", r.t_full))
        ));
        s.push_str(&format!(
            "  \"values_only_seconds\": [{}],\n",
            series(&mem_rows, |r| format!("{:.4}", r.t_vals))
        ));
        s.push_str(&format!("  \"subset_n\": {n},\n"));
        s.push_str(&format!(
            "  \"subset_k\": [{}],\n",
            sub_rows
                .iter()
                .map(|r| r.0.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "  \"subset_seconds\": [{}]\n",
            sub_rows
                .iter()
                .map(|r| format!("{:.4}", r.1))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("}\n");
        std::fs::write(path, s).expect("write --out");
        println!("\nwrote {path}");
    }

    // ---- gates.
    let mut failed = false;
    if let Some(pct) = gate_mem_pct {
        // Judged at the largest size, where the O(n) vs O(n²) separation
        // is widest and allocator noise smallest.
        let MemRow { n, ratio, .. } = *mem_rows.last().expect("size sweep nonempty");
        if 100.0 * ratio >= pct {
            eprintln!(
                "GATE FAIL: values-only peak at n = {n} is {:.1}% of full (gate < {pct}%)",
                100.0 * ratio
            );
            failed = true;
        } else {
            println!(
                "gate ok: values-only peak at n = {n} is {:.1}% of full (< {pct}%)",
                100.0 * ratio
            );
        }
    }
    if let Some(pct) = gate_subset_pct {
        let (k_min, t_min) = sub_rows[0];
        let share = 100.0 * t_min / t_full_k;
        if share >= pct {
            eprintln!(
                "GATE FAIL: subset time at k = {k_min} is {share:.1}% of k = {n} (gate < {pct}%)"
            );
            failed = true;
        } else {
            println!("gate ok: subset time at k = {k_min} is {share:.1}% of k = {n} (< {pct}%)");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
