//! GEMM throughput sweep: GFLOP/s of the packed micro-kernel GEMM at
//! n ∈ {256, 512, 1024, 2048} with 1 and 2 threads, against the seed
//! register-blocked AXPY kernel (`gemm_axpy_ref`) as the baseline.
//! Writes `BENCH_gemm.json` (override with `--out`).
//!
//! ```text
//! cargo run --release -p dcst-bench --bin gemm_flops -- --sizes 256,512,1024,2048
//! ```

use dcst_bench::{Args, Table};
use dcst_matrix::{gemm, gemm_axpy_ref, gemm_par};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall-clock GFLOP/s for one kernel invocation.
fn gflops(flops: f64, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: grows packing buffers, faults pages, spins up the pool
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    flops / best / 1e9
}

fn main() {
    let args = Args::parse();
    let sizes = args.sizes_or(&[256, 512, 1024, 2048]);
    let out_path = args.value("--out").unwrap_or("BENCH_gemm.json");

    let mut table = Table::new(&[
        "n",
        "packed 1t (GF/s)",
        "packed 2t (GF/s)",
        "axpy ref (GF/s)",
        "speedup",
    ]);
    let mut json = String::from(
        "{\n  \"bench\": \"gemm_flops\",\n  \"flops_formula\": \"2*n^3\",\n  \"results\": [",
    );
    for (idx, &n) in sizes.iter().enumerate() {
        let a: Vec<f64> = (0..n * n)
            .map(|i| ((i * 13 % 100) as f64 - 50.0) / 50.0)
            .collect();
        let b: Vec<f64> = (0..n * n)
            .map(|i| ((i * 31 % 100) as f64 - 50.0) / 50.0)
            .collect();
        let mut c = vec![0.0; n * n];
        let flops = 2.0 * (n as f64).powi(3);
        let reps = (1 << 30) / (flops as usize).max(1) + 1;

        let seq = gflops(flops, reps, || {
            gemm(n, n, n, 1.0, &a, n, &b, n, 0.0, &mut c, n)
        });
        let par = gflops(flops, reps, || {
            gemm_par(2, n, n, n, 1.0, &a, n, &b, n, 0.0, &mut c, n)
        });
        let axpy = gflops(flops, reps, || {
            gemm_axpy_ref(n, n, n, 1.0, &a, n, &b, n, 0.0, &mut c, n)
        });

        table.row(vec![
            n.to_string(),
            format!("{seq:.2}"),
            format!("{par:.2}"),
            format!("{axpy:.2}"),
            format!("{:.2}x", seq / axpy),
        ]);
        let sep = if idx + 1 < sizes.len() { "," } else { "" };
        write!(
            json,
            "\n    {{\"n\": {n}, \"gflops_1t\": {seq:.3}, \"gflops_2t\": {par:.3}, \
             \"gflops_axpy_ref\": {axpy:.3}, \"speedup_vs_axpy\": {:.3}}}{sep}",
            seq / axpy
        )
        .unwrap();
    }
    json.push_str("\n  ]\n}\n");
    table.print();
    std::fs::write(out_path, json).expect("write BENCH_gemm.json");
    println!("wrote {out_path}");
}
