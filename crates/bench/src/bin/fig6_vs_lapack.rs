//! Figure 6: speedup of the task-flow solver over the "LAPACK + threaded
//! BLAS" model (the paper's Intel MKL `dstedc` comparator).
//!
//! [`ForkJoinDc`] reproduces that model structurally: a sequential D&C
//! driver in which only the eigenvector-update GEMMs are multithreaded.
//! The paper reports 4–6× for high-deflation matrices and smaller factors
//! when GEMM dominates; the shape (higher deflation ⇒ larger win) is the
//! reproduced quantity.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig6_vs_lapack -- --sizes 512,1024,2048
//! ```

use dcst_bench::{fmt_s, opts, time_solve, time_taskflow, Args, Table};
use dcst_core::ForkJoinDc;
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let sizes = args.sizes_or(&[512, 1024, 2048]);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());

    let mut table = Table::new(&[
        "type",
        "n",
        "deflation",
        "t_forkjoin(MKL model)",
        "t_taskflow",
        "speedup",
    ]);
    for ty in [MatrixType::Type2, MatrixType::Type3, MatrixType::Type4] {
        for &n in &sizes {
            let t = ty.generate(n, 101);
            let fj = ForkJoinDc::new(opts(threads));
            let (t_fj, _) = time_solve(&fj, &t);
            let (t_tf, _, stats) = time_taskflow(threads, &t);
            table.row(vec![
                format!("type{}", ty.index()),
                n.to_string(),
                format!("{:.0}%", 100.0 * stats.overall_deflation()),
                fmt_s(t_fj),
                fmt_s(t_tf),
                format!("{:.2}x", t_fj / t_tf),
            ]);
        }
    }
    table.print();
}
