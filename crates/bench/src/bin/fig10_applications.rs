//! Figure 10: application matrices.
//!
//! The paper times D&C vs MR³-SMP on matrices from the LAPACK `stetester`
//! collection (sizes ≲ 8000). Those files are not available offline; the
//! stand-in suite (see `dcst_tridiag::gen::application_suite`) reproduces
//! the spectral features each class stresses — clusters (glued Wilkinson,
//! synthetic electronic-structure spectra) and near-uniform interior
//! spectra (orthogonal-polynomial Jacobi matrices). The reproduced claim:
//! D&C beats MRRR on almost all cases while being more accurate.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig10_applications -- --sizes 500,1000
//! ```

use dcst_bench::{accuracy, fmt_s, time_mrrr, time_taskflow, Args, Table};
use dcst_tridiag::gen::application_suite;

fn main() {
    let args = Args::parse();
    let sizes = args.sizes_or(&[500, 1000]);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());

    let mut table = Table::new(&[
        "matrix",
        "n",
        "t_dc",
        "t_mrrr",
        "winner",
        "orth D&C",
        "orth MRRR",
    ]);
    let mut dc_wins = 0usize;
    let mut cases = 0usize;
    for app in application_suite(&sizes) {
        let t = &app.matrix;
        let (t_dc, eig, _) = time_taskflow(threads, t);
        let (o_dc, _) = accuracy(t, &eig.values, &eig.vectors);
        let (t_mr, lam, v) = time_mrrr(threads, t);
        let (o_mr, _) = accuracy(t, &lam, &v);
        if t_dc <= t_mr {
            dc_wins += 1;
        }
        cases += 1;
        table.row(vec![
            app.name.clone(),
            t.n().to_string(),
            fmt_s(t_dc),
            fmt_s(t_mr),
            if t_dc <= t_mr { "D&C" } else { "MRRR" }.to_string(),
            format!("{o_dc:.2e}"),
            format!("{o_mr:.2e}"),
        ]);
    }
    table.print();
    println!("\nD&C faster on {dc_wins}/{cases} application matrices (paper: almost all).");
}
