//! Figure 7: speedup of the task-flow solver over the ScaLAPACK model
//! (the paper's MKL `pdstedc` comparator).
//!
//! [`LevelParallelDc`] reproduces `pdstedc`'s structure: independent
//! subproblems of one tree level solved concurrently, a full barrier
//! between levels, threaded GEMMs inside each merge. The paper reports
//! ~2× for ≥20 % deflation rising to ~4× near 100 % — smaller factors
//! than Figure 6 because the comparator already parallelizes the tree.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig7_vs_scalapack -- --sizes 512,1024,2048
//! ```

use dcst_bench::{fmt_s, opts, time_solve, time_taskflow, Args, Table};
use dcst_core::LevelParallelDc;
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let sizes = args.sizes_or(&[512, 1024, 2048]);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());

    let mut table = Table::new(&[
        "type",
        "n",
        "deflation",
        "t_levelpar(ScaLAPACK model)",
        "t_taskflow",
        "speedup",
    ]);
    for ty in [MatrixType::Type2, MatrixType::Type3, MatrixType::Type4] {
        for &n in &sizes {
            let t = ty.generate(n, 202);
            let lp = LevelParallelDc::new(opts(threads));
            let (t_lp, _) = time_solve(&lp, &t);
            let (t_tf, _, stats) = time_taskflow(threads, &t);
            table.row(vec![
                format!("type{}", ty.index()),
                n.to_string(),
                format!("{:.0}%", 100.0 * stats.overall_deflation()),
                fmt_s(t_lp),
                fmt_s(t_tf),
                format!("{:.2}x", t_lp / t_tf),
            ]);
        }
    }
    table.print();
}
