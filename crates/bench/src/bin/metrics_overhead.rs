//! Overhead micro-bench for the observability layer.
//!
//! Measures the two paths the `metrics` feature touches:
//!
//! * a **task storm** through the work-stealing runtime with empty bodies,
//!   so scheduler bookkeeping (where the per-worker counters live)
//!   dominates — reported as ns/task;
//! * a **taskflow solve** (type-4, n = 512) exercising the kernel-counter
//!   sites in LAED4, steqr and the GEMM panels — reported as ms/solve.
//!
//! Build the baseline with the counters compiled out, then compare a
//! default (counters-in) build against it:
//!
//! ```text
//! cargo run --release -p dcst-bench --no-default-features \
//!     --bin metrics_overhead -- --out base.json
//! cargo run --release -p dcst-bench --bin metrics_overhead -- \
//!     --baseline base.json --max-regress-pct 2
//! ```
//!
//! With `--baseline` the process exits 1 if either measure regresses by
//! more than `--max-regress-pct` (default 2 %) — the CI gate behind the
//! "zero-cost when disabled" claim. Each measure is the best of `--reps`
//! repetitions, which is the noise-robust statistic for a shared machine.

use dcst_bench::Args;
use dcst_core::{DcOptions, TaskFlowDc, TridiagEigensolver};
use dcst_runtime::{jsonv, DataKey, Runtime};
use dcst_tridiag::gen::MatrixType;
use std::time::Instant;

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// ns/task for a storm of trivially-small tasks: rotating read/write/
/// gatherv accesses over a ring of keys keeps the dependency machinery and
/// both injector lanes busy without any kernel work.
fn task_storm_ns(tasks: usize, threads: usize) -> f64 {
    let rt = Runtime::new(threads);
    let start = Instant::now();
    for i in 0..tasks {
        let key = DataKey::new(9, (i % 64) as u64);
        let b = rt.task("storm");
        let b = match i % 4 {
            0 => b.read(key),
            1 => b.write(key),
            2 => b.gatherv(key),
            _ => b.gatherv(key).high_priority(),
        };
        b.spawn(|| {});
    }
    rt.wait().unwrap();
    start.elapsed().as_nanos() as f64 / tasks as f64
}

/// ms for one taskflow solve hitting the kernel-counter sites.
fn solve_ms(n: usize, threads: usize) -> f64 {
    let t = MatrixType::Type4.generate(n, 17);
    let solver = TaskFlowDc::new(DcOptions {
        min_part: 32,
        nb: 64,
        threads,
        ..DcOptions::default()
    });
    let start = Instant::now();
    let eig = solver.solve(&t).expect("solve");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(eig.values[0]);
    ms
}

fn regress_pct(new: f64, base: f64) -> f64 {
    100.0 * (new - base) / base
}

fn main() {
    let args = Args::parse();
    let tasks = args.usize_or("--tasks", 40_000);
    let threads = args.usize_or("--threads", dcst_bench::max_threads().min(4));
    let reps = args.usize_or("--reps", 5);
    let n = args.usize_or("--n", 512);

    let ns_per_task = best_of(reps, || task_storm_ns(tasks, threads));
    let ms_per_solve = best_of(reps, || solve_ms(n, threads));
    let compiled = cfg!(feature = "metrics");

    println!(
        "metrics compiled {}: task storm {ns_per_task:.1} ns/task, solve(n={n}) {ms_per_solve:.2} ms",
        if compiled { "IN" } else { "OUT" },
    );

    if let Some(path) = args.value("--out") {
        let json = format!(
            "{{\n  \"metrics_compiled\": {compiled},\n  \"ns_per_task\": {ns_per_task},\n  \"ms_per_solve\": {ms_per_solve}\n}}",
        );
        std::fs::write(path, json).expect("write bench json");
        println!("wrote {path}");
    }

    if let Some(path) = args.value("--baseline") {
        let max_pct: f64 = args
            .value("--max-regress-pct")
            .map(|v| v.parse().expect("--max-regress-pct is a number"))
            .unwrap_or(2.0);
        let body = std::fs::read_to_string(path).expect("read baseline json");
        let doc = jsonv::parse(&body).expect("baseline is valid JSON");
        let base_ns = doc
            .get("ns_per_task")
            .and_then(|v| v.as_num())
            .expect("baseline ns_per_task");
        let base_ms = doc
            .get("ms_per_solve")
            .and_then(|v| v.as_num())
            .expect("baseline ms_per_solve");
        let d_ns = regress_pct(ns_per_task, base_ns);
        let d_ms = regress_pct(ms_per_solve, base_ms);
        println!(
            "vs baseline {path}: task storm {d_ns:+.2}%, solve {d_ms:+.2}% (limit +{max_pct}%)"
        );
        if d_ns > max_pct || d_ms > max_pct {
            eprintln!("FAIL: observability overhead exceeds {max_pct}%");
            std::process::exit(1);
        }
        println!("OK: overhead within the {max_pct}% gate");
    }
}
