//! Overhead micro-bench for the observability layer.
//!
//! Measures the two paths the `metrics` feature touches:
//!
//! * a **task storm** through the work-stealing runtime with empty bodies,
//!   so scheduler bookkeeping (where the per-worker counters live)
//!   dominates — reported as ns/task;
//! * a **taskflow solve** (type-4, n = 512) exercising the kernel-counter
//!   sites in LAED4, steqr and the GEMM panels — reported as ms/solve.
//!
//! Build the baseline with the counters compiled out, then compare a
//! default (counters-in) build against it:
//!
//! ```text
//! cargo run --release -p dcst-bench --no-default-features \
//!     --bin metrics_overhead -- --out base.json
//! cargo run --release -p dcst-bench --bin metrics_overhead -- \
//!     --baseline base.json --max-regress-pct 2
//! ```
//!
//! With `--baseline` the process exits 1 if either measure regresses by
//! more than `--max-regress-pct` (default 2 %) — the CI gate behind the
//! "zero-cost when disabled" claim. Each measure is the best of `--reps`
//! repetitions, which is the noise-robust statistic for a shared machine.
//!
//! # Scheduler-contention mode (`--sched`)
//!
//! `--sched` switches the binary to the task-storm contention benchmark
//! behind `BENCH_sched.json`: a raw fork-join storm of no-op tasks
//! (`dcst_bench::sched`) run at 1/4/8/16 workers against both the
//! production lock-free Chase–Lev deque and the `Mutex<VecDeque>`
//! baseline, plus one end-to-end taskflow solve (type 4, `--sched-n`,
//! default 2000). Per worker count it reports ns/task for both backends,
//! their ratio (the lock-free speedup) and the steal-success rates.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin metrics_overhead -- \
//!     --sched --sched-out BENCH_sched.json
//! cargo run --release -p dcst-bench --bin metrics_overhead -- \
//!     --sched --sched-baseline BENCH_sched.json \
//!     --require-speedup 2.0 --max-regress-pct 25
//! ```
//!
//! With `--sched-baseline` the process exits 1 unless (a) the lock-free
//! deque is at least `--require-speedup` (default 2×) faster than the
//! mutexed baseline at every measured worker count ≥ 8, and (b) the e2e
//! solve is no slower than the committed baseline by more than
//! `--max-regress-pct` (default 10 %).

use dcst_bench::sched::{self, LockFree, Mutexed};
use dcst_bench::Args;
use dcst_core::{DcOptions, TaskFlowDc, TridiagEigensolver};
use dcst_runtime::{jsonv, DataKey, Runtime};
use dcst_tridiag::gen::MatrixType;
use std::time::Instant;

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// ns/task for a storm of trivially-small tasks: rotating read/write/
/// gatherv accesses over a ring of keys keeps the dependency machinery and
/// both injector lanes busy without any kernel work.
fn task_storm_ns(tasks: usize, threads: usize) -> f64 {
    let rt = Runtime::new(threads);
    let start = Instant::now();
    for i in 0..tasks {
        let key = DataKey::new(9, (i % 64) as u64);
        let b = rt.task("storm");
        let b = match i % 4 {
            0 => b.read(key),
            1 => b.write(key),
            2 => b.gatherv(key),
            _ => b.gatherv(key).high_priority(),
        };
        b.spawn(|| {});
    }
    rt.wait().unwrap();
    start.elapsed().as_nanos() as f64 / tasks as f64
}

/// ms for one taskflow solve hitting the kernel-counter sites.
fn solve_ms(n: usize, threads: usize) -> f64 {
    let t = MatrixType::Type4.generate(n, 17);
    let solver = TaskFlowDc::new(DcOptions {
        min_part: 32,
        nb: 64,
        threads,
        ..DcOptions::default()
    });
    let start = Instant::now();
    let eig = solver.solve(&t).expect("solve");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(eig.values[0]);
    ms
}

fn regress_pct(new: f64, base: f64) -> f64 {
    100.0 * (new - base) / base
}

/// The `--sched` contention benchmark: storm both deque backends at each
/// worker count, solve one n=`--sched-n` system end-to-end, emit/gate
/// `BENCH_sched.json`. Exits the process (0 or 1) when gating.
fn sched_mode(args: &Args) -> ! {
    let reps = args.usize_or("--reps", 3);
    let roots = args.usize_or("--roots", 64);
    let depth = args.usize_or("--depth", 9) as u32;
    let n = args.usize_or("--sched-n", 2000);
    let worker_counts: Vec<usize> = match args.value("--workers") {
        Some(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        None => vec![1, 4, 8, 16],
    };

    let mut lf_ns = Vec::new();
    let mut mx_ns = Vec::new();
    let mut lf_rate = Vec::new();
    let mut mx_rate = Vec::new();
    let mut speedups = Vec::new();
    for &w in &worker_counts {
        // Best-of for the timing, but steal rates from the last rep (any
        // rep is representative; rates are a property of the schedule).
        let mut lf_best = f64::INFINITY;
        let mut mx_best = f64::INFINITY;
        let mut lf_last = None;
        let mut mx_last = None;
        for _ in 0..reps {
            let lf = sched::storm::<LockFree>(w, roots, depth);
            let mx = sched::storm::<Mutexed>(w, roots, depth);
            lf_best = lf_best.min(lf.ns_per_task);
            mx_best = mx_best.min(mx.ns_per_task);
            lf_last = Some(lf);
            mx_last = Some(mx);
        }
        let (lf, mx) = (lf_last.unwrap(), mx_last.unwrap());
        let speedup = mx_best / lf_best;
        println!(
            "workers {w:>2}: lockfree {lf_best:>8.1} ns/task (steal ok {:>5.1}%)   \
             mutexed {mx_best:>8.1} ns/task (steal ok {:>5.1}%)   speedup {speedup:.2}x",
            100.0 * lf.steal_success_rate(),
            100.0 * mx.steal_success_rate(),
        );
        lf_ns.push(lf_best);
        mx_ns.push(mx_best);
        lf_rate.push(lf.steal_success_rate());
        mx_rate.push(mx.steal_success_rate());
        speedups.push(speedup);
    }

    let threads = args.usize_or("--threads", dcst_bench::max_threads().min(4));
    let e2e_ms = best_of(reps, || solve_ms(n, threads));
    println!("e2e taskflow solve(n={n}, {threads} threads): {e2e_ms:.1} ms");

    let join = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"workers\": [{}],\n  \"tasks\": {},\n  \
         \"lockfree_ns_per_task\": [{}],\n  \"mutexed_ns_per_task\": [{}],\n  \
         \"lockfree_steal_success_rate\": [{}],\n  \"mutexed_steal_success_rate\": [{}],\n  \
         \"speedup\": [{}],\n  \"solve_n\": {n},\n  \"solve_ms\": {e2e_ms:.4}\n}}\n",
        worker_counts
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        roots as u64 * ((1u64 << (depth + 1)) - 1),
        join(&lf_ns),
        join(&mx_ns),
        join(&lf_rate),
        join(&mx_rate),
        join(&speedups),
    );
    if let Some(path) = args.value("--sched-out") {
        std::fs::write(path, &json).expect("write sched bench json");
        println!("wrote {path}");
    }

    if let Some(path) = args.value("--sched-baseline") {
        let require: f64 = args
            .value("--require-speedup")
            .map(|v| v.parse().expect("--require-speedup is a number"))
            .unwrap_or(2.0);
        let max_pct: f64 = args
            .value("--max-regress-pct")
            .map(|v| v.parse().expect("--max-regress-pct is a number"))
            .unwrap_or(10.0);
        let mut failed = false;
        for (&w, &s) in worker_counts.iter().zip(&speedups) {
            if w >= 8 && s < require {
                eprintln!("FAIL: at {w} workers lock-free speedup {s:.2}x < required {require}x");
                failed = true;
            }
        }
        let body = std::fs::read_to_string(path).expect("read sched baseline json");
        let doc = jsonv::parse(&body).expect("sched baseline is valid JSON");
        let base_ms = doc
            .get("solve_ms")
            .and_then(|v| v.as_num())
            .expect("baseline solve_ms");
        let d_ms = regress_pct(e2e_ms, base_ms);
        println!("e2e solve vs baseline {path}: {d_ms:+.2}% (limit +{max_pct}%)");
        if d_ms > max_pct {
            eprintln!("FAIL: e2e solve regressed {d_ms:.2}% > {max_pct}%");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("OK: lock-free >= {require}x at 8+ workers, e2e within {max_pct}%");
    }
    std::process::exit(0);
}

fn main() {
    let args = Args::parse();
    if args.flag("--sched") {
        sched_mode(&args);
    }
    let tasks = args.usize_or("--tasks", 40_000);
    let threads = args.usize_or("--threads", dcst_bench::max_threads().min(4));
    let reps = args.usize_or("--reps", 5);
    let n = args.usize_or("--n", 512);

    let ns_per_task = best_of(reps, || task_storm_ns(tasks, threads));
    let ms_per_solve = best_of(reps, || solve_ms(n, threads));
    let compiled = cfg!(feature = "metrics");

    println!(
        "metrics compiled {}: task storm {ns_per_task:.1} ns/task, solve(n={n}) {ms_per_solve:.2} ms",
        if compiled { "IN" } else { "OUT" },
    );

    if let Some(path) = args.value("--out") {
        let json = format!(
            "{{\n  \"metrics_compiled\": {compiled},\n  \"ns_per_task\": {ns_per_task},\n  \"ms_per_solve\": {ms_per_solve}\n}}",
        );
        std::fs::write(path, json).expect("write bench json");
        println!("wrote {path}");
    }

    if let Some(path) = args.value("--baseline") {
        let max_pct: f64 = args
            .value("--max-regress-pct")
            .map(|v| v.parse().expect("--max-regress-pct is a number"))
            .unwrap_or(2.0);
        let body = std::fs::read_to_string(path).expect("read baseline json");
        let doc = jsonv::parse(&body).expect("baseline is valid JSON");
        let base_ns = doc
            .get("ns_per_task")
            .and_then(|v| v.as_num())
            .expect("baseline ns_per_task");
        let base_ms = doc
            .get("ms_per_solve")
            .and_then(|v| v.as_num())
            .expect("baseline ms_per_solve");
        let d_ns = regress_pct(ns_per_task, base_ns);
        let d_ms = regress_pct(ms_per_solve, base_ms);
        println!(
            "vs baseline {path}: task storm {d_ns:+.2}%, solve {d_ms:+.2}% (limit +{max_pct}%)"
        );
        if d_ns > max_pct || d_ms > max_pct {
            eprintln!("FAIL: observability overhead exceeds {max_pct}%");
            std::process::exit(1);
        }
        println!("OK: overhead within the {max_pct}% gate");
    }
}
