//! Figure 2: the task DAG of the D&C tridiagonal eigensolver.
//!
//! Reproduces the paper's configuration — a problem of size 1000 with a
//! minimal partition size of 300 (four leaves of 250) and a panel size of
//! 500 — and writes the recorded DAG in Graphviz DOT to stdout; summary
//! statistics go to stderr.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig2_dag > dag.dot
//! dot -Tsvg dag.dot -o dag.svg
//! ```

use dcst_bench::Args;
use dcst_core::{DcOptions, SolveMode, TaskFlowDc};
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 1000);
    let min_part = args.usize_or("--min-part", 300);
    let nb = args.usize_or("--nb", 500);

    let t = MatrixType::Type4.generate(n, 7);
    let solver = TaskFlowDc::new(DcOptions {
        min_part,
        nb,
        threads: 2,
        extra_workspace: true,
        use_gatherv: true,
        mode: SolveMode::Full,
    });
    let (_, dag) = solver.solve_with_dag(&t).expect("solve failed");

    eprintln!(
        "DAG for n = {n}, min_part = {min_part}, nb = {nb}: {} tasks, {} edges, critical path {} tasks",
        dag.num_nodes(),
        dag.num_edges(),
        dag.critical_path_len()
    );
    println!("{}", dag.to_dot());
}
