//! Figure 5: scalability of the task-flow D&C solver.
//!
//! Speedup over the 1-thread run for matrices of types 2 (~100 %
//! deflation), 3 (~50 %) and 4 (~20 %), sweeping the thread count from 1
//! to the hardware limit. On the paper's 16-core machine type 4 reaches
//! ~12×; on this host the ceiling is the available core count.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig5_scalability -- --sizes 1024,2048
//! ```

use dcst_bench::{fmt_s, time_taskflow, Args, Table};
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let sizes = args.sizes_or(&[1024, 2048]);
    let maxt = args.usize_or("--threads", dcst_bench::max_threads());

    for &n in &sizes {
        println!("n = {n}:");
        let mut table = Table::new(&["type", "deflation", "t(1)", "threads", "time", "speedup"]);
        for ty in [MatrixType::Type2, MatrixType::Type3, MatrixType::Type4] {
            let t = ty.generate(n, 33);
            let _ = time_taskflow(1, &t); // warm-up (page faults, allocator)
            let (t1, _, stats) = time_taskflow(1, &t);
            for threads in 1..=maxt {
                let (tp, _, _) = time_taskflow(threads, &t);
                table.row(vec![
                    format!("type{}", ty.index()),
                    format!("{:.0}%", 100.0 * stats.overall_deflation()),
                    fmt_s(t1),
                    threads.to_string(),
                    fmt_s(tp),
                    format!("{:.2}x", t1 / tp),
                ]);
            }
        }
        table.print();
        println!();
    }
}
