//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * panel width `nb` (task granularity — the paper's §IV tuning knob);
//! * minimal partition size (leaf size of the merge tree);
//! * the extra-workspace option (§IV: lets `PermuteV` overlap `LAED4` and
//!   `CopyBackDeflated` overlap `ComputeVect`).
//!
//! ```text
//! cargo run --release -p dcst-bench --bin ablation -- --n 1500
//! ```

use dcst_bench::{fmt_s, Args, Table};
use dcst_core::{DcOptions, SolveMode, TaskFlowDc, TridiagEigensolver};
use dcst_tridiag::gen::MatrixType;
use std::time::Instant;

fn run(t: &dcst_tridiag::SymTridiag, opts: DcOptions) -> f64 {
    let solver = TaskFlowDc::new(opts);
    let start = Instant::now();
    solver.solve(t).expect("solve failed");
    start.elapsed().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 1500);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());
    let t = MatrixType::Type4.generate(n, 77);

    println!("Ablation on type 4 (low deflation), n = {n}, {threads} threads.\n");

    println!("Panel width nb (min_part = 64, extra workspace on):");
    let mut tb = Table::new(&["nb", "time"]);
    for nb in [16, 32, 64, 128, 256, n] {
        let time = run(
            &t,
            DcOptions {
                min_part: 64,
                nb,
                threads,
                extra_workspace: true,
                use_gatherv: true,
                mode: SolveMode::Full,
            },
        );
        tb.row(vec![nb.to_string(), fmt_s(time)]);
    }
    tb.print();

    println!("\nMinimal partition size (nb = 64):");
    let mut tb = Table::new(&["min_part", "leaves", "time"]);
    for mp in [16, 32, 64, 128, 300] {
        let leaves = dcst_core::PartitionTree::build(n, mp).leaves().len();
        let time = run(
            &t,
            DcOptions {
                min_part: mp,
                nb: 64,
                threads,
                extra_workspace: true,
                use_gatherv: true,
                mode: SolveMode::Full,
            },
        );
        tb.row(vec![mp.to_string(), leaves.to_string(), fmt_s(time)]);
    }
    tb.print();

    println!("\nExtra workspace (overlap PermuteV/LAED4 and CopyBack/ComputeVect):");
    let mut tb = Table::new(&["extra workspace", "time"]);
    for extra in [false, true] {
        let time = run(
            &t,
            DcOptions {
                min_part: 64,
                nb: 64,
                threads,
                extra_workspace: extra,
                use_gatherv: true,
                mode: SolveMode::Full,
            },
        );
        tb.row(vec![extra.to_string(), fmt_s(time)]);
    }
    tb.print();

    println!("\nGATHERV qualifier (the paper's QUARK extension) vs serialized panels:");
    let mut tb = Table::new(&["panel dependency mode", "time"]);
    for (label, gatherv) in [("INOUT (serialized)", false), ("GATHERV (paper)", true)] {
        let time = run(
            &t,
            DcOptions {
                min_part: 64,
                nb: 64,
                threads,
                extra_workspace: true,
                use_gatherv: gatherv,
                mode: SolveMode::Full,
            },
        );
        tb.row(vec![label.to_string(), fmt_s(time)]);
    }
    tb.print();

    // Sanity: every configuration yields the same spectrum.
    let base = TaskFlowDc::new(DcOptions {
        min_part: 64,
        nb: 64,
        threads,
        extra_workspace: true,
        use_gatherv: true,
        mode: SolveMode::Full,
    })
    .solve(&t)
    .unwrap();
    let alt = TaskFlowDc::new(DcOptions {
        min_part: 300,
        nb: 16,
        threads,
        extra_workspace: false,
        use_gatherv: true,
        mode: SolveMode::Full,
    })
    .solve(&t)
    .unwrap();
    let max_diff = base
        .values
        .iter()
        .zip(&alt.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |lambda difference| across configurations: {max_diff:.2e}");
}
