//! Load benchmark for the `dcst serve` daemon — the latency/shedding
//! evidence behind `BENCH_serve.json`.
//!
//! Three phases against in-process servers on loopback TCP:
//!
//! 1. **Solo closed loop** — one client solves type-4 `--n` (default 512)
//!    systems back to back; the p50 is the service-time yardstick.
//! 2. **Open-loop load** — `--clients` (default 8) clients issue
//!    requests on a fixed schedule at `--utilization` (default 0.6) of
//!    the measured solo capacity, decoupling send from receive so slow
//!    responses cannot self-throttle the arrival process (no coordinated
//!    omission). Latency is scheduled-send → response-received; reported
//!    as p50/p99 and achieved req/s.
//! 3. **Saturation flood** — the same client count hammers a server
//!    whose `max_inflight` is half of it: the daemon must shed with
//!    typed `busy` responses (never a hang or a malformed line), and the
//!    flood must end with the admission gauge back at zero.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin serve_load -- --out BENCH_serve.json
//! cargo run --release -p dcst-bench --bin serve_load -- \
//!     --baseline BENCH_serve.json --max-regress-pct 25
//! ```
//!
//! With `--baseline` the process exits 1 when the load-phase p99
//! regresses more than `--max-regress-pct` (default 25 %) against the
//! committed numbers, or when p99 exceeds `--max-ratio` (default 3)
//! times the solo p50 — the service-level objective of the PR.

use dcst_bench::Args;
use dcst_runtime::jsonv::{self, Json};
use dcst_serve::{Client, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

fn solve_line(id: u64, n: usize) -> String {
    format!(r#"{{"op":"solve","id":{id},"matrix":{{"type":4,"n":{n},"seed":{id}}}}}"#)
}

fn is_ok(doc: &Json) -> bool {
    matches!(doc.get("ok"), Some(Json::Bool(true)))
}

fn error_code(doc: &Json) -> Option<String> {
    doc.get("error")?.get("code")?.as_str().map(str::to_string)
}

/// Phase 1: closed-loop solo client; returns sorted latencies in ms.
fn solo_phase(addr: SocketAddr, n: usize, reps: usize) -> Vec<f64> {
    let mut cl = Client::connect(addr).expect("connect solo client");
    let mut lat = Vec::with_capacity(reps);
    for i in 0..reps {
        let start = Instant::now();
        let doc = cl.call(&solve_line(i as u64, n)).expect("solo solve");
        assert!(is_ok(&doc), "solo solve failed: {doc:?}");
        lat.push(start.elapsed().as_secs_f64() * 1e3);
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    lat
}

/// Phase 2: one open-loop client. Sends `reqs` requests on a fixed
/// `interval` schedule regardless of response progress (writer thread),
/// while a reader thread records completion times. Latency for request i
/// is measured from its *scheduled* send slot.
fn open_loop_client(
    addr: SocketAddr,
    n: usize,
    reqs: usize,
    interval: Duration,
    phase: Duration,
) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect load client");
    let mut writer = stream.try_clone().expect("clone stream");
    let reader = BufReader::new(stream);
    let epoch = Instant::now();
    let recv = thread::spawn(move || {
        let mut done = Vec::with_capacity(reqs);
        for line in reader.lines() {
            let line = line.expect("read response");
            let doc = jsonv::parse(&line).expect("well-formed response");
            assert!(is_ok(&doc), "load solve failed: {doc:?}");
            let id = doc.get("id").unwrap().as_num().unwrap() as usize;
            done.push((id, epoch.elapsed()));
            if done.len() == reqs {
                break;
            }
        }
        done
    });
    let mut scheduled = Vec::with_capacity(reqs);
    for i in 0..reqs {
        let slot = phase + interval * i as u32;
        if let Some(wait) = slot.checked_sub(epoch.elapsed()) {
            thread::sleep(wait);
        }
        scheduled.push(slot);
        writer
            .write_all(format!("{}\n", solve_line(i as u64, n)).as_bytes())
            .and_then(|_| writer.flush())
            .expect("send request");
    }
    let done = recv.join().expect("reader thread");
    done.into_iter()
        .map(|(id, at)| (at - scheduled[id]).as_secs_f64() * 1e3)
        .collect()
}

/// Phase 3: closed-loop flood of `clients` against a small-inflight
/// server. Every response must be ok or typed `busy`; returns
/// (ok, busy) counts.
fn flood_phase(addr: SocketAddr, n: usize, clients: usize, reps: usize) -> (usize, usize) {
    let ok = Arc::new(AtomicUsize::new(0));
    let busy = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let (ok, busy) = (ok.clone(), busy.clone());
            thread::spawn(move || {
                let mut cl = Client::connect(addr).expect("connect flood client");
                for i in 0..reps {
                    let doc = cl
                        .call(&solve_line((c * reps + i) as u64, n))
                        .expect("flood call");
                    if is_ok(&doc) {
                        ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        assert_eq!(
                            error_code(&doc).as_deref(),
                            Some("busy"),
                            "flood produced a non-busy error: {doc:?}"
                        );
                        busy.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("flood client");
    }
    (ok.load(Ordering::Relaxed), busy.load(Ordering::Relaxed))
}

fn inflight_gauge(addr: SocketAddr) -> f64 {
    let mut cl = Client::connect(addr).expect("connect metrics client");
    let doc = cl.call(r#"{"op":"metrics"}"#).expect("metrics");
    doc.get("metrics")
        .and_then(|m| m.get("inflight"))
        .and_then(|v| v.as_num())
        .expect("inflight gauge")
}

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 512);
    let clients = args.usize_or("--clients", 8);
    let solo_reps = args.usize_or("--solo-reps", 15);
    let load_secs = args.usize_or("--load-secs", 8);
    let flood_reps = args.usize_or("--flood-reps", 8);
    let flood_n = args.usize_or("--flood-n", 256);
    let threads = args.usize_or("--threads", dcst_bench::max_threads().min(4));
    let utilization: f64 = args
        .value("--utilization")
        .map(|v| v.parse().expect("--utilization is a number"))
        .unwrap_or(0.6);

    // Phases 1 + 2 share one daemon: the load phase measures the steady
    // state of the same runtime the solo yardstick ran on.
    let server = Server::start(ServerConfig {
        threads,
        max_inflight: 2 * clients,
        ..ServerConfig::default()
    })
    .expect("start load server");
    let addr = server.addr();

    let solo = solo_phase(addr, n, solo_reps);
    let solo_p50 = percentile(&solo, 0.5);
    println!(
        "solo: {solo_reps} solves of n={n}, p50 {solo_p50:.1} ms, p99 {:.1} ms",
        percentile(&solo, 0.99)
    );

    // Aggregate arrival rate = utilization / solo_p50, split evenly.
    let interval = Duration::from_secs_f64(clients as f64 * solo_p50 / 1e3 / utilization);
    let reqs = ((load_secs as f64 / interval.as_secs_f64()).ceil() as usize).max(4);
    // Best-of over load-phase repetitions (by p99): p99 of a few hundred
    // samples on a shared box is nearly a max, so one rep is too noisy
    // for a CI regression gate. Best-of is this repo's standard
    // noise-robust statistic (cf. metrics_overhead).
    let reps = args.usize_or("--reps", 2);
    let (mut load_p50, mut load_p99, mut req_per_s, mut total) = (f64::NAN, f64::INFINITY, 0.0, 0);
    for rep in 0..reps {
        // Stagger client phases so the aggregate arrival process is
        // evenly spaced instead of bursting `clients` requests at once.
        let load_workers: Vec<_> = (0..clients)
            .map(|c| {
                let phase = interval * c as u32 / clients as u32;
                thread::spawn(move || open_loop_client(addr, n, reqs, interval, phase))
            })
            .collect();
        let mut lat: Vec<f64> = load_workers
            .into_iter()
            .flat_map(|w| w.join().expect("load client"))
            .collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        let p50 = percentile(&lat, 0.5);
        let p99 = percentile(&lat, 0.99);
        let span = interval.as_secs_f64() * reqs as f64;
        println!(
            "load rep {rep}: {} reqs, p50 {p50:.1} ms, p99 {p99:.1} ms, {:.2} req/s",
            lat.len(),
            lat.len() as f64 / span
        );
        assert_eq!(inflight_gauge(addr), 0.0, "load left requests admitted");
        if p99 < load_p99 {
            (load_p50, load_p99, req_per_s, total) = (p50, p99, lat.len() as f64 / span, lat.len());
        }
    }
    let ratio = load_p99 / solo_p50;
    println!(
        "load: {clients} open-loop clients at {:.0}% utilization, {total} reqs/rep, \
         best p50 {load_p50:.1} ms, p99 {load_p99:.1} ms ({ratio:.2}x solo p50), {req_per_s:.2} req/s",
        100.0 * utilization
    );
    drop(server);

    // Phase 3 gets its own daemon with max_inflight = clients/2 so the
    // flood must shed.
    let flood_server = Server::start(ServerConfig {
        threads,
        max_inflight: (clients / 2).max(1),
        ..ServerConfig::default()
    })
    .expect("start flood server");
    let (ok, busy) = flood_phase(flood_server.addr(), flood_n, clients, flood_reps);
    println!(
        "flood: {clients} closed-loop clients vs max_inflight {}, {ok} ok, {busy} typed busy",
        (clients / 2).max(1)
    );
    assert!(
        busy > 0,
        "saturation flood never tripped admission control (ok {ok}, busy {busy})"
    );
    assert_eq!(
        inflight_gauge(flood_server.addr()),
        0.0,
        "flood left requests admitted"
    );
    drop(flood_server);

    let json = format!(
        "{{\n  \"n\": {n},\n  \"threads\": {threads},\n  \"clients\": {clients},\n  \
         \"utilization\": {utilization},\n  \"solo_p50_ms\": {solo_p50:.4},\n  \
         \"load_p50_ms\": {load_p50:.4},\n  \"load_p99_ms\": {load_p99:.4},\n  \
         \"p99_over_solo_p50\": {ratio:.4},\n  \"req_per_s\": {req_per_s:.4},\n  \
         \"flood_ok\": {ok},\n  \"flood_busy\": {busy}\n}}\n"
    );
    if let Some(path) = args.value("--out") {
        std::fs::write(path, &json).expect("write serve bench json");
        println!("wrote {path}");
    }

    if let Some(path) = args.value("--baseline") {
        let max_pct: f64 = args
            .value("--max-regress-pct")
            .map(|v| v.parse().expect("--max-regress-pct is a number"))
            .unwrap_or(25.0);
        let max_ratio: f64 = args
            .value("--max-ratio")
            .map(|v| v.parse().expect("--max-ratio is a number"))
            .unwrap_or(3.0);
        let mut failed = false;
        if ratio > max_ratio {
            eprintln!("FAIL: p99 is {ratio:.2}x solo p50 (SLO {max_ratio}x)");
            failed = true;
        }
        let body = std::fs::read_to_string(path).expect("read serve baseline");
        let doc = jsonv::parse(&body).expect("serve baseline is valid JSON");
        let base_p99 = doc
            .get("load_p99_ms")
            .and_then(|v| v.as_num())
            .expect("baseline load_p99_ms");
        let d = 100.0 * (load_p99 - base_p99) / base_p99;
        println!("p99 vs baseline {path}: {d:+.2}% (limit +{max_pct}%)");
        if d > max_pct {
            eprintln!("FAIL: load p99 regressed {d:.2}% > {max_pct}%");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("OK: p99 within {max_ratio}x solo p50 and {max_pct}% of baseline");
    }
}
