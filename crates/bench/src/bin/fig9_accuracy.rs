//! Figure 9: numerical accuracy of D&C vs MRRR.
//!
//! (a) eigenvector orthogonality `max|I − VᵀV| / n` and (b) decomposition
//! residual `max_i ‖T vᵢ − λᵢ vᵢ‖ / (‖T‖·n)` over the full type suite.
//! The paper's finding: D&C is one to two digits more accurate than MRRR
//! on both metrics (O(√n·ε) vs O(n·ε)).
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig9_accuracy -- --sizes 512,1024
//! ```

use dcst_bench::{accuracy, time_mrrr, time_taskflow, Args, Table};
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let sizes = args.sizes_or(&[512, 1024]);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());

    let mut table = Table::new(&[
        "type",
        "n",
        "orth D&C",
        "orth MRRR",
        "resid D&C",
        "resid MRRR",
    ]);
    let mut dc_worse_orth = 0usize;
    let mut cases = 0usize;
    for ty in MatrixType::ALL {
        for &n in &sizes {
            let t = ty.generate(n, 404);
            let (_, eig, _) = time_taskflow(threads, &t);
            let (o_dc, r_dc) = accuracy(&t, &eig.values, &eig.vectors);
            let (_, lam, v) = time_mrrr(threads, &t);
            let (o_mr, r_mr) = accuracy(&t, &lam, &v);
            if o_dc > o_mr {
                dc_worse_orth += 1;
            }
            cases += 1;
            table.row(vec![
                format!("type{}", ty.index()),
                n.to_string(),
                format!("{o_dc:.2e}"),
                format!("{o_mr:.2e}"),
                format!("{r_dc:.2e}"),
                format!("{r_mr:.2e}"),
            ]);
        }
    }
    table.print();
    println!(
        "\nD&C orthogonality worse than MRRR in {dc_worse_orth}/{cases} cases \
         (paper: D&C consistently 1-2 digits better)."
    );
}
