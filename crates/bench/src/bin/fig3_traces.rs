//! Figures 3 and 4: execution traces of the task-flow solver.
//!
//! The paper shows three optimization stages on a type-4 matrix (few
//! deflations — Figure 3) and one trace on a type-5 matrix (~100 %
//! deflation — Figure 4). Here the stages are reproduced as solver
//! configurations:
//!
//! * (a) "multithreaded vector update only": one panel per merge
//!   (`nb = n`), so only the tree's task parallelism exists — GEMMs are
//!   effectively the only overlappable work, like LAPACK+threaded BLAS;
//! * (b) "+ multithreaded merge operations": panel width `nb` default, but
//!   a single-leaf tree (`min_part = n/2`) so merges cannot overlap;
//! * (c) "full task flow": panels and tree overlap both enabled.
//!
//! Each stage prints makespan, idle fraction, a per-kernel breakdown, and
//! an ASCII timeline (one row per worker). `--json <prefix>` additionally
//! dumps the raw trace records, `--svg <prefix>` renders the colored
//! timeline figures (the paper's actual Fig. 3/4 visualization), and
//! `--chrome <prefix>` writes Chrome trace-event files (open in
//! `chrome://tracing` or Perfetto for the interactive version with
//! dependency-edge flow arrows).
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig3_traces -- --n 2000
//! cargo run --release -p dcst-bench --bin fig3_traces -- --matrix-type 5   # Figure 4
//! ```

use dcst_bench::{fmt_s, Args};
use dcst_core::{DcOptions, SolveMode, TaskFlowDc};
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let n = args.usize_or("--n", 1500);
    let ty = MatrixType::from_index(args.usize_or("--matrix-type", 4)).expect("matrix type 1..15");
    let threads = args.usize_or("--threads", dcst_bench::max_threads());
    let t = ty.generate(n, 11);

    let stages: [(&str, DcOptions); 3] = [
        (
            "(a) multithreaded update only (nb = n)",
            DcOptions {
                min_part: 64,
                nb: n,
                threads,
                extra_workspace: true,
                use_gatherv: true,
                mode: SolveMode::Full,
            },
        ),
        (
            "(b) + parallel merge kernels (single branch)",
            DcOptions {
                min_part: n / 2,
                nb: 64,
                threads,
                extra_workspace: true,
                use_gatherv: true,
                mode: SolveMode::Full,
            },
        ),
        (
            "(c) full task flow (panels + tree overlap)",
            DcOptions {
                min_part: 64,
                nb: 64,
                threads,
                extra_workspace: true,
                use_gatherv: true,
                mode: SolveMode::Full,
            },
        ),
    ];

    println!(
        "Execution traces — type {} matrix, n = {n}, {threads} threads (paper Fig. {}):\n",
        ty.index(),
        if ty.index() == 5 { 4 } else { 3 }
    );
    for (label, opts) in stages {
        let solver = TaskFlowDc::new(opts);
        let (_, stats, trace) = solver
            .solve_traced(&t)
            .unwrap_or_else(|e| panic!("stage '{label}' failed: {e}"));
        println!("--- {label}");
        println!(
            "    makespan {}   busy {}   idle {:.1}%   overall deflation {:.0}%",
            fmt_s(trace.makespan_us() as f64 * 1e-6),
            fmt_s(trace.busy_us() as f64 * 1e-6),
            100.0 * trace.idle_fraction(),
            100.0 * stats.overall_deflation(),
        );
        let kstats = trace.kernel_stats();
        let total: u64 = kstats.iter().map(|k| k.total_us).sum();
        let breakdown: Vec<String> = kstats
            .iter()
            .take(5)
            .map(|k| {
                format!(
                    "{} {:.0}%",
                    k.name,
                    100.0 * k.total_us as f64 / total.max(1) as f64
                )
            })
            .collect();
        println!("    top kernels: {}", breakdown.join(", "));
        println!("{}\n", trace.ascii_timeline(100));
        if let Some(path) = args.value("--json") {
            let file = format!("{path}.{}.json", label.chars().nth(1).unwrap());
            std::fs::write(&file, trace.to_json()).expect("write trace json");
            println!("    raw trace written to {file}\n");
        }
        if let Some(path) = args.value("--svg") {
            let file = format!("{path}.{}.svg", label.chars().nth(1).unwrap());
            std::fs::write(&file, trace.to_svg(1200, 24)).expect("write trace svg");
            println!("    svg timeline written to {file}\n");
        }
        if let Some(path) = args.value("--chrome") {
            let file = format!("{path}.{}.trace.json", label.chars().nth(1).unwrap());
            std::fs::write(&file, trace.to_chrome_json()).expect("write chrome trace");
            println!(
                "    chrome trace written to {file} ({} tasks, {} edges)\n",
                trace.records.len(),
                trace.edges.len()
            );
        }
    }
}
