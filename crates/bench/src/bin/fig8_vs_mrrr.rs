//! Figure 8: time(MR³) / time(D&C) over all fifteen Table III types.
//!
//! Ratios > 1 mean the task-flow D&C wins. The paper finds D&C ahead on
//! most types (up to 25×, driven by deflation) and MRRR ahead on a few
//! well-separated spectra (at most ~2×) — the matrix-dependence is the
//! reproduced property.
//!
//! ```text
//! cargo run --release -p dcst-bench --bin fig8_vs_mrrr -- --sizes 512,1024
//! ```

use dcst_bench::{fmt_s, time_mrrr, time_taskflow, Args, Table};
use dcst_tridiag::gen::MatrixType;

fn main() {
    let args = Args::parse();
    let sizes = args.sizes_or(&[512, 1024]);
    let threads = args.usize_or("--threads", dcst_bench::max_threads());

    let mut table = Table::new(&[
        "type",
        "n",
        "deflation",
        "t_mrrr",
        "t_dc",
        "t_mrrr/t_dc",
        "winner",
    ]);
    for ty in MatrixType::ALL {
        for &n in &sizes {
            let t = ty.generate(n, 303);
            let (t_mr, _, _) = time_mrrr(threads, &t);
            let (t_dc, _, stats) = time_taskflow(threads, &t);
            let ratio = t_mr / t_dc;
            table.row(vec![
                format!("type{}", ty.index()),
                n.to_string(),
                format!("{:.0}%", 100.0 * stats.overall_deflation()),
                fmt_s(t_mr),
                fmt_s(t_dc),
                format!("{ratio:.2}"),
                if ratio >= 1.0 { "D&C" } else { "MRRR" }.to_string(),
            ]);
        }
    }
    table.print();
}
