//! Fork-join task-storm driver for the scheduler-contention benchmark.
//!
//! Measures the raw work-stealing substrate — no runtime, no dependency
//! tracking — so the deque protocol itself dominates. `roots` seed tasks
//! go through the shared injector; every task of depth `d > 0` pushes two
//! depth-`d-1` children onto its worker's local deque, so the storm is the
//! classic binary fork-join tree (`roots * (2^(depth+1) - 1)` tasks total)
//! with all the pop/steal races a real solve produces, compressed into
//! no-op task bodies.
//!
//! The driver is generic over a [`Backend`] so the same storm runs against
//! the production lock-free Chase–Lev deque ([`LockFree`]) and the
//! `Mutex<VecDeque>` baseline kept in `crossbeam_deque::mutexed`
//! ([`Mutexed`]); `metrics_overhead --sched-out` reports both and their
//! ratio, which is the number the CI gate holds at ≥2× for 8+ workers.

use crossbeam_deque::Steal;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// A work-stealing implementation the storm can drive. Both backends
/// expose the same `crossbeam_deque` API; the trait only exists to make
/// the choice a compile-time parameter (no dynamic dispatch inside the
/// hot loop).
pub trait Backend {
    type Worker: Send;
    type Stealer: Send + Sync + Clone;
    type Injector: Send + Sync;
    const NAME: &'static str;

    fn worker() -> Self::Worker;
    fn stealer(w: &Self::Worker) -> Self::Stealer;
    fn injector() -> Self::Injector;
    fn inj_push(inj: &Self::Injector, v: u32);
    fn inj_steal(inj: &Self::Injector) -> Steal<u32>;
    fn push(w: &Self::Worker, v: u32);
    fn pop(w: &Self::Worker) -> Option<u32>;
    fn steal(s: &Self::Stealer) -> Steal<u32>;
}

/// The production lock-free deque and segment-list injector.
pub struct LockFree;

impl Backend for LockFree {
    type Worker = crossbeam_deque::Worker<u32>;
    type Stealer = crossbeam_deque::Stealer<u32>;
    type Injector = crossbeam_deque::Injector<u32>;
    const NAME: &'static str = "lockfree";

    fn worker() -> Self::Worker {
        crossbeam_deque::Worker::new_lifo()
    }
    fn stealer(w: &Self::Worker) -> Self::Stealer {
        w.stealer()
    }
    fn injector() -> Self::Injector {
        crossbeam_deque::Injector::new()
    }
    fn inj_push(inj: &Self::Injector, v: u32) {
        inj.push(v);
    }
    fn inj_steal(inj: &Self::Injector) -> Steal<u32> {
        inj.steal()
    }
    fn push(w: &Self::Worker, v: u32) {
        w.push(v);
    }
    fn pop(w: &Self::Worker) -> Option<u32> {
        w.pop()
    }
    fn steal(s: &Self::Stealer) -> Steal<u32> {
        s.steal()
    }
}

/// The `Mutex<VecDeque>` contention baseline.
pub struct Mutexed;

impl Backend for Mutexed {
    type Worker = crossbeam_deque::mutexed::Worker<u32>;
    type Stealer = crossbeam_deque::mutexed::Stealer<u32>;
    type Injector = crossbeam_deque::mutexed::Injector<u32>;
    const NAME: &'static str = "mutexed";

    fn worker() -> Self::Worker {
        crossbeam_deque::mutexed::Worker::new_lifo()
    }
    fn stealer(w: &Self::Worker) -> Self::Stealer {
        w.stealer()
    }
    fn injector() -> Self::Injector {
        crossbeam_deque::mutexed::Injector::new()
    }
    fn inj_push(inj: &Self::Injector, v: u32) {
        inj.push(v);
    }
    fn inj_steal(inj: &Self::Injector) -> Steal<u32> {
        inj.steal()
    }
    fn push(w: &Self::Worker, v: u32) {
        w.push(v);
    }
    fn pop(w: &Self::Worker) -> Option<u32> {
        w.pop()
    }
    fn steal(s: &Self::Stealer) -> Steal<u32> {
        s.steal()
    }
}

/// One storm run's results.
#[derive(Clone, Copy, Debug)]
pub struct StormResult {
    /// Total tasks executed (`roots * (2^(depth+1) - 1)`).
    pub tasks: u64,
    /// Wall-clock nanoseconds per task.
    pub ns_per_task: f64,
    /// Steal polls (injector polls + sibling-deque polls) across workers.
    pub steal_attempts: u64,
    /// Steal polls that delivered a task.
    pub steal_hits: u64,
}

impl StormResult {
    /// Fraction of steal polls that delivered a task.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steal_hits as f64 / self.steal_attempts as f64
        }
    }
}

/// Run one fork-join storm on `workers` threads. Every worker loops
/// pop-local → poll-injector → sweep-siblings, yielding to the OS when a
/// full sweep comes up dry (essential when the bench oversubscribes the
/// machine, and identical for both backends so the comparison stays fair).
pub fn storm<B: Backend>(workers: usize, roots: usize, depth: u32) -> StormResult {
    assert!(workers >= 1 && roots >= 1);
    let total = roots as u64 * ((1u64 << (depth + 1)) - 1);
    let injector = B::injector();
    for _ in 0..roots {
        B::inj_push(&injector, depth);
    }
    let locals: Vec<B::Worker> = (0..workers).map(|_| B::worker()).collect();
    let stealers: Vec<B::Stealer> = locals.iter().map(B::stealer).collect();
    let remaining = AtomicUsize::new(total as usize);
    let attempts = AtomicU64::new(0);
    let hits = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (id, local) in locals.into_iter().enumerate() {
            let (injector, stealers) = (&injector, &stealers);
            let (remaining, attempts, hits) = (&remaining, &attempts, &hits);
            scope.spawn(move || {
                let mut my_attempts = 0u64;
                let mut my_hits = 0u64;
                let run = |d: u32| {
                    if d > 0 {
                        B::push(&local, d - 1);
                        B::push(&local, d - 1);
                    }
                    remaining.fetch_sub(1, Ordering::Relaxed);
                };
                'outer: loop {
                    if let Some(d) = B::pop(&local) {
                        run(d);
                        continue;
                    }
                    // Out of local work: poll the injector, then sweep the
                    // sibling deques, exactly the pool's find_task order.
                    loop {
                        my_attempts += 1;
                        match B::inj_steal(injector) {
                            Steal::Success(d) => {
                                my_hits += 1;
                                run(d);
                                continue 'outer;
                            }
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    }
                    let mut retry = false;
                    for (other, s) in stealers.iter().enumerate() {
                        if other == id {
                            continue;
                        }
                        my_attempts += 1;
                        match B::steal(s) {
                            Steal::Success(d) => {
                                my_hits += 1;
                                run(d);
                                continue 'outer;
                            }
                            Steal::Retry => retry = true,
                            Steal::Empty => {}
                        }
                    }
                    if !retry && remaining.load(Ordering::Relaxed) == 0 {
                        break;
                    }
                    // Dry sweep while work is still in flight elsewhere:
                    // give the OS a chance to run whoever holds it.
                    std::thread::yield_now();
                }
                attempts.fetch_add(my_attempts, Ordering::Relaxed);
                hits.fetch_add(my_hits, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(
        remaining.load(Ordering::SeqCst),
        0,
        "storm lost tasks ({} backend)",
        B::NAME
    );

    StormResult {
        tasks: total,
        ns_per_task: elapsed.as_nanos() as f64 / total as f64,
        steal_attempts: attempts.load(Ordering::SeqCst),
        steal_hits: hits.load(Ordering::SeqCst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_executes_every_task_on_both_backends() {
        // 4 roots, depth 5 => 4 * 63 = 252 tasks; the exactly-once check
        // is the assert inside storm (remaining hits zero, never below).
        let lf = storm::<LockFree>(4, 4, 5);
        assert_eq!(lf.tasks, 252);
        assert!(lf.ns_per_task > 0.0);
        let mx = storm::<Mutexed>(4, 4, 5);
        assert_eq!(mx.tasks, 252);
        // The injector seeded 4 roots across >1 worker: someone stole.
        assert!(lf.steal_hits >= 1 && mx.steal_hits >= 1);
        assert!(lf.steal_success_rate() <= 1.0);
    }

    #[test]
    fn single_worker_storm_needs_only_injector_steals() {
        let r = storm::<LockFree>(1, 2, 3);
        assert_eq!(r.tasks, 30);
        // No siblings to poll; every hit came from the injector, and the
        // owner popped the rest locally.
        assert_eq!(r.steal_hits, 2);
    }
}
