//! Shared harness for the figure/table regenerators (one binary per
//! experiment in `src/bin/`) and the Criterion micro-benches.

pub mod sched;

use dcst_core::{
    DcOptions, DcStats, Eigen, ForkJoinDc, LevelParallelDc, SequentialDc, TaskFlowDc,
    TridiagEigensolver,
};
use dcst_mrrr::{MrrrOptions, MrrrSolver};
use dcst_tridiag::SymTridiag;
use std::time::Instant;

/// Simple `--key value` / `--flag` argument access.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    pub fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    pub fn usize_or(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated size list, e.g. `--sizes 512,1024,2048`.
    pub fn sizes_or(&self, default: &[usize]) -> Vec<usize> {
        match self.value("--sizes") {
            Some(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }
}

/// Number of hardware threads available.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Default options at a given thread count.
pub fn opts(threads: usize) -> DcOptions {
    DcOptions {
        threads,
        ..DcOptions::default()
    }
}

/// Wall-clock one solve, returning seconds and the result.
pub fn time_solve<S: TridiagEigensolver + ?Sized>(solver: &S, t: &SymTridiag) -> (f64, Eigen) {
    let start = Instant::now();
    let eig = solver
        .solve(t)
        .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
    (start.elapsed().as_secs_f64(), eig)
}

/// Wall-clock the task-flow solver with statistics.
pub fn time_taskflow(threads: usize, t: &SymTridiag) -> (f64, Eigen, DcStats) {
    let solver = TaskFlowDc::new(opts(threads));
    let start = Instant::now();
    let (eig, stats) = solver.solve_with_stats(t).expect("taskflow solve failed");
    (start.elapsed().as_secs_f64(), eig, stats)
}

/// Wall-clock the MRRR solver.
pub fn time_mrrr(threads: usize, t: &SymTridiag) -> (f64, Vec<f64>, dcst_matrix::Matrix) {
    let solver = MrrrSolver::new(MrrrOptions {
        threads,
        ..Default::default()
    });
    let start = Instant::now();
    let (lam, v) = solver.solve(t).expect("mrrr solve failed");
    (start.elapsed().as_secs_f64(), lam, v)
}

/// All four D&C variants at a thread count (for comparison tables).
pub fn dc_suite(threads: usize) -> Vec<Box<dyn TridiagEigensolver>> {
    vec![
        Box::new(SequentialDc::new(opts(1))),
        Box::new(ForkJoinDc::new(opts(threads))),
        Box::new(LevelParallelDc::new(opts(threads))),
        Box::new(TaskFlowDc::new(opts(threads))),
    ]
}

/// Accuracy metrics `(orthogonality, residual)` of a decomposition of `t`.
pub fn accuracy(t: &SymTridiag, values: &[f64], vectors: &dcst_matrix::Matrix) -> (f64, f64) {
    let orth = dcst_matrix::orthogonality_error(vectors);
    let res =
        dcst_matrix::residual_error(t.n(), |x, y| t.matvec(x, y), values, vectors, t.max_norm());
    (orth, res)
}

/// Markdown-style table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", body.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format seconds compactly.
pub fn fmt_s(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // smoke test: no panic
    }

    #[test]
    fn fmt_scales() {
        assert!(fmt_s(0.5e-4).ends_with("us"));
        assert!(fmt_s(0.5).ends_with("ms"));
        assert!(fmt_s(2.0).ends_with('s'));
    }
}
