//! Solver-behavior coverage beyond the unit tests: tree shapes, dynamic
//! deflation accounting, option interactions, DAG/trace invariants, error
//! surfaces.

use dcst_core::*;
use dcst_tridiag::gen::MatrixType;
use dcst_tridiag::SymTridiag;

fn opts(min_part: usize, nb: usize, threads: usize) -> DcOptions {
    DcOptions {
        min_part,
        nb,
        threads,
        extra_workspace: true,
        use_gatherv: true,
        mode: SolveMode::Full,
    }
}

fn spectrum_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < tol, "{x} vs {y}");
    }
}

#[test]
fn odd_sizes_and_prime_sizes() {
    for n in [2usize, 3, 5, 7, 31, 97, 101] {
        let t = MatrixType::Type6.generate(n, n as u64);
        let eig = TaskFlowDc::new(opts(4, 4, 2)).solve(&t).unwrap();
        assert_eq!(eig.values.len(), n);
        let r = dcst_matrix::residual_error(
            n,
            |x, y| t.matvec(x, y),
            &eig.values,
            &eig.vectors,
            t.max_norm(),
        );
        assert!(r < 1e-12, "n = {n}: {r}");
    }
}

#[test]
fn all_four_variants_identical_spectra() {
    let t = MatrixType::Type5.generate(90, 4);
    let o = opts(16, 8, 2);
    let a = SequentialDc::new(DcOptions { threads: 1, ..o })
        .solve(&t)
        .unwrap();
    let b = ForkJoinDc::new(o).solve(&t).unwrap();
    let c = LevelParallelDc::new(o).solve(&t).unwrap();
    let d = TaskFlowDc::new(o).solve(&t).unwrap();
    spectrum_close(&a.values, &b.values, 1e-13);
    spectrum_close(&a.values, &c.values, 1e-13);
    spectrum_close(&a.values, &d.values, 1e-13);
}

#[test]
fn stats_sizes_sum_to_merge_tree() {
    let n = 120;
    let t = MatrixType::Type4.generate(n, 9);
    let o = opts(16, 16, 2);
    let (_, stats) = TaskFlowDc::new(o).solve_with_stats(&t).unwrap();
    let tree = PartitionTree::build(n, 16);
    assert_eq!(stats.merges.len(), tree.merges_postorder().len());
    // Each merge's n equals the corresponding node size.
    let mut node_sizes: Vec<usize> = tree
        .merges_postorder()
        .iter()
        .map(|&m| tree.nodes[m].n)
        .collect();
    let mut stat_sizes: Vec<usize> = stats.merges.iter().map(|s| s.n).collect();
    node_sizes.sort_unstable();
    stat_sizes.sort_unstable();
    assert_eq!(node_sizes, stat_sizes);
    // k never exceeds the merge size.
    assert!(stats.merges.iter().all(|s| s.k <= s.n));
}

#[test]
fn deflation_ordering_across_types() {
    // Deflation: type2 >= type3 >= type4 (the Figure 5/6/7 legend).
    let n = 200;
    let solver = TaskFlowDc::new(opts(25, 32, 2));
    let d2 = solver
        .solve_with_stats(&MatrixType::Type2.generate(n, 7))
        .unwrap()
        .1
        .overall_deflation();
    let d3 = solver
        .solve_with_stats(&MatrixType::Type3.generate(n, 7))
        .unwrap()
        .1
        .overall_deflation();
    let d4 = solver
        .solve_with_stats(&MatrixType::Type4.generate(n, 7))
        .unwrap()
        .1
        .overall_deflation();
    assert!(d2 > d3 + 0.2, "type2 {d2} vs type3 {d3}");
    assert!(d3 > d4, "type3 {d3} vs type4 {d4}");
}

#[test]
fn trace_busy_time_bounded_by_makespan_times_workers() {
    let t = MatrixType::Type3.generate(100, 3);
    let (_, _, trace) = TaskFlowDc::new(opts(16, 8, 2)).solve_traced(&t).unwrap();
    assert!(trace.busy_us() <= trace.makespan_us() * 2 + 1000);
    assert!(trace.idle_fraction() >= 0.0 && trace.idle_fraction() <= 1.0);
}

#[test]
fn dag_size_scales_with_panels() {
    let t = MatrixType::Type4.generate(64, 1);
    let solver_coarse = TaskFlowDc::new(opts(16, 64, 2));
    let solver_fine = TaskFlowDc::new(opts(16, 8, 2));
    let (_, dag_coarse) = solver_coarse.solve_with_dag(&t).unwrap();
    let (_, dag_fine) = solver_fine.solve_with_dag(&t).unwrap();
    assert!(
        dag_fine.num_nodes() > dag_coarse.num_nodes(),
        "finer panels ⇒ more tasks: {} vs {}",
        dag_fine.num_nodes(),
        dag_coarse.num_nodes()
    );
}

#[test]
fn cost_model_tracks_deflation() {
    let n = 128;
    let solver = TaskFlowDc::new(opts(16, 16, 1));
    let (_, s_hi) = solver
        .solve_with_stats(&MatrixType::Type2.generate(n, 3))
        .unwrap();
    let (_, s_lo) = solver
        .solve_with_stats(&MatrixType::Type4.generate(n, 3))
        .unwrap();
    let (hi_cost, hi_worst) = solve_cost_model(&s_hi.merges);
    let (lo_cost, lo_worst) = solve_cost_model(&s_lo.merges);
    assert_eq!(hi_worst, lo_worst, "same tree ⇒ same worst case");
    assert!(
        hi_cost * 4 < lo_cost,
        "deflation saves ops: {hi_cost} vs {lo_cost}"
    );
}

#[test]
fn identical_diagonal_matrix() {
    // All diagonal, all equal: everything deflates everywhere.
    let t = SymTridiag::new(vec![5.0; 40], vec![0.0; 39]);
    let (eig, stats) = TaskFlowDc::new(opts(8, 8, 2)).solve_with_stats(&t).unwrap();
    assert!(eig.values.iter().all(|&l| (l - 5.0).abs() < 1e-14));
    assert!(stats.overall_deflation() > 0.99);
    assert!(dcst_matrix::orthogonality_error(&eig.vectors) < 1e-15);
}

#[test]
fn negated_matrix_mirrors_spectrum() {
    let t = MatrixType::Type6.generate(70, 21);
    let neg = SymTridiag::new(t.d.iter().map(|x| -x).collect(), t.e.clone());
    let solver = TaskFlowDc::new(opts(16, 8, 2));
    let a = solver.solve(&t).unwrap();
    let b = solver.solve(&neg).unwrap();
    for (x, y) in a.values.iter().zip(b.values.iter().rev()) {
        assert!((x + y).abs() < 1e-11, "{x} vs {y}");
    }
}

#[test]
fn shift_invariance() {
    // T + cI shifts the spectrum by exactly c (D&C operates on scaled data).
    let t = MatrixType::Type6.generate(60, 2);
    let c = 37.5;
    let shifted = SymTridiag::new(t.d.iter().map(|x| x + c).collect(), t.e.clone());
    let solver = TaskFlowDc::new(opts(16, 8, 2));
    let a = solver.solve(&t).unwrap();
    let b = solver.solve(&shifted).unwrap();
    for (x, y) in a.values.iter().zip(&b.values) {
        assert!((x + c - y).abs() < 1e-10, "{x}+{c} vs {y}");
    }
}

#[test]
fn errors_render_helpfully() {
    let t = SymTridiag::new(vec![f64::INFINITY, 1.0], vec![0.5]);
    let err = TaskFlowDc::new(opts(4, 4, 1)).solve(&t).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("NaN") || msg.contains("infinite"), "{msg}");
}

#[test]
fn tiny_nb_and_threads_mismatch() {
    // nb = 1 (a task per column) still works, as does threads > n.
    let t = MatrixType::Type3.generate(24, 6);
    let eig = TaskFlowDc::new(opts(6, 1, 8)).solve(&t).unwrap();
    let reference = SequentialDc::new(opts(6, 1, 1)).solve(&t).unwrap();
    spectrum_close(&eig.values, &reference.values, 1e-12);
}
