//! Solve-mode conformance: values-only and subset solves must agree with
//! the full-solve oracle across every DMPV matrix type and every driver.

use dcst_core::{
    DcError, DcOptions, ForkJoinDc, LevelParallelDc, SequentialDc, SolveMode, TaskFlowDc,
    TridiagEigensolver,
};
use dcst_matrix::residual_error;
use dcst_tridiag::gen::MatrixType;
use dcst_tridiag::SymTridiag;
use proptest::prelude::*;

fn opts(mode: SolveMode) -> DcOptions {
    DcOptions {
        min_part: 16,
        nb: 16,
        threads: 3,
        mode,
        ..DcOptions::default()
    }
}

/// All four drivers as trait objects for a given mode.
fn drivers(mode: SolveMode) -> Vec<Box<dyn TridiagEigensolver>> {
    vec![
        Box::new(SequentialDc::new(opts(mode))),
        Box::new(ForkJoinDc::new(opts(mode))),
        Box::new(LevelParallelDc::new(opts(mode))),
        Box::new(TaskFlowDc::new(opts(mode))),
    ]
}

/// |a - b| within `mult · nε·‖T‖` — the workspace's DMPV-gate shape.
fn values_close(a: &[f64], b: &[f64], n: usize, norm: f64, mult: f64) {
    assert_eq!(a.len(), b.len());
    let tol = mult * n as f64 * f64::EPSILON * norm.max(1.0);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol, "value {i}: {x} vs {y} (tol {tol})");
    }
}

#[test]
fn values_only_matches_full_all_types_all_drivers() {
    let n = 80;
    for ty in MatrixType::ALL {
        let t = ty.generate(n, 7);
        let oracle = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
        for s in drivers(SolveMode::ValuesOnly) {
            let eig = s.solve(&t).unwrap();
            assert_eq!(eig.vectors.cols(), 0, "{}: no vectors", s.name());
            assert_eq!(eig.vectors.rows(), n);
            values_close(&eig.values, &oracle.values, n, t.max_norm(), 50.0);
        }
    }
}

#[test]
fn subset_matches_full_all_types_all_drivers() {
    let n = 80;
    // Wide subset (D&C pruned root) and narrow subset (MRRR fallback).
    for (il, iu) in [(10usize, 69usize), (38, 41)] {
        for ty in MatrixType::ALL {
            let t = ty.generate(n, 3);
            let oracle = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
            for s in drivers(SolveMode::Subset { il, iu }) {
                let eig = s.solve(&t).unwrap();
                assert_eq!(eig.values.len(), iu - il + 1, "{}", s.name());
                assert_eq!(eig.vectors.cols(), iu - il + 1);
                assert_eq!(eig.vectors.rows(), n);
                values_close(&eig.values, &oracle.values[il..=iu], n, t.max_norm(), 50.0);
                // The returned columns must be genuine eigenvectors of T
                // for the returned values.
                let res = residual_error(
                    n,
                    |x, y| t.matvec(x, y),
                    &eig.values,
                    &eig.vectors,
                    t.max_norm(),
                );
                assert!(res < 1e-10, "{} {ty:?} residual {res}", s.name());
                // Unit columns.
                for c in 0..eig.vectors.cols() {
                    let nrm: f64 = eig.vectors.col(c).iter().map(|x| x * x).sum::<f64>().sqrt();
                    assert!((nrm - 1.0).abs() < 1e-8, "col {c} norm {nrm}");
                }
            }
        }
    }
}

#[test]
fn subset_full_range_matches_full_solve() {
    let t = MatrixType::Type6.generate(64, 11);
    let full = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
    let sub = SequentialDc::new(opts(SolveMode::Subset { il: 0, iu: 63 }))
        .solve(&t)
        .unwrap();
    assert_eq!(sub.values.len(), 64);
    values_close(&sub.values, &full.values, 64, t.max_norm(), 50.0);
    let res = residual_error(
        64,
        |x, y| t.matvec(x, y),
        &sub.values,
        &sub.vectors,
        t.max_norm(),
    );
    assert!(res < 1e-12, "residual {res}");
}

#[test]
fn invalid_subset_ranges_are_typed_errors() {
    let t = SymTridiag::toeplitz121(32);
    for (il, iu) in [(5usize, 4usize), (0, 32), (40, 50)] {
        for s in drivers(SolveMode::Subset { il, iu }) {
            match s.solve(&t) {
                Err(DcError::InvalidRange {
                    il: el,
                    iu: eu,
                    n: en,
                }) => {
                    assert_eq!((el, eu, en), (il, iu, 32), "{}", s.name());
                }
                other => panic!(
                    "{} with ({il},{iu}): expected InvalidRange, got {other:?}",
                    s.name()
                ),
            }
        }
    }
}

#[test]
fn values_only_extreme_scales() {
    // The 1e-60 / 1e150 regimes that motivated the bisection fix must also
    // survive the boundary-row path end to end.
    for scale in [1e-60, 1.0, 1e150] {
        let base = SymTridiag::toeplitz121(48);
        let t = SymTridiag::new(
            base.d.iter().map(|x| x * scale).collect(),
            base.e.iter().map(|x| x * scale).collect(),
        );
        let full = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
        let vals = SequentialDc::new(opts(SolveMode::ValuesOnly))
            .solve(&t)
            .unwrap();
        values_close(&vals.values, &full.values, 48, t.max_norm(), 50.0);
    }
}

#[test]
fn values_only_single_leaf_and_tiny() {
    // Root-is-leaf (n <= min_part) and degenerate sizes.
    for n in [1usize, 2, 3, 15] {
        let t = MatrixType::Type8.generate(n, 5);
        let full = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
        for s in drivers(SolveMode::ValuesOnly) {
            let eig = s.solve(&t).unwrap();
            values_close(&eig.values, &full.values, n.max(1), t.max_norm(), 50.0);
        }
    }
}

#[test]
fn subset_single_leaf_tree() {
    // n <= min_part: the "root merge" never happens; gather still works.
    let t = MatrixType::Type4.generate(12, 2);
    let full = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
    for s in drivers(SolveMode::Subset { il: 2, iu: 9 }) {
        let eig = s.solve(&t).unwrap();
        values_close(&eig.values, &full.values[2..=9], 12, t.max_norm(), 50.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random type/size/seed: values-only agrees with the full oracle on
    /// every driver.
    #[test]
    fn prop_values_only_matches_full(
        ty_idx in 0usize..15,
        n in 24usize..100,
        seed in 0u64..1000,
    ) {
        let t = MatrixType::ALL[ty_idx].generate(n, seed);
        let oracle = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
        for s in drivers(SolveMode::ValuesOnly) {
            let eig = s.solve(&t).unwrap();
            values_close(&eig.values, &oracle.values, n, t.max_norm(), 50.0);
        }
    }

    /// Random subset ranges: selected values agree with the oracle slice
    /// and the vectors have small residuals, on every driver.
    #[test]
    fn prop_subset_matches_full(
        ty_idx in 0usize..15,
        n in 24usize..100,
        seed in 0u64..1000,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let t = MatrixType::ALL[ty_idx].generate(n, seed);
        let il = (a * (n - 1) as f64) as usize;
        let iu = il + (b * (n - 1 - il) as f64) as usize;
        let oracle = SequentialDc::new(opts(SolveMode::Full)).solve(&t).unwrap();
        for s in drivers(SolveMode::Subset { il, iu }) {
            let eig = s.solve(&t).unwrap();
            prop_assert_eq!(eig.values.len(), iu - il + 1);
            values_close(&eig.values, &oracle.values[il..=iu], n, t.max_norm(), 50.0);
            let res = residual_error(
                n,
                |x, y| t.matvec(x, y),
                &eig.values,
                &eig.vectors,
                t.max_norm(),
            );
            prop_assert!(res < 1e-8, "{} residual {}", s.name(), res);
        }
    }
}
