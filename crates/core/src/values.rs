//! Eigenvalue-only D&C kernels (the [`SolveMode::ValuesOnly`] path).
//!
//! Cuppen's merge only consumes two *rows* of each child's eigenvector
//! matrix: the left child's last row and the right child's first row form
//! the rank-one vector `z` (Eq. (6) of the paper). When no eigenvectors
//! are requested there is therefore no reason to accumulate n×n matrices —
//! following Zhan–Zhang's state-reduced eigenvalue-only D&C, every node
//! propagates just its own boundary rows ([`BoundaryRows`]: the first and
//! last row of the node's eigenvector matrix, `O(n)` numbers), and each
//! merge updates them from the secular eigenvectors it would otherwise
//! have assembled into columns. Internal state drops from `O(n²)` to
//! `O(n)` per node, which is what makes large values-only solves fit in
//! cache-sized memory (the `BENCH_modes.json` high-water gate).
//!
//! The secular phase runs **twice** over each root: pass 1 solves the
//! secular equation to get the eigenvalue and accumulate the running
//! Gu–Eisenstat `local_w` partial (one k-length column buffer, reused);
//! pass 2 re-solves (the iteration is deterministic, so the deltas are
//! bitwise identical), assembles the slot-permuted normalized vector one
//! column at a time, and dots it with the compressed boundary rows. Twice
//! the LAED4 flops buys truly `O(n)` transient memory — and the root
//! merge, whose output rows nobody reads, skips pass 2 entirely
//! (`need_rows = false`).
//!
//! [`SolveMode::ValuesOnly`]: crate::SolveMode::ValuesOnly

use crate::merge::{ensure_finite_merge_inputs, finalize_d, slot_rows, MergeStat};
use crate::DcError;
use dcst_qriter::{steqr_mut, ZBlock};
use dcst_secular::{
    assemble_vectors, deflate, local_w_products, reduce_w, solve_secular_root, Deflation,
    DeflationInput,
};

/// The first and last row of a node's (never materialized) eigenvector
/// matrix, indexed by the node's physical column order.
#[derive(Clone, Debug)]
pub(crate) struct BoundaryRows {
    pub first: Vec<f64>,
    pub last: Vec<f64>,
}

/// Leaf solve for the values-only path: QR iteration on the block, with
/// rotations accumulated into a 2×nm row block instead of an identity
/// matrix — rows 0 and nm−1 of the identity seed exactly the first/last
/// rows of the leaf's eigenvector matrix.
pub(crate) fn solve_leaf_values(
    d: &mut [f64],
    mut e: Vec<f64>,
    off: usize,
) -> Result<BoundaryRows, DcError> {
    let nm = d.len();
    let mut rows = vec![0.0f64; 2 * nm];
    rows[0] = 1.0; // row 0 of the identity: e₀ᵀ
    rows[(nm - 1) * 2 + 1] = 1.0; // row nm−1: e_{nm−1}ᵀ
    let z = ZBlock {
        buf: &mut rows,
        ld: 2,
        nrows: 2,
    };
    steqr_mut(d, &mut e, Some(z)).map_err(|err| DcError::Leaf(err.with_offset(off)))?;
    let first = (0..nm).map(|j| rows[2 * j]).collect();
    let last = (0..nm).map(|j| rows[2 * j + 1]).collect();
    Ok(BoundaryRows { first, last })
}

/// Deflation state of a values-only merge plus the merged block's
/// boundary rows compressed into storage-slot order (masked to each
/// slot's row span).
pub(crate) struct RowDeflation {
    pub defl: Deflation,
    /// First row of the merged block in slot order; zero for slots whose
    /// span excludes row 0 (Bottom).
    pub w_first: Vec<f64>,
    /// Last row in slot order; zero for Top slots.
    pub w_last: Vec<f64>,
}

/// The deflation phase of a values-only merge: build `z` from the
/// children's boundary rows, deflate the block diagonal, and carry the
/// merged boundary rows through the deflation rotations into slot order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deflate_rows(
    d_block: &mut [f64],
    n1: usize,
    beta: f64,
    row_off: usize,
    rows_l: &BoundaryRows,
    rows_r: &BoundaryRows,
    idxq_l: &[usize],
    idxq_r: &[usize],
) -> Result<RowDeflation, DcError> {
    let nm = d_block.len();
    let n2 = nm - n1;
    debug_assert_eq!(rows_l.first.len(), n1);
    debug_assert_eq!(rows_r.first.len(), n2);

    // z = [left.last | right.first] / √2 — what build_z reads out of the
    // full path's V panel.
    let s2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut z = Vec::with_capacity(nm);
    z.extend(rows_l.last.iter().map(|x| x * s2));
    z.extend(rows_r.first.iter().map(|x| x * s2));
    ensure_finite_merge_inputs(d_block, &z, row_off)?;

    let mut idxq: Vec<usize> = Vec::with_capacity(nm);
    idxq.extend_from_slice(idxq_l);
    idxq.extend(idxq_r.iter().map(|&r| r + n1));
    let defl = deflate(&DeflationInput {
        d: d_block,
        z: &z,
        beta,
        n1,
        idxq: &idxq,
    });

    // The merged block's boundary rows over its physical (pre-permute)
    // columns: its first row lives entirely in the left child (right-child
    // columns are zero there), its last row in the right child.
    let mut first_cat = vec![0.0f64; nm];
    let mut last_cat = vec![0.0f64; nm];
    first_cat[..n1].copy_from_slice(&rows_l.first);
    last_cat[n1..].copy_from_slice(&rows_r.last);
    // Deflation rotations: 2-element column pairs of each row.
    for r in &defl.givens {
        for row in [&mut first_cat, &mut last_cat] {
            let (xv, yv) = (row[r.col_a], row[r.col_b]);
            row[r.col_a] = r.c * xv + r.s * yv;
            row[r.col_b] = -r.s * xv + r.c * yv;
        }
    }
    // Permute to storage-slot order, masking entries outside a slot's row
    // span: the full path's update GEMMs read Top slots only for the top
    // rows and Bottom slots only for the bottom rows, so a Bottom slot
    // contributes nothing to the first row (and Top nothing to the last).
    let mut w_first = vec![0.0f64; nm];
    let mut w_last = vec![0.0f64; nm];
    for s in 0..nm {
        let src = defl.perm[s];
        let (r0, r1) = slot_rows(defl.slot_type[s], nm, n1);
        if r0 == 0 {
            w_first[s] = first_cat[src];
        }
        if r1 == nm {
            w_last[s] = last_cat[src];
        }
    }
    Ok(RowDeflation {
        defl,
        w_first,
        w_last,
    })
}

/// Pass 1 over secular roots `jrange`: eigenvalues into `lam_out` (one
/// entry per root) and the panel's running Gu–Eisenstat local-W partial as
/// the return value. One k-length delta column is reused across roots, so
/// transient memory is O(k) regardless of panel width.
pub(crate) fn secular_rows_panel(
    defl: &Deflation,
    jrange: std::ops::Range<usize>,
    lam_out: &mut [f64],
    row_off: usize,
) -> Result<Vec<f64>, DcError> {
    let k = defl.k;
    let mut col = vec![0.0f64; k];
    let mut partial = vec![1.0f64; k];
    for j in jrange.clone() {
        lam_out[j - jrange.start] =
            solve_secular_root(j, &defl.dlamda, &defl.w, defl.rho, &mut col)
                .map_err(|e| DcError::Secular(e.with_offset(row_off)))?;
        let p = local_w_products(&defl.dlamda, &col, k, j, j..j + 1);
        for (acc, f) in partial.iter_mut().zip(&p) {
            *acc *= f;
        }
    }
    Ok(partial)
}

/// Pass 2 over secular roots `jrange`: re-solve each root (the iteration
/// is deterministic, so the deltas are bitwise identical to pass 1),
/// assemble the slot-permuted normalized vector, and dot it with the
/// compressed boundary rows — the 1×k row analogue of the full path's two
/// structured GEMMs. Returns the new `(first, last)` row entries for the
/// panel's columns.
pub(crate) fn row_update_panel(
    rd: &RowDeflation,
    zhat: &[f64],
    jrange: std::ops::Range<usize>,
    row_off: usize,
) -> Result<(Vec<f64>, Vec<f64>), DcError> {
    let defl = &rd.defl;
    let k = defl.k;
    let mut col = vec![0.0f64; k];
    let mut first = Vec::with_capacity(jrange.len());
    let mut last = Vec::with_capacity(jrange.len());
    for j in jrange {
        solve_secular_root(j, &defl.dlamda, &defl.w, defl.rho, &mut col)
            .map_err(|e| DcError::Secular(e.with_offset(row_off)))?;
        assemble_vectors(zhat, &mut col, k, j, j..j + 1, &defl.sec_to_slot);
        let mut fr = 0.0;
        let mut lr = 0.0;
        for (s, &x) in col.iter().enumerate() {
            fr += rd.w_first[s] * x;
            lr += rd.w_last[s] * x;
        }
        if !(fr.is_finite() && lr.is_finite()) {
            return Err(DcError::Breakdown {
                stage: "row-update",
                off: row_off,
            });
        }
        first.push(fr);
        last.push(lr);
    }
    Ok((first, last))
}

/// One whole merge of the values-only path: deflation and the secular
/// solve exactly as [`merge_sequential`](crate::merge::merge_sequential),
/// but the eigenvector phase shrinks to a row update on the two boundary
/// rows. `need_rows = false` (the root merge) skips the row update.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_values(
    d_block: &mut [f64],
    n1: usize,
    beta: f64,
    row_off: usize,
    rows_l: &BoundaryRows,
    rows_r: &BoundaryRows,
    idxq_l: &[usize],
    idxq_r: &[usize],
    need_rows: bool,
) -> Result<(Vec<usize>, BoundaryRows, MergeStat), DcError> {
    let nm = d_block.len();
    let rd = deflate_rows(d_block, n1, beta, row_off, rows_l, rows_r, idxq_l, idxq_r)?;
    let k = rd.defl.k;

    // Deflated columns (slots k..nm) pass through unchanged; secular
    // columns j < k are overwritten below when the parent needs them.
    let mut first_new = rd.w_first.clone();
    let mut last_new = rd.w_last.clone();

    let mut lam = vec![0.0f64; k];
    if k > 0 {
        let partial = secular_rows_panel(&rd.defl, 0..k, &mut lam, row_off)?;
        let zhat = reduce_w(&rd.defl.w, &[partial]);
        if need_rows {
            let (f, l) = row_update_panel(&rd, &zhat, 0..k, row_off)?;
            first_new[..k].copy_from_slice(&f);
            last_new[..k].copy_from_slice(&l);
        }
    }

    let idxq_out = finalize_d(&rd.defl, &lam, d_block);
    Ok((
        idxq_out,
        BoundaryRows {
            first: first_new,
            last: last_new,
        },
        MergeStat { n: nm, n1, k },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_tridiag::SymTridiag;

    /// Leaf boundary rows must equal the first/last rows of the full
    /// leaf eigenvector matrix.
    #[test]
    fn leaf_rows_match_full_leaf() {
        let n = 12;
        let t = SymTridiag::toeplitz121(n);
        // Full leaf solve.
        let mut d_full = t.d.clone();
        let mut e_full = t.e.clone();
        let mut v = vec![0.0f64; n * n];
        for j in 0..n {
            v[j * n + j] = 1.0;
        }
        steqr_mut(
            &mut d_full,
            &mut e_full,
            Some(ZBlock {
                buf: &mut v,
                ld: n,
                nrows: n,
            }),
        )
        .unwrap();
        // Values-only leaf solve.
        let mut d_rows = t.d.clone();
        let rows = solve_leaf_values(&mut d_rows, t.e.clone(), 0).unwrap();
        assert_eq!(d_rows, d_full);
        for j in 0..n {
            assert!((rows.first[j] - v[j * n]).abs() < 1e-14);
            assert!((rows.last[j] - v[j * n + n - 1]).abs() < 1e-14);
        }
    }

    #[test]
    fn single_row_leaf() {
        let mut d = vec![3.0];
        let rows = solve_leaf_values(&mut d, vec![], 0).unwrap();
        assert_eq!(rows.first, vec![1.0]);
        assert_eq!(rows.last, vec![1.0]);
    }
}
