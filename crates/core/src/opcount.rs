//! Operation-count model of the merge phase (the paper's Table I).

use crate::MergeStat;

/// Estimated operation counts for the seven merge steps, in the units of
/// the paper's Table I (element reads/writes for copies, flops for
/// compute).
#[derive(Clone, Copy, Debug, Default)]
pub struct MergeCosts {
    /// Compute the number of deflated eigenvalues — Θ(n).
    pub compute_deflation: u64,
    /// Permute eigenvectors (copy) — Θ(n²).
    pub permute: u64,
    /// Solve the secular equation — Θ(k²).
    pub secular: u64,
    /// Compute stabilization values — Θ(k²).
    pub stabilize: u64,
    /// Permute eigenvectors (copy-back) — Θ(n(n−k)).
    pub copy_back: u64,
    /// Compute eigenvectors X of R — Θ(k²).
    pub compute_vect: u64,
    /// Compute eigenvectors V = Ṽ·X — Θ(nk²).
    pub update_vect: u64,
}

impl MergeCosts {
    pub fn total(&self) -> u64 {
        self.compute_deflation
            + self.permute
            + self.secular
            + self.stabilize
            + self.copy_back
            + self.compute_vect
            + self.update_vect
    }
}

/// Instantiate Table I for one merge: `n`, `n1` and the measured `k`.
pub fn merge_cost_model(stat: &MergeStat) -> MergeCosts {
    let n = stat.n as u64;
    let k = stat.k as u64;
    MergeCosts {
        compute_deflation: n,
        permute: k * n + (n - k) * n, // every column copied once, ≈ n²
        secular: k * k,               // ~iterations · k poles per root, Θ(k²)
        stabilize: k * k,
        copy_back: n * (n - k),
        compute_vect: k * k,
        update_vect: 2 * n * k * k, // two structured GEMMs, ≈ 2nk² flops
    }
}

/// Sum the model over a whole solve and report the no-deflation worst case
/// alongside (the paper's `4n³/3` bound).
pub fn solve_cost_model(stats: &[MergeStat]) -> (u64, u64) {
    let measured: u64 = stats.iter().map(|s| merge_cost_model(s).total()).sum();
    let worst: u64 = stats
        .iter()
        .map(|s| {
            merge_cost_model(&MergeStat {
                n: s.n,
                n1: s.n1,
                k: s.n,
            })
            .total()
        })
        .sum();
    (measured, worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_deflation_is_quadratic() {
        let c = merge_cost_model(&MergeStat {
            n: 1000,
            n1: 500,
            k: 0,
        });
        assert_eq!(c.update_vect, 0);
        assert_eq!(c.secular, 0);
        assert!(
            c.total() < 3_000_000,
            "quadratic when everything deflates: {}",
            c.total()
        );
    }

    #[test]
    fn no_deflation_is_cubic_dominated() {
        let c = merge_cost_model(&MergeStat {
            n: 1000,
            n1: 500,
            k: 1000,
        });
        assert!(
            c.update_vect as f64 / c.total() as f64 > 0.9,
            "GEMM dominates"
        );
        assert_eq!(c.copy_back, 0);
    }

    #[test]
    fn model_monotone_in_k() {
        let lo = merge_cost_model(&MergeStat {
            n: 512,
            n1: 256,
            k: 100,
        })
        .total();
        let hi = merge_cost_model(&MergeStat {
            n: 512,
            n1: 256,
            k: 400,
        })
        .total();
        assert!(hi > lo);
    }

    #[test]
    fn worst_case_bound() {
        let stats = vec![
            MergeStat {
                n: 256,
                n1: 128,
                k: 50,
            },
            MergeStat {
                n: 512,
                n1: 256,
                k: 80,
            },
        ];
        let (measured, worst) = solve_cost_model(&stats);
        assert!(measured <= worst);
    }
}
