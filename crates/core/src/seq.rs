//! The three non-task-flow D&C drivers used as comparators:
//! [`SequentialDc`] (LAPACK `dstedc` shape), [`ForkJoinDc`] (MKL shape:
//! threaded BLAS under a sequential driver), and [`LevelParallelDc`]
//! (ScaLAPACK shape: parallel subproblems with level barriers).

use crate::merge::{apply_final_sort, merge_sequential, MergeScratch, MergeStat};
use crate::tree::PartitionTree;
use crate::values::{merge_values, solve_leaf_values, BoundaryRows};
use crate::{DcError, DcOptions, DcStats, Eigen, SolveMode, TridiagEigensolver};
use dcst_matrix::Matrix;
use dcst_qriter::{steqr_mut, ZBlock};
use dcst_tridiag::SymTridiag;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Everything on the calling thread.
    Sequential,
    /// Sequential control flow; only the update GEMMs use threads
    /// (what LAPACK linked against a threaded BLAS does).
    ForkJoin,
    /// Leaves and the merges of each tree level run in parallel, with a
    /// full barrier between levels; GEMMs also threaded within a merge
    /// when a level has fewer nodes than threads.
    LevelParallel,
}

/// Split `d`, `v`, `ws` into per-node disjoint pieces for the nodes of one
/// level (sorted by offset): `(off, nm, d_block, v_panel, ws_panel)`.
#[allow(clippy::type_complexity)]
fn split_level<'a>(
    mut d: &'a mut [f64],
    mut v: &'a mut [f64],
    mut ws: &'a mut [f64],
    ld: usize,
    nodes: &[(usize, usize)],
) -> Vec<(usize, usize, &'a mut [f64], &'a mut [f64], &'a mut [f64])> {
    let mut out = Vec::with_capacity(nodes.len());
    let mut cur = 0usize;
    for &(off, nm) in nodes {
        debug_assert!(off >= cur);
        let skip = off - cur;
        d = &mut std::mem::take(&mut d)[skip..];
        v = &mut std::mem::take(&mut v)[skip * ld..];
        ws = &mut std::mem::take(&mut ws)[skip * ld..];
        let (dh, dt) = std::mem::take(&mut d).split_at_mut(nm);
        let (vh, vt) = std::mem::take(&mut v).split_at_mut(nm * ld);
        let (wh, wt) = std::mem::take(&mut ws).split_at_mut(nm * ld);
        d = dt;
        v = vt;
        ws = wt;
        out.push((off, nm, dh, vh, wh));
        cur = off + nm;
    }
    out
}

fn solve_common(t: &SymTridiag, opts: &DcOptions, mode: Mode) -> Result<(Eigen, DcStats), DcError> {
    let n = t.n();
    if t.has_non_finite() {
        return Err(DcError::NonFinite);
    }
    if n == 0 {
        return Ok((
            Eigen {
                values: vec![],
                vectors: Matrix::zeros(0, 0),
            },
            DcStats::default(),
        ));
    }

    // Mode dispatch: values-only takes the boundary-row driver; a small
    // enough subset routes to MRRR's Θ(n·k) path; otherwise a subset solve
    // runs the normal sweep below with root-merge pruning.
    let subset = match opts.mode {
        SolveMode::Full => None,
        SolveMode::ValuesOnly => return solve_values_common(t, opts, mode),
        SolveMode::Subset { il, iu } => {
            crate::validate_subset(il, iu, n)?;
            if crate::subset_uses_fallback(il, iu, n) {
                let threads = match mode {
                    Mode::Sequential => 1,
                    Mode::ForkJoin | Mode::LevelParallel => opts.threads.max(1),
                };
                return Ok((
                    crate::subset_fallback(t, il, iu, threads)?,
                    DcStats::default(),
                ));
            }
            Some((il, iu))
        }
    };

    // Scale to unit max-norm (the paper's `Scale T` / `Scale back` tasks).
    let orgnrm = t.max_norm();
    let scale = if orgnrm > 0.0 { 1.0 / orgnrm } else { 1.0 };
    let mut d: Vec<f64> = t.d.iter().map(|x| x * scale).collect();
    let e: Vec<f64> = t.e.iter().map(|x| x * scale).collect();

    let tree = PartitionTree::build(n, opts.min_part);

    // Rank-one tears: subtract |β| from the two diagonal entries at every
    // cut (dlaed0 style), remembering the signed β per internal node.
    let mut betas = vec![0.0f64; tree.nodes.len()];
    for &m in &tree.merges_postorder() {
        let node = &tree.nodes[m];
        let c = node.off + node.n1;
        let beta = e[c - 1];
        betas[m] = beta;
        d[c - 1] -= beta.abs();
        d[c] -= beta.abs();
    }

    let mut v = vec![0.0f64; n * n];
    let mut ws = vec![0.0f64; n * n];
    let mut idxqs: Vec<Option<Vec<usize>>> = vec![None; tree.nodes.len()];
    let mut stats = DcStats::default();

    // --- leaves.
    let leaves = tree.leaves();
    let leaf_geom: Vec<(usize, usize)> = leaves
        .iter()
        .map(|&l| (tree.nodes[l].off, tree.nodes[l].n))
        .collect();
    if mode == Mode::LevelParallel && leaves.len() > 1 {
        // Round-robin the leaves over `threads` workers.
        let nt = opts.threads.max(1);
        let pieces = split_level(&mut d, &mut v, &mut ws, n, &leaf_geom);
        let mut buckets: Vec<Vec<_>> = (0..nt).map(|_| Vec::new()).collect();
        for (i, piece) in pieces.into_iter().enumerate() {
            buckets[i % nt].push(piece);
        }
        // Collected as (block offset, error): the report must be the
        // failure with the lowest offset, not whichever worker lost the
        // race to push last — otherwise the error a caller sees would
        // depend on scheduling order.
        let errs: std::sync::Mutex<Vec<(usize, DcError)>> = std::sync::Mutex::new(Vec::new());
        let eref = &e;
        std::thread::scope(|s| {
            for bucket in buckets {
                let errs = &errs;
                s.spawn(move || {
                    for (off, nm, dh, vh, _wh) in bucket {
                        let eslice: Vec<f64> = eref[off..off + nm - 1].to_vec();
                        if let Err(err) = solve_leaf(dh, eslice, vh, n, off, nm) {
                            errs.lock().unwrap().push((off, err));
                            return;
                        }
                    }
                });
            }
        });
        // Round-robin buckets keep each bucket's offsets ascending and a
        // bucket stops at its first failure, so the bucket holding the
        // globally lowest failing block always reports it: the min here is
        // schedule-independent.
        if let Some((_, err)) = errs
            .into_inner()
            .unwrap()
            .into_iter()
            .min_by_key(|(off, _)| *off)
        {
            return Err(err);
        }
    } else {
        for &(off, nm) in &leaf_geom {
            let eslice: Vec<f64> = e[off..off + nm - 1].to_vec();
            let (dh, vh) = (&mut d[off..off + nm], &mut v[off * n..(off + nm) * n]);
            solve_leaf(dh, eslice, vh, n, off, nm)?;
        }
    }
    for &l in &leaves {
        idxqs[l] = Some((0..tree.nodes[l].n).collect());
    }

    // --- merges.
    let gemm_threads = match mode {
        Mode::Sequential => 1,
        Mode::ForkJoin | Mode::LevelParallel => opts.threads.max(1),
    };
    // One scratch per executing thread: the sequential drivers reuse this
    // single instance across the whole postorder sweep (each buffer
    // allocates once, at root size); the level-parallel driver recycles
    // instances through a pool so buffers survive across levels.
    let mut scratch = MergeScratch::default();
    match mode {
        Mode::Sequential | Mode::ForkJoin => {
            for &m in &tree.merges_postorder() {
                let node = &tree.nodes[m];
                let (off, nm, n1) = (node.off, node.n, node.n1);
                let (l, r) = node.children.unwrap();
                let idxq_l = idxqs[l].take().unwrap();
                let idxq_r = idxqs[r].take().unwrap();
                let (idxq, stat) = merge_sequential(
                    &mut d[off..off + nm],
                    &mut v[off * n..(off + nm) * n],
                    &mut ws[off * n..(off + nm) * n],
                    n,
                    off,
                    nm,
                    n1,
                    betas[m],
                    &idxq_l,
                    &idxq_r,
                    gemm_threads,
                    if m == tree.root { subset } else { None },
                    &mut scratch,
                )?;
                idxqs[m] = Some(idxq);
                stats.merges.push(stat);
            }
        }
        Mode::LevelParallel => {
            let scratch_pool: std::sync::Mutex<Vec<MergeScratch>> =
                std::sync::Mutex::new(Vec::new());
            for level in tree.merge_levels() {
                let geom: Vec<(usize, usize)> = level
                    .iter()
                    .map(|&m| (tree.nodes[m].off, tree.nodes[m].n))
                    .collect();
                let per_merge_threads = (opts.threads.max(1) / level.len().max(1)).max(1);
                let results: std::sync::Mutex<Vec<(usize, Vec<usize>, MergeStat)>> =
                    std::sync::Mutex::new(Vec::new());
                let errs: std::sync::Mutex<Vec<(usize, DcError)>> =
                    std::sync::Mutex::new(Vec::new());
                {
                    let pieces = split_level(&mut d, &mut v, &mut ws, n, &geom);
                    std::thread::scope(|s| {
                        for ((off, nm, dh, vh, wh), &m) in pieces.into_iter().zip(&level) {
                            let node = &tree.nodes[m];
                            let n1 = node.n1;
                            let (lc, rc) = node.children.unwrap();
                            let idxq_l = idxqs[lc].take().unwrap();
                            let idxq_r = idxqs[rc].take().unwrap();
                            let beta = betas[m];
                            let node_subset = if m == tree.root { subset } else { None };
                            let results = &results;
                            let errs = &errs;
                            let scratch_pool = &scratch_pool;
                            s.spawn(move || {
                                let mut scratch =
                                    scratch_pool.lock().unwrap().pop().unwrap_or_default();
                                match merge_sequential(
                                    dh,
                                    vh,
                                    wh,
                                    n,
                                    off,
                                    nm,
                                    n1,
                                    beta,
                                    &idxq_l,
                                    &idxq_r,
                                    per_merge_threads,
                                    node_subset,
                                    &mut scratch,
                                ) {
                                    Ok((idxq, stat)) => {
                                        results.lock().unwrap().push((m, idxq, stat))
                                    }
                                    Err(err) => errs.lock().unwrap().push((off, err)),
                                }
                                scratch_pool.lock().unwrap().push(scratch);
                            });
                        }
                    });
                }
                // Every merge of the level ran to completion (one spawn
                // each), so all failures were pushed: the min by offset is
                // schedule-independent.
                if let Some((_, err)) = errs
                    .into_inner()
                    .unwrap()
                    .into_iter()
                    .min_by_key(|(off, _)| *off)
                {
                    return Err(err);
                }
                for (m, idxq, stat) in results.into_inner().unwrap() {
                    idxqs[m] = Some(idxq);
                    stats.merges.push(stat);
                }
            }
        }
    }

    // --- final sort + scale back.
    let idxq_root = idxqs[tree.root].take().unwrap();
    if let Some((il, iu)) = subset {
        // No full column sort: gather just the k requested columns (and
        // their values) straight out of physical order.
        let ksub = iu - il + 1;
        let rescale = if scale != 1.0 { orgnrm } else { 1.0 };
        let mut values = Vec::with_capacity(ksub);
        let mut vsub = vec![0.0f64; n * ksub];
        for (c, p) in (il..=iu).enumerate() {
            let src = idxq_root[p];
            values.push(d[src] * rescale);
            vsub[c * n..(c + 1) * n].copy_from_slice(&v[src * n..(src + 1) * n]);
        }
        return Ok((
            Eigen {
                values,
                vectors: Matrix::from_vec(n, ksub, vsub),
            },
            stats,
        ));
    }
    apply_final_sort(&mut d, &mut v, &mut ws, n, &idxq_root, &mut scratch);
    if scale != 1.0 {
        for x in &mut d {
            *x *= orgnrm;
        }
    }
    Ok((
        Eigen {
            values: d,
            vectors: Matrix::from_vec(n, n, v),
        },
        stats,
    ))
}

/// Split `d` into per-node disjoint pieces for the nodes of one level
/// (sorted by offset): `(off, nm, d_block)`. The d-only analogue of
/// [`split_level`] for the values-only path, which has no V/workspace.
fn split_d<'a>(
    mut d: &'a mut [f64],
    nodes: &[(usize, usize)],
) -> Vec<(usize, usize, &'a mut [f64])> {
    let mut out = Vec::with_capacity(nodes.len());
    let mut cur = 0usize;
    for &(off, nm) in nodes {
        debug_assert!(off >= cur);
        d = &mut std::mem::take(&mut d)[off - cur..];
        let (dh, dt) = std::mem::take(&mut d).split_at_mut(nm);
        d = dt;
        out.push((off, nm, dh));
        cur = off + nm;
    }
    out
}

/// The values-only driver shared by the three comparator shapes: same
/// scaling, tears, and tree sweep as [`solve_common`], but leaves produce
/// [`BoundaryRows`] instead of identity blocks and merges run
/// [`merge_values`] — no n×n buffer is ever allocated.
fn solve_values_common(
    t: &SymTridiag,
    opts: &DcOptions,
    mode: Mode,
) -> Result<(Eigen, DcStats), DcError> {
    let n = t.n();
    let orgnrm = t.max_norm();
    let scale = if orgnrm > 0.0 { 1.0 / orgnrm } else { 1.0 };
    let mut d: Vec<f64> = t.d.iter().map(|x| x * scale).collect();
    let e: Vec<f64> = t.e.iter().map(|x| x * scale).collect();

    let tree = PartitionTree::build(n, opts.min_part);
    let mut betas = vec![0.0f64; tree.nodes.len()];
    for &m in &tree.merges_postorder() {
        let node = &tree.nodes[m];
        let c = node.off + node.n1;
        let beta = e[c - 1];
        betas[m] = beta;
        d[c - 1] -= beta.abs();
        d[c] -= beta.abs();
    }

    let mut rows: Vec<Option<BoundaryRows>> = vec![None; tree.nodes.len()];
    let mut idxqs: Vec<Option<Vec<usize>>> = vec![None; tree.nodes.len()];
    let mut stats = DcStats::default();

    // --- leaves.
    let leaves = tree.leaves();
    let leaf_geom: Vec<(usize, usize)> = leaves
        .iter()
        .map(|&l| (tree.nodes[l].off, tree.nodes[l].n))
        .collect();
    if mode == Mode::LevelParallel && leaves.len() > 1 {
        let nt = opts.threads.max(1);
        let pieces = split_d(&mut d, &leaf_geom);
        let mut buckets: Vec<Vec<_>> = (0..nt).map(|_| Vec::new()).collect();
        for (i, piece) in pieces.into_iter().enumerate() {
            buckets[i % nt].push((leaves[i], piece));
        }
        let results: std::sync::Mutex<Vec<(usize, BoundaryRows)>> =
            std::sync::Mutex::new(Vec::new());
        let errs: std::sync::Mutex<Vec<(usize, DcError)>> = std::sync::Mutex::new(Vec::new());
        let eref = &e;
        std::thread::scope(|s| {
            for bucket in buckets {
                let results = &results;
                let errs = &errs;
                s.spawn(move || {
                    for (l, (off, nm, dh)) in bucket {
                        let eslice: Vec<f64> = eref[off..off + nm - 1].to_vec();
                        match solve_leaf_values(dh, eslice, off) {
                            Ok(br) => results.lock().unwrap().push((l, br)),
                            Err(err) => {
                                errs.lock().unwrap().push((off, err));
                                return;
                            }
                        }
                    }
                });
            }
        });
        // As in solve_common: round-robin buckets stop at their first
        // failure, so the min-offset error is schedule-independent.
        if let Some((_, err)) = errs
            .into_inner()
            .unwrap()
            .into_iter()
            .min_by_key(|(off, _)| *off)
        {
            return Err(err);
        }
        for (l, br) in results.into_inner().unwrap() {
            rows[l] = Some(br);
        }
    } else {
        for (&l, &(off, nm)) in leaves.iter().zip(&leaf_geom) {
            let eslice: Vec<f64> = e[off..off + nm - 1].to_vec();
            rows[l] = Some(solve_leaf_values(&mut d[off..off + nm], eslice, off)?);
        }
    }
    for &l in &leaves {
        idxqs[l] = Some((0..tree.nodes[l].n).collect());
    }

    // --- merges.
    match mode {
        Mode::Sequential | Mode::ForkJoin => {
            for &m in &tree.merges_postorder() {
                let node = &tree.nodes[m];
                let (off, nm, n1) = (node.off, node.n, node.n1);
                let (l, r) = node.children.unwrap();
                let rows_l = rows[l].take().unwrap();
                let rows_r = rows[r].take().unwrap();
                let idxq_l = idxqs[l].take().unwrap();
                let idxq_r = idxqs[r].take().unwrap();
                let (idxq, br, stat) = merge_values(
                    &mut d[off..off + nm],
                    n1,
                    betas[m],
                    off,
                    &rows_l,
                    &rows_r,
                    &idxq_l,
                    &idxq_r,
                    m != tree.root,
                )?;
                rows[m] = Some(br);
                idxqs[m] = Some(idxq);
                stats.merges.push(stat);
            }
        }
        Mode::LevelParallel => {
            for level in tree.merge_levels() {
                let geom: Vec<(usize, usize)> = level
                    .iter()
                    .map(|&m| (tree.nodes[m].off, tree.nodes[m].n))
                    .collect();
                type MergeOut = (usize, Vec<usize>, BoundaryRows, MergeStat);
                let results: std::sync::Mutex<Vec<MergeOut>> = std::sync::Mutex::new(Vec::new());
                let errs: std::sync::Mutex<Vec<(usize, DcError)>> =
                    std::sync::Mutex::new(Vec::new());
                {
                    let pieces = split_d(&mut d, &geom);
                    std::thread::scope(|s| {
                        for ((off, _nm, dh), &m) in pieces.into_iter().zip(&level) {
                            let node = &tree.nodes[m];
                            let n1 = node.n1;
                            let (lc, rc) = node.children.unwrap();
                            let rows_l = rows[lc].take().unwrap();
                            let rows_r = rows[rc].take().unwrap();
                            let idxq_l = idxqs[lc].take().unwrap();
                            let idxq_r = idxqs[rc].take().unwrap();
                            let beta = betas[m];
                            let need_rows = m != tree.root;
                            let results = &results;
                            let errs = &errs;
                            s.spawn(move || {
                                match merge_values(
                                    dh, n1, beta, off, &rows_l, &rows_r, &idxq_l, &idxq_r,
                                    need_rows,
                                ) {
                                    Ok((idxq, br, stat)) => {
                                        results.lock().unwrap().push((m, idxq, br, stat))
                                    }
                                    Err(err) => errs.lock().unwrap().push((off, err)),
                                }
                            });
                        }
                    });
                }
                if let Some((_, err)) = errs
                    .into_inner()
                    .unwrap()
                    .into_iter()
                    .min_by_key(|(off, _)| *off)
                {
                    return Err(err);
                }
                for (m, idxq, br, stat) in results.into_inner().unwrap() {
                    idxqs[m] = Some(idxq);
                    rows[m] = Some(br);
                    stats.merges.push(stat);
                }
            }
        }
    }

    // --- final sort + scale back (values only: a gather, not a column
    // permutation).
    let idxq_root = idxqs[tree.root].take().unwrap();
    let rescale = if scale != 1.0 { orgnrm } else { 1.0 };
    let values: Vec<f64> = idxq_root.iter().map(|&s| d[s] * rescale).collect();
    Ok((
        Eigen {
            values,
            vectors: Matrix::zeros(n, 0),
        },
        stats,
    ))
}

fn solve_leaf(
    d: &mut [f64],
    mut e: Vec<f64>,
    v_panel: &mut [f64],
    ld: usize,
    off: usize,
    nm: usize,
) -> Result<(), DcError> {
    // Identity block, then accumulate rotations into it.
    for j in 0..nm {
        v_panel[j * ld + off + j] = 1.0;
    }
    let z = ZBlock {
        buf: &mut v_panel[off..],
        ld,
        nrows: nm,
    };
    steqr_mut(d, &mut e, Some(z)).map_err(|err| DcError::Leaf(err.with_offset(off)))?;
    Ok(())
}

macro_rules! driver {
    ($name:ident, $mode:expr, $label:literal, $doc:literal) => {
        #[doc = $doc]
        pub struct $name {
            opts: DcOptions,
        }

        impl $name {
            pub fn new(opts: DcOptions) -> Self {
                Self { opts }
            }

            /// Solve and also return per-merge statistics.
            pub fn solve_with_stats(&self, t: &SymTridiag) -> Result<(Eigen, DcStats), DcError> {
                solve_common(t, &self.opts, $mode)
            }
        }

        impl TridiagEigensolver for $name {
            fn solve(&self, t: &SymTridiag) -> Result<Eigen, DcError> {
                solve_common(t, &self.opts, $mode).map(|(e, _)| e)
            }

            fn name(&self) -> &'static str {
                $label
            }
        }
    };
}

driver!(
    SequentialDc,
    Mode::Sequential,
    "dc-sequential",
    "Pure sequential D&C — the LAPACK `dstedc` shape."
);
driver!(
    ForkJoinDc,
    Mode::ForkJoin,
    "dc-forkjoin",
    "Sequential D&C with multithreaded update GEMMs — the \"LAPACK + threaded MKL BLAS\" comparator of the paper's Figure 6."
);
driver!(
    LevelParallelDc,
    Mode::LevelParallel,
    "dc-levelparallel",
    "Level-parallel D&C with barriers between tree levels — the ScaLAPACK `pdstedc` comparator of the paper's Figure 7."
);

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::{orthogonality_error, residual_error};

    fn check(t: &SymTridiag, eig: &Eigen, tol: f64) {
        let n = t.n();
        assert!(eig.values.windows(2).all(|w| w[0] <= w[1]), "sorted");
        let orth = orthogonality_error(&eig.vectors);
        assert!(orth < tol, "orthogonality {orth}");
        let res = residual_error(
            n,
            |x, y| t.matvec(x, y),
            &eig.values,
            &eig.vectors,
            t.max_norm(),
        );
        assert!(res < tol, "residual {res}");
    }

    fn opts(min_part: usize, threads: usize) -> DcOptions {
        DcOptions {
            min_part,
            nb: 16,
            threads,
            extra_workspace: false,
            use_gatherv: true,
            mode: SolveMode::Full,
        }
    }

    #[test]
    fn sequential_solves_toeplitz() {
        let n = 120;
        let t = SymTridiag::toeplitz121(n);
        let eig = SequentialDc::new(opts(16, 1)).solve(&t).unwrap();
        check(&t, &eig, 1e-13);
        for (k, &l) in eig.values.iter().enumerate() {
            let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - want).abs() < 1e-12, "eig {k}: {l} vs {want}");
        }
    }

    #[test]
    fn matches_qr_iteration() {
        let t = dcst_tridiag::gen::MatrixType::Type6.generate(90, 17);
        let eig = SequentialDc::new(opts(20, 1)).solve(&t).unwrap();
        let lam_ref = dcst_qriter::eigenvalues(&t).unwrap();
        for (a, b) in eig.values.iter().zip(&lam_ref) {
            assert!((a - b).abs() < 1e-12 * t.max_norm(), "{a} vs {b}");
        }
        check(&t, &eig, 1e-13);
    }

    #[test]
    fn all_matrix_types_small() {
        for ty in dcst_tridiag::gen::MatrixType::ALL {
            let t = ty.generate(70, 5);
            let eig = SequentialDc::new(opts(12, 1)).solve(&t).unwrap();
            check(&t, &eig, 1e-12);
        }
    }

    #[test]
    fn forkjoin_matches_sequential() {
        let t = dcst_tridiag::gen::MatrixType::Type4.generate(100, 9);
        let a = SequentialDc::new(opts(16, 1)).solve(&t).unwrap();
        let b = ForkJoinDc::new(opts(16, 2)).solve(&t).unwrap();
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-13);
        }
        check(&t, &b, 1e-13);
    }

    #[test]
    fn levelparallel_matches_sequential() {
        let t = dcst_tridiag::gen::MatrixType::Type3.generate(100, 9);
        let a = SequentialDc::new(opts(16, 1)).solve(&t).unwrap();
        let b = LevelParallelDc::new(opts(16, 2)).solve(&t).unwrap();
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-13);
        }
        check(&t, &b, 1e-13);
    }

    #[test]
    fn deflation_statistics_match_matrix_character() {
        // Type 2 (massive clustering) must deflate far more than type 4.
        let t2 = dcst_tridiag::gen::MatrixType::Type2.generate(128, 3);
        let t4 = dcst_tridiag::gen::MatrixType::Type4.generate(128, 3);
        let (_, s2) = SequentialDc::new(opts(16, 1))
            .solve_with_stats(&t2)
            .unwrap();
        let (_, s4) = SequentialDc::new(opts(16, 1))
            .solve_with_stats(&t4)
            .unwrap();
        assert!(
            s2.overall_deflation() > s4.overall_deflation() + 0.2,
            "type2 {} vs type4 {}",
            s2.overall_deflation(),
            s4.overall_deflation()
        );
    }

    #[test]
    fn single_leaf_problem() {
        let t = SymTridiag::toeplitz121(10);
        let eig = SequentialDc::new(opts(32, 1)).solve(&t).unwrap();
        check(&t, &eig, 1e-13);
    }

    #[test]
    fn rejects_non_finite() {
        let t = SymTridiag::new(vec![1.0, f64::NAN, 0.0], vec![0.1, 0.1]);
        assert!(matches!(
            SequentialDc::new(opts(4, 1)).solve(&t),
            Err(DcError::NonFinite)
        ));
    }

    #[test]
    fn empty_matrix() {
        let t = SymTridiag::new(vec![], vec![]);
        let eig = SequentialDc::new(DcOptions::default()).solve(&t).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn scaling_extreme_norm() {
        let t = SymTridiag::new(
            vec![1e200, 2e200, -1e200, 5e199],
            vec![1e199, -2e199, 3e198],
        );
        let eig = SequentialDc::new(opts(2, 1)).solve(&t).unwrap();
        check(&t, &eig, 1e-12);
    }
}
