//! The rank-structured eigenvector update: per-merge planning, the
//! secular-order gather of `Q`, and the structured multiply.
//!
//! The dense `UpdateVect` computes `V = Q·X` with two GEMMs exploiting the
//! Top/Full/Bottom column support. This module replaces those GEMMs — when
//! a cheap rank probe says it pays — by a tiled multiply against the
//! ACA-compressed secular matrix ([`dcst_secular::structured`]): dense
//! diagonal tiles keep the packed GEMM, off-diagonal tiles run two skinny
//! GEMMs through their `U·Vᵀ` factors. The dense path remains the pinned
//! oracle; [`plan_update`] returns `None` (→ dense) whenever the estimated
//! or the measured structured cost is not strictly cheaper, or when
//! `DCST_FORCE_DENSE=1` / [`UpdatePolicy::ForceDense`] pins it.
//!
//! Layout note: the workspace stores `X` with rows slot-permuted, so the
//! compressed operands are built on the secular-ordered *view* and the
//! matching columns of the compressed workspace `Q` are gathered (top rows
//! of the Top∪Full slots, bottom rows of the Full∪Bottom slots) into
//! dense panels once per merge — O(nm·k) traffic, the same order as the
//! existing copy bucket.

use crate::DcError;
use dcst_matrix::lowrank::{gemm_structured, structured_basis, StructuredMatrix, TileKind};
use dcst_matrix::{update_policy, UpdatePolicy};
use dcst_secular::{
    compress_secular_x, estimate_offdiag_rank, leaf_size, rank_tolerance, Deflation, StructuredX,
};
use std::ops::Range;
use std::sync::OnceLock;

/// Smallest merge the auto policy will rank-probe: below this the dense
/// GEMMs are already cache-resident and tiling overhead can only lose.
const MIN_K_AUTO: usize = 96;
/// Smallest merge the forced-structured policy will tile, so the accuracy
/// gates exercise compressed tiles even on toy problem sizes.
const MIN_K_FORCED: usize = 16;

/// One merge's compressed update operands, shared by the sequential driver
/// and the task-flow `UpdateVect` tasks.
pub(crate) struct StructuredUpdate {
    /// Compressed top/bottom operands and their gather maps.
    pub sx: StructuredX,
    /// Gathered `Q` for the top product: `n1 × sx.top.rows`, ld `n1`.
    qt: Vec<f64>,
    /// Gathered `Q` for the bottom product: `n2 × sx.bot.rows`, ld `n2`.
    qb: Vec<f64>,
    /// Per-tile `Q·U` basis products (top operand then bottom), filled by
    /// [`compute_basis_chunk`](Self::compute_basis_chunk) before any panel
    /// multiply runs.
    qu: Vec<OnceLock<Vec<f64>>>,
    n1: usize,
    n2: usize,
    /// Dense-oracle flop count this plan replaces (diagnostics + planner
    /// tests; production reads go through the metrics counters).
    #[allow(dead_code)]
    pub flops_dense: u64,
    /// Structured flop count (basis products included).
    #[allow(dead_code)]
    pub flops_structured: u64,
}

/// Dense-path flop count of one merge's eigenvector update.
pub(crate) fn dense_update_flops(defl: &Deflation, nm: usize, n1: usize) -> u64 {
    let k = defl.k as u64;
    let (c1, c2, c3) = (
        defl.ctot[0] as u64,
        defl.ctot[1] as u64,
        defl.ctot[2] as u64,
    );
    let n2 = (nm - n1) as u64;
    2 * (n1 as u64) * k * (c1 + c2) + 2 * n2 * k * (c2 + c3)
}

/// Decide the update path for one merge and, when structured wins, build
/// the compressed operands and gather `Q`.
///
/// * `ws_block` starts at `(off, off)` of the compressed workspace (all
///   `k` non-deflated columns live), leading dimension `ld`;
/// * `x` is the `k × k` secular eigenvector panel (ld `xld`);
/// * `n_global` scales the accuracy-budget tolerance.
///
/// Returns `None` for the dense path. The auto policy goes dense unless
/// the sampled off-diagonal rank satisfies `2·rank ≤ k/2` **and** the
/// compressed operands' measured flop count beats the dense oracle's;
/// forced-structured skips the probe but still requires `k` large enough
/// to partition.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_update(
    ws_block: &[f64],
    x: &[f64],
    xld: usize,
    ld: usize,
    nm: usize,
    n1: usize,
    defl: &Deflation,
    n_global: usize,
) -> Option<StructuredUpdate> {
    let k = defl.k;
    let policy = update_policy();
    let force = policy == UpdatePolicy::ForceStructured;
    let min_k = if force { MIN_K_FORCED } else { MIN_K_AUTO };
    if policy == UpdatePolicy::ForceDense || k < min_k {
        return None;
    }
    let tol = rank_tolerance(n_global, k);
    if !force {
        // Sampled-ACA probe of the level-1 off-diagonal block: the ISSUE's
        // switch rule — dense whenever the estimated rank doubled exceeds
        // the block size k/2.
        let est = estimate_offdiag_rank(x, xld, k, &defl.sec_to_slot, tol);
        if 2 * est > k / 2 {
            return None;
        }
    }
    let sx = compress_secular_x(x, xld, defl, tol, leaf_size(k, force));
    let n2 = nm - n1;
    let flops_dense = dense_update_flops(defl, nm, n1);
    let flops_structured = sx.multiply_flops(n1, n2);
    if !force && flops_structured >= flops_dense {
        // Compression did not pay (ranks came out high): dense oracle.
        return None;
    }
    // Gather Q in secular row order. Top operand rows are Top∪Full slots
    // (stored rows 0..n1 valid), bottom rows are Full∪Bottom slots (rows
    // n1..nm valid) — exactly each slot's support, so no zero-fill.
    let mut qt = vec![0.0f64; n1 * sx.top_slots.len()];
    for (a, &slot) in sx.top_slots.iter().enumerate() {
        qt[a * n1..(a + 1) * n1].copy_from_slice(&ws_block[slot * ld..slot * ld + n1]);
    }
    let mut qb = vec![0.0f64; n2 * sx.bot_slots.len()];
    for (a, &slot) in sx.bot_slots.iter().enumerate() {
        qb[a * n2..(a + 1) * n2].copy_from_slice(&ws_block[slot * ld + n1..slot * ld + nm]);
    }
    let qu = (0..sx.top.tiles.len() + sx.bot.tiles.len())
        .map(|_| OnceLock::new())
        .collect();
    dcst_matrix::metrics::add("update.structured_merges", 1);
    dcst_matrix::metrics::add("update.structured_blocks", sx.compressed_tiles() as u64);
    dcst_matrix::metrics::add("update.structured_rank", sx.total_rank() as u64);
    dcst_matrix::metrics::add(
        "update.flops_saved",
        flops_dense.saturating_sub(flops_structured),
    );
    Some(StructuredUpdate {
        sx,
        qt,
        qb,
        qu,
        n1,
        n2,
        flops_dense,
        flops_structured,
    })
}

impl StructuredUpdate {
    /// Total basis-product chunks (one per tile across both operands);
    /// callers fan these out round-robin over a fixed task count.
    #[allow(dead_code)] // read by the planner tests
    pub(crate) fn num_tiles(&self) -> usize {
        self.qu.len()
    }

    /// Compute the `Q·U` basis products for tiles `t ≡ chunk (mod
    /// nchunks)`. Chunks are disjoint, so concurrent calls with distinct
    /// `chunk` values never contend on a cell.
    pub(crate) fn compute_basis_chunk(&self, chunk: usize, nchunks: usize, threads: usize) {
        let ntop = self.sx.top.tiles.len();
        let (mut calls, mut flops) = (0u64, 0u64);
        for t in (chunk..self.qu.len()).step_by(nchunks.max(1)) {
            let (m, q, tile) = if t < ntop {
                (self.n1, &self.qt, &self.sx.top.tiles[t])
            } else {
                (self.n2, &self.qb, &self.sx.bot.tiles[t - ntop])
            };
            if let TileKind::LowRank(lr) = &tile.kind {
                if lr.rank > 0 && m > 0 {
                    calls += 1;
                    flops += 2 * (m * (tile.r1 - tile.r0) * lr.rank) as u64;
                }
            }
            let qu = structured_basis(threads, m, q, m.max(1), tile);
            let _ = self.qu[t].set(qu);
        }
        if calls > 0 {
            dcst_matrix::metrics::add("gemm.calls", calls);
            dcst_matrix::metrics::add("gemm.flops", flops);
        }
    }

    /// Compute every basis product (sequential driver).
    pub(crate) fn compute_all_bases(&self, threads: usize) {
        self.compute_basis_chunk(0, 1, threads);
    }

    /// Flops of the panel multiplies for secular columns `jrange`
    /// (excluding the basis products, which are accounted per tile when
    /// computed).
    fn panel_flops(&self, jrange: &Range<usize>) -> u64 {
        let per = |sm: &StructuredMatrix, m: usize| -> u64 {
            sm.tiles
                .iter()
                .map(|t| {
                    let jc = t.c1.min(jrange.end).saturating_sub(t.c0.max(jrange.start)) as u64;
                    let inner = match &t.kind {
                        TileKind::Dense(_) => (t.r1 - t.r0) as u64,
                        TileKind::LowRank(lr) => lr.rank as u64,
                    };
                    2 * m as u64 * inner * jc
                })
                .sum()
        };
        per(&self.sx.top, self.n1) + per(&self.sx.bot, self.n2)
    }

    /// The structured `UpdateVect` for secular columns `jrange`: same
    /// contract, failpoints and finite scan as the dense
    /// `update_vect_panel`, with both row strips multiplied through the
    /// compressed operands. All basis products must already be computed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn update_panel(
        &self,
        v_cols: &mut [f64],
        ld: usize,
        row_off: usize,
        nm: usize,
        jrange: Range<usize>,
        threads: usize,
    ) -> Result<(), DcError> {
        let ncols = jrange.len();
        if ncols == 0 {
            return Ok(());
        }
        if dcst_matrix::failpoints::fire("gemm") {
            return Err(DcError::Breakdown {
                stage: "gemm",
                off: row_off,
            });
        }
        let (n1, n2) = (self.n1, self.n2);
        let ntop = self.sx.top.tiles.len();
        let qu_refs: Vec<&[f64]> = self
            .qu
            .iter()
            .map(|c| c.get().expect("basis products computed").as_slice())
            .collect();
        if n1 > 0 {
            gemm_structured(
                threads,
                n1,
                &self.qt,
                n1,
                &self.sx.top,
                &qu_refs[..ntop],
                jrange.clone(),
                &mut v_cols[row_off..],
                ld,
            );
        }
        if n2 > 0 {
            gemm_structured(
                threads,
                n2,
                &self.qb,
                n2,
                &self.sx.bot,
                &qu_refs[ntop..],
                jrange.clone(),
                &mut v_cols[row_off + n1..],
                ld,
            );
        }
        dcst_matrix::metrics::add("gemm.calls", 2);
        dcst_matrix::metrics::add("gemm.flops", self.panel_flops(&jrange));
        dcst_matrix::failpoints::poke_nan("nan-gemm", &mut v_cols[row_off..]);
        for j in 0..ncols {
            let col = &v_cols[j * ld + row_off..j * ld + row_off + nm];
            if !col.iter().all(|x| x.is_finite()) {
                return Err(DcError::Breakdown {
                    stage: "update-vect",
                    off: row_off,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::set_update_policy;
    use dcst_secular::{
        assemble_vectors, local_w_products, reduce_w, solve_secular_root, SlotType,
    };

    /// An undeflated all-`Full` merge of size `k` with identity slot maps:
    /// interlaced poles, so the secular matrix compresses well.
    fn synthetic_merge(k: usize) -> (Deflation, Vec<f64>) {
        let d: Vec<f64> = (0..k)
            .map(|i| i as f64 + 0.3 * ((i * 7 % 5) as f64) / 5.0)
            .collect();
        let mut z: Vec<f64> = (0..k).map(|i| 0.5 + ((i * 13 % 7) as f64) / 7.0).collect();
        let nrm: f64 = z.iter().map(|x| x * x).sum::<f64>().sqrt();
        z.iter_mut().for_each(|x| *x /= nrm);
        let mut x = vec![0.0; k * k];
        for j in 0..k {
            solve_secular_root(j, &d, &z, 1.0, &mut x[j * k..(j + 1) * k]).unwrap();
        }
        let zhat = reduce_w(&z, &[local_w_products(&d, &x, k, 0, 0..k)]);
        let ident: Vec<usize> = (0..k).collect();
        assemble_vectors(&zhat, &mut x, k, 0, 0..k, &ident);
        let defl = Deflation {
            k,
            n: k,
            n1: k / 2,
            rho: 1.0,
            dlamda: d,
            w: zhat,
            d_deflated: vec![],
            perm: ident.clone(),
            slot_type: vec![SlotType::Full; k],
            sec_to_slot: ident,
            givens: vec![],
            ctot: [0, k, 0, 0],
        };
        (defl, x)
    }

    // One test body: the policy knob is process-global, so the three
    // planner scenarios must not interleave with each other under the
    // parallel test runner.
    #[test]
    fn planner_policy_decisions() {
        // Auto beats the dense oracle on an interlaced merge.
        let k = 128;
        let (defl, x) = synthetic_merge(k);
        let ws = vec![1.0; k * k];
        set_update_policy(UpdatePolicy::Auto);
        let su = plan_update(&ws, &x, k, k, k, k / 2, &defl, k)
            .expect("auto policy must take the structured path on interlaced poles");
        assert!(su.num_tiles() > 0);
        assert!(
            su.flops_structured < su.flops_dense,
            "structured {} !< dense {}",
            su.flops_structured,
            su.flops_dense
        );
        assert_eq!(su.flops_dense, dense_update_flops(&defl, k, k / 2));

        // ForceDense pins the oracle.
        set_update_policy(UpdatePolicy::ForceDense);
        assert!(plan_update(&ws, &x, k, k, k, k / 2, &defl, k).is_none());
        set_update_policy(UpdatePolicy::Auto);

        // Small merges stay dense under auto.
        let k = 48;
        let (defl, x) = synthetic_merge(k);
        let ws = vec![1.0; k * k];
        assert!(
            plan_update(&ws, &x, k, k, k, k / 2, &defl, k).is_none(),
            "k < MIN_K_AUTO must not tile"
        );
    }
}
