//! The recursive partition tree (the paper's Figure 1).

/// One node of the partition tree: the half-open index range
/// `[off, off + n)` of the tridiagonal it covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    pub off: usize,
    pub n: usize,
    /// Size of the left child (the cut is at `off + n1`); 0 for leaves.
    pub n1: usize,
    /// Child node ids in [`PartitionTree::nodes`]; `None` for leaves.
    pub children: Option<(usize, usize)>,
    /// Depth from the leaves upward (leaves are 0) — merges at equal
    /// height are independent.
    pub height: usize,
}

impl TreeNode {
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// The full partition of an `n`-sized problem into leaves of size at most
/// `min_part`, split by halving (as `dlaed0` does).
#[derive(Clone, Debug)]
pub struct PartitionTree {
    pub nodes: Vec<TreeNode>,
    pub root: usize,
    pub n: usize,
}

impl PartitionTree {
    /// Build the tree. `min_part` is clamped to at least 2.
    pub fn build(n: usize, min_part: usize) -> Self {
        let min_part = min_part.max(2);
        let mut nodes = Vec::new();
        let root = Self::build_rec(&mut nodes, 0, n, min_part);
        PartitionTree { nodes, root, n }
    }

    fn build_rec(nodes: &mut Vec<TreeNode>, off: usize, n: usize, min_part: usize) -> usize {
        if n <= min_part {
            nodes.push(TreeNode {
                off,
                n,
                n1: 0,
                children: None,
                height: 0,
            });
            return nodes.len() - 1;
        }
        let n1 = n / 2;
        let left = Self::build_rec(nodes, off, n1, min_part);
        let right = Self::build_rec(nodes, off + n1, n - n1, min_part);
        let height = nodes[left].height.max(nodes[right].height) + 1;
        nodes.push(TreeNode {
            off,
            n,
            n1,
            children: Some((left, right)),
            height,
        });
        nodes.len() - 1
    }

    /// Leaf node ids, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .collect()
    }

    /// Internal node ids in post order (children before parents) — a valid
    /// sequential merge order.
    pub fn merges_postorder(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].is_leaf())
            .collect()
        // `build_rec` pushes children before parents, so index order IS
        // post order.
    }

    /// Internal nodes grouped by height (1 = merges of leaves), each group
    /// independent — the level structure `LevelParallelDc` barriers on.
    pub fn merge_levels(&self) -> Vec<Vec<usize>> {
        let maxh = self.nodes[self.root].height;
        let mut levels = vec![Vec::new(); maxh];
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.is_leaf() {
                levels[node.height - 1].push(i);
            }
        }
        levels
    }

    /// Cut positions: global indices `c` such that the rank-one tear
    /// couples rows `c-1` and `c` (one per internal node).
    pub fn cuts(&self) -> Vec<usize> {
        self.merges_postorder()
            .iter()
            .map(|&i| self.nodes[i].off + self.nodes[i].n1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_when_small() {
        let t = PartitionTree::build(10, 16);
        assert_eq!(t.nodes.len(), 1);
        assert!(t.nodes[t.root].is_leaf());
        assert!(t.merges_postorder().is_empty());
    }

    #[test]
    fn paper_figure1_shape() {
        // n = 1000 with min_part = 300 → four leaves of 250 (Figure 1/2).
        let t = PartitionTree::build(1000, 300);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 4);
        for &l in &leaves {
            assert_eq!(t.nodes[l].n, 250);
        }
        assert_eq!(t.merges_postorder().len(), 3);
        let levels = t.merge_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2);
        assert_eq!(levels[1].len(), 1);
    }

    #[test]
    fn ranges_partition_the_problem() {
        let t = PartitionTree::build(137, 10);
        let mut covered = [false; 137];
        for &l in &t.leaves() {
            let node = &t.nodes[l];
            #[allow(clippy::needless_range_loop)]
            for i in node.off..node.off + node.n {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
            assert!(node.n <= 10 && node.n >= 1);
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn postorder_has_children_first() {
        let t = PartitionTree::build(64, 4);
        let order = t.merges_postorder();
        let pos = |id: usize| order.iter().position(|&x| x == id);
        for &m in &order {
            if let Some((l, r)) = t.nodes[m].children {
                for c in [l, r] {
                    if !t.nodes[c].is_leaf() {
                        assert!(pos(c).unwrap() < pos(m).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn cuts_match_children() {
        let t = PartitionTree::build(100, 20);
        for &m in &t.merges_postorder() {
            let node = &t.nodes[m];
            let (l, r) = node.children.unwrap();
            assert_eq!(t.nodes[l].off, node.off);
            assert_eq!(t.nodes[l].n, node.n1);
            assert_eq!(t.nodes[r].off, node.off + node.n1);
            assert_eq!(t.nodes[r].n, node.n - node.n1);
        }
        assert_eq!(t.cuts().len(), t.merges_postorder().len());
    }
}
