//! Solver-level metrics: one [`SolverMetrics`] per solve.
//!
//! [`MetricsRecorder`] brackets a solve with two kernel-counter snapshots
//! (the global registry in [`dcst_matrix::metrics`]) and combines the
//! delta with the solve's own [`DcStats`] into a plain-data record: the
//! per-merge deflation ratios behind the paper's Figures 5–6, the secular
//! iteration counts and rescue-path activations behind its robustness
//! story, and the eigenvector-update GEMM volume behind Table I.
//!
//! Kernel counters are process-global, so a delta taken while *other*
//! solves run concurrently (parallel tests) includes their work too; the
//! CLI and benches record one solve at a time, where the delta is exact.
//! The deflation statistics come from `DcStats` and are per-solve exact
//! regardless. Counter deltas are all zeros unless the `metrics` feature
//! is compiled in.

use crate::DcStats;
use dcst_matrix::metrics::{self, CounterSnapshot};

/// Per-solve observability record (see the module docs for caveats).
#[derive(Clone, Debug, Default)]
pub struct SolverMetrics {
    /// Number of merge nodes in the solve.
    pub merges: usize,
    /// Sum of merge sizes `n` across all merges.
    pub total_merge_n: usize,
    /// Weighted average deflation ratio (weights = merge sizes).
    pub overall_deflation: f64,
    /// Deflation ratio of each merge, bottom-up.
    pub merge_deflation: Vec<f64>,
    /// Secular root solves (LAED4 calls that ran the iteration).
    pub secular_root_solves: u64,
    /// Total rational-model iterations across all root solves.
    pub secular_iters: u64,
    /// Root solves that fell back to the safeguarded-bisection rescue.
    pub secular_bisection_rescues: u64,
    /// QR sweeps in the leaf solver.
    pub steqr_sweeps: u64,
    /// Leaf solves that entered the exceptional-shift rescue budget.
    pub steqr_exceptional_rescues: u64,
    /// Eigenvector-update GEMM invocations.
    pub gemm_calls: u64,
    /// Floating-point operations issued by those GEMMs (`2·m·n·k` each).
    pub gemm_flops: u64,
    /// Merges whose eigenvector update ran the rank-structured path.
    pub structured_merges: u64,
    /// ACA-compressed off-diagonal tiles across those merges.
    pub structured_blocks: u64,
    /// Sum of achieved ranks over the compressed tiles.
    pub structured_rank: u64,
    /// Flops the structured path saved versus the dense oracle (planned).
    pub structured_flops_saved: u64,
}

impl SolverMetrics {
    /// Mean rational-model iterations per secular root solve.
    pub fn secular_iters_per_root(&self) -> f64 {
        if self.secular_root_solves == 0 {
            0.0
        } else {
            self.secular_iters as f64 / self.secular_root_solves as f64
        }
    }

    /// Human-readable multi-line report.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "merges: {} (total n {}), overall deflation {:.1}%",
            self.merges,
            self.total_merge_n,
            100.0 * self.overall_deflation
        )
        .unwrap();
        writeln!(
            out,
            "secular: {} root solves, {} iters ({:.2}/root), {} bisection rescues",
            self.secular_root_solves,
            self.secular_iters,
            self.secular_iters_per_root(),
            self.secular_bisection_rescues
        )
        .unwrap();
        writeln!(
            out,
            "steqr: {} sweeps, {} exceptional-shift rescues",
            self.steqr_sweeps, self.steqr_exceptional_rescues
        )
        .unwrap();
        writeln!(
            out,
            "gemm: {} calls, {:.3} Gflop",
            self.gemm_calls,
            self.gemm_flops as f64 / 1e9
        )
        .unwrap();
        write!(
            out,
            "structured: {} merges, {} compressed blocks (total rank {}), {:.3} Gflop saved",
            self.structured_merges,
            self.structured_blocks,
            self.structured_rank,
            self.structured_flops_saved as f64 / 1e9
        )
        .unwrap();
        out
    }

    /// Serialize as a JSON object (hand-rolled; numeric fields only).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        writeln!(out, "  \"merges\": {},", self.merges).unwrap();
        writeln!(out, "  \"total_merge_n\": {},", self.total_merge_n).unwrap();
        writeln!(out, "  \"overall_deflation\": {},", self.overall_deflation).unwrap();
        out.push_str("  \"merge_deflation\": [");
        for (i, r) in self.merge_deflation.iter().enumerate() {
            let sep = if i + 1 < self.merge_deflation.len() {
                ", "
            } else {
                ""
            };
            write!(out, "{r}{sep}").unwrap();
        }
        out.push_str("],\n");
        writeln!(
            out,
            "  \"secular_root_solves\": {},",
            self.secular_root_solves
        )
        .unwrap();
        writeln!(out, "  \"secular_iters\": {},", self.secular_iters).unwrap();
        writeln!(
            out,
            "  \"secular_bisection_rescues\": {},",
            self.secular_bisection_rescues
        )
        .unwrap();
        writeln!(out, "  \"steqr_sweeps\": {},", self.steqr_sweeps).unwrap();
        writeln!(
            out,
            "  \"steqr_exceptional_rescues\": {},",
            self.steqr_exceptional_rescues
        )
        .unwrap();
        writeln!(out, "  \"gemm_calls\": {},", self.gemm_calls).unwrap();
        writeln!(out, "  \"gemm_flops\": {},", self.gemm_flops).unwrap();
        writeln!(out, "  \"structured_merges\": {},", self.structured_merges).unwrap();
        writeln!(out, "  \"structured_blocks\": {},", self.structured_blocks).unwrap();
        writeln!(out, "  \"structured_rank\": {},", self.structured_rank).unwrap();
        writeln!(
            out,
            "  \"structured_flops_saved\": {}",
            self.structured_flops_saved
        )
        .unwrap();
        out.push('}');
        out
    }
}

/// Brackets one solve: snapshot the kernel counters at [`start`], solve,
/// then [`finish`] with the solve's `DcStats`.
///
/// [`start`]: MetricsRecorder::start
/// [`finish`]: MetricsRecorder::finish
pub struct MetricsRecorder {
    before: CounterSnapshot,
}

impl MetricsRecorder {
    /// Snapshot the kernel counters before the solve.
    pub fn start() -> Self {
        MetricsRecorder {
            before: metrics::snapshot(),
        }
    }

    /// Snapshot again and fold the delta with the solve's statistics.
    pub fn finish(self, stats: &DcStats) -> SolverMetrics {
        let d = metrics::snapshot().delta(&self.before);
        SolverMetrics {
            merges: stats.merges.len(),
            total_merge_n: stats.merges.iter().map(|m| m.n).sum(),
            overall_deflation: stats.overall_deflation(),
            merge_deflation: stats.merges.iter().map(|m| m.deflation_ratio()).collect(),
            secular_root_solves: d.get("secular.root_solves"),
            secular_iters: d.get("secular.iters"),
            secular_bisection_rescues: d.get("secular.bisection_rescues"),
            steqr_sweeps: d.get("steqr.sweeps"),
            steqr_exceptional_rescues: d.get("steqr.exceptional_rescues"),
            gemm_calls: d.get("gemm.calls"),
            gemm_flops: d.get("gemm.flops"),
            structured_merges: d.get("update.structured_merges"),
            structured_blocks: d.get("update.structured_blocks"),
            structured_rank: d.get("update.structured_rank"),
            structured_flops_saved: d.get("update.flops_saved"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergeStat;

    fn stats() -> DcStats {
        DcStats {
            merges: vec![
                MergeStat {
                    n: 64,
                    n1: 32,
                    k: 16,
                },
                MergeStat {
                    n: 128,
                    n1: 64,
                    k: 128,
                },
            ],
        }
    }

    #[test]
    fn recorder_folds_stats() {
        let rec = MetricsRecorder::start();
        let m = rec.finish(&stats());
        assert_eq!(m.merges, 2);
        assert_eq!(m.total_merge_n, 192);
        assert_eq!(m.merge_deflation.len(), 2);
        assert!((m.merge_deflation[0] - 0.75).abs() < 1e-15);
        assert_eq!(m.merge_deflation[1], 0.0);
        assert!((m.overall_deflation - 48.0 / 192.0).abs() < 1e-15);
    }

    #[test]
    fn recorder_sees_kernel_counters() {
        // Solve a real problem between the snapshots; under the metrics
        // feature the LAED4/steqr/GEMM work must show up in the delta.
        // (Other tests may add concurrently — assert presence, not equality.)
        let rec = MetricsRecorder::start();
        let t = dcst_tridiag::SymTridiag::toeplitz121(96);
        let opts = crate::DcOptions {
            threads: 2,
            min_part: 24,
            nb: 16,
            ..Default::default()
        };
        let solver = crate::TaskFlowDc::new(opts);
        let (_eig, stats) = solver.solve_with_stats(&t).unwrap();
        let m = rec.finish(&stats);
        assert!(m.merges >= 1);
        assert!(m.overall_deflation >= 0.0 && m.overall_deflation <= 1.0);
        if cfg!(feature = "metrics") {
            assert!(m.secular_root_solves > 0, "LAED4 ran, counter must move");
            assert!(m.secular_iters >= m.secular_root_solves / 2);
            assert!(m.steqr_sweeps > 0, "leaf solver ran, counter must move");
            assert!(m.gemm_calls > 0, "UpdateVect ran, counter must move");
            assert!(m.gemm_flops >= m.gemm_calls);
        } else {
            assert_eq!(m.secular_root_solves, 0);
            assert_eq!(m.gemm_flops, 0);
        }
        let rep = m.report();
        assert!(rep.contains("root solves"));
        assert!(rep.contains("compressed blocks"));
        assert!(dcst_runtime::jsonv::parse(&m.to_json()).is_ok());
    }

    #[test]
    fn json_shape() {
        let m = MetricsRecorder::start().finish(&stats());
        let doc = dcst_runtime::jsonv::parse(&m.to_json()).unwrap();
        assert_eq!(doc.get("merges").unwrap().as_num(), Some(2.0));
        assert_eq!(
            doc.get("merge_deflation").unwrap().as_arr().unwrap().len(),
            2
        );
        assert!(doc.get("structured_merges").unwrap().as_num().is_some());
        assert!(doc
            .get("structured_flops_saved")
            .unwrap()
            .as_num()
            .is_some());
    }
}
