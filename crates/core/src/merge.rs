//! The merge-phase kernels shared by every D&C variant.
//!
//! All kernels operate in *block-local* coordinates: slices are assumed to
//! start at the merge block's origin element `(off, off)` (or at a column
//! within it, as documented per function) of a column-major buffer with
//! leading dimension `ld` (the global problem size). This lets the
//! sequential drivers use plain borrowed sub-slices and the task-flow
//! driver use disjoint [`SharedData`](dcst_runtime::SharedData) ranges
//! without any coordinate translation inside the kernels.

use crate::DcError;
use dcst_matrix::{gemm_par, merge_perm};
use dcst_secular::{
    assemble_vectors, deflate, local_w_products, reduce_w, solve_secular_root, Deflation,
    DeflationInput, GivensRot, SlotType,
};

/// Statistics of one merge node.
#[derive(Clone, Copy, Debug)]
pub struct MergeStat {
    /// Merge size (`n1 + n2`).
    pub n: usize,
    /// Left-child size.
    pub n1: usize,
    /// Non-deflated count (secular problem size).
    pub k: usize,
}

impl MergeStat {
    /// Fraction deflated in this merge.
    pub fn deflation_ratio(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.n - self.k) as f64 / self.n as f64
        }
    }
}

/// `1/√2`, the z-vector normalization of the paper's Eq. (6).
const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Build the rank-one vector `z` (physical order): the last row of the
/// left child's eigenvector block and the first row of the right child's,
/// scaled to unit norm. `v_block` starts at `(off, off)`.
pub(crate) fn build_z(v_block: &[f64], ld: usize, nm: usize, n1: usize) -> Vec<f64> {
    let mut z = Vec::new();
    build_z_into(&mut z, v_block, ld, nm, n1);
    z
}

/// [`build_z`] into a caller-provided buffer (cleared, then filled).
pub(crate) fn build_z_into(z: &mut Vec<f64>, v_block: &[f64], ld: usize, nm: usize, n1: usize) {
    z.clear();
    z.reserve(nm);
    for j in 0..n1 {
        z.push(v_block[j * ld + (n1 - 1)] * FRAC_1_SQRT_2);
    }
    for j in n1..nm {
        z.push(v_block[j * ld + n1] * FRAC_1_SQRT_2);
    }
}

/// Reusable per-merge scratch buffers for [`merge_sequential`] and
/// [`apply_final_sort`]. All buffers grow monotonically to the largest
/// merge seen, so a driver that reuses one `MergeScratch` across its
/// postorder sweep allocates each buffer once (at the root's size) rather
/// than once per merge node.
#[derive(Default)]
pub(crate) struct MergeScratch {
    /// Rank-one vector `z` (`nm` entries).
    z: Vec<f64>,
    /// Concatenated child permutations (`nm` entries).
    idxq: Vec<usize>,
    /// Secular eigenvalues (`k` entries).
    lam: Vec<f64>,
    /// Delta/eigenvector panel `X` (`k × k`, column-major, `ld = k`).
    x: Vec<f64>,
    /// Diagonal permutation scratch for the final sort (`n` entries).
    dtmp: Vec<f64>,
}

/// Validate the merge's numerical inputs (the block diagonal and the
/// rank-one vector) before deflation. Leaves deliver finite data on
/// success, so non-finite values here mean an upstream kernel broke down
/// silently (e.g. overflow in a rotation) — report it as a typed
/// breakdown instead of letting NaN propagate into a garbage `Eigen`.
pub(crate) fn ensure_finite_merge_inputs(
    d_block: &[f64],
    z: &[f64],
    off: usize,
) -> Result<(), DcError> {
    if d_block.iter().chain(z.iter()).all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(DcError::Breakdown {
            stage: "deflate",
            off,
        })
    }
}

/// Apply the deflation Givens rotations to eigenvector columns (block rows
/// only — columns are zero outside them). BLAS `drot` convention, matching
/// [`GivensRot`]'s contract.
pub(crate) fn apply_givens(v_block: &mut [f64], ld: usize, nm: usize, rots: &[GivensRot]) {
    for r in rots {
        let (a, b) = (r.col_a, r.col_b);
        debug_assert!(a != b && a < nm && b < nm);
        let (lo, hi) = (a.min(b), a.max(b));
        let (first, second) = v_block.split_at_mut(hi * ld);
        let ca = &mut first[lo * ld..lo * ld + nm];
        let cb = &mut second[..nm];
        let (ca, cb) = if a < b { (ca, cb) } else { (cb, ca) };
        for (x, y) in ca.iter_mut().zip(cb.iter_mut()) {
            let (xv, yv) = (*x, *y);
            *x = r.c * xv + r.s * yv;
            *y = -r.s * xv + r.c * yv;
        }
    }
}

/// Row span (block-local) of a slot's stored data.
#[inline]
pub(crate) fn slot_rows(t: SlotType, nm: usize, n1: usize) -> (usize, usize) {
    match t {
        SlotType::Top => (0, n1),
        SlotType::Bottom => (n1, nm),
        SlotType::Full | SlotType::Deflated => (0, nm),
    }
}

/// `PermuteV`: copy source columns into the compressed workspace for the
/// storage slots in `slots`. `v_block` starts at `(off, off)`; `ws_cols`
/// starts at `(off, off + slots.start)`.
///
/// When the block spans the full column height (`ld == nm`, i.e. the root
/// merge, where half the total copy traffic lives) runs of full-height
/// slots with consecutive source columns collapse into single spanning
/// `copy_from_slice` calls instead of per-column slicing. With `ld > nm`
/// the rows between columns belong to other blocks, so a spanning copy
/// would clobber them — those blocks keep the per-slot row-span copies.
pub(crate) fn permute_slots(
    v_block: &[f64],
    ws_cols: &mut [f64],
    ld: usize,
    nm: usize,
    n1: usize,
    defl: &Deflation,
    slots: std::ops::Range<usize>,
) {
    let s0 = slots.start;
    if ld == nm {
        let mut s = slots.start;
        while s < slots.end {
            let src = defl.perm[s];
            let (r0, r1) = slot_rows(defl.slot_type[s], nm, n1);
            if (r0, r1) == (0, nm) {
                let mut len = 1;
                while s + len < slots.end
                    && defl.perm[s + len] == src + len
                    && slot_rows(defl.slot_type[s + len], nm, n1) == (0, nm)
                {
                    len += 1;
                }
                ws_cols[(s - s0) * ld..(s - s0 + len) * ld]
                    .copy_from_slice(&v_block[src * ld..(src + len) * ld]);
                s += len;
            } else {
                ws_cols[(s - s0) * ld + r0..(s - s0) * ld + r1]
                    .copy_from_slice(&v_block[src * ld + r0..src * ld + r1]);
                s += 1;
            }
        }
        return;
    }
    for s in slots.clone() {
        let src = defl.perm[s];
        let (r0, r1) = slot_rows(defl.slot_type[s], nm, n1);
        let dst = &mut ws_cols[(s - s0) * ld + r0..(s - s0) * ld + r1];
        dst.copy_from_slice(&v_block[src * ld + r0..src * ld + r1]);
    }
}

/// `LAED4`: solve secular roots `jrange`, writing delta columns into
/// `x_cols` (starting at `(off, off + jrange.start)`, rows `0..k` of each
/// column) and eigenvalues into `lam_out[j - jrange.start]`.
pub(crate) fn solve_roots_panel(
    defl: &Deflation,
    x_cols: &mut [f64],
    ld: usize,
    jrange: std::ops::Range<usize>,
    lam_out: &mut [f64],
) -> Result<(), DcError> {
    let k = defl.k;
    for j in jrange.clone() {
        let col = &mut x_cols[(j - jrange.start) * ld..(j - jrange.start) * ld + k];
        lam_out[j - jrange.start] = solve_secular_root(j, &defl.dlamda, &defl.w, defl.rho, col)?;
    }
    Ok(())
}

/// `ComputeLocalW` for a root panel: partial Gu–Eisenstat products.
/// `x_cols` starts at `(off, off + jrange.start)`.
pub(crate) fn local_w_panel(
    defl: &Deflation,
    x_cols: &[f64],
    ld: usize,
    jrange: std::ops::Range<usize>,
) -> Vec<f64> {
    local_w_products(&defl.dlamda, x_cols, ld, jrange.start, jrange)
}

/// `ReduceW`: combine the partial products into ẑ.
pub(crate) fn reduce_w_panels(defl: &Deflation, partials: &[Vec<f64>]) -> Vec<f64> {
    reduce_w(&defl.w, partials)
}

/// `ComputeVect`: overwrite delta columns `jrange` with slot-permuted,
/// normalized secular eigenvectors. `x_cols` starts at
/// `(off, off + jrange.start)`.
pub(crate) fn compute_vect_panel(
    defl: &Deflation,
    zhat: &[f64],
    x_cols: &mut [f64],
    ld: usize,
    jrange: std::ops::Range<usize>,
) {
    assemble_vectors(zhat, x_cols, ld, jrange.start, jrange, &defl.sec_to_slot);
}

/// `UpdateVect`: the two structured GEMMs producing the merged
/// eigenvectors for secular columns `jrange`.
///
/// * `ws_block` starts at `(off, off)` (all `k` compressed columns);
/// * `x_cols` starts at `(off, off + jrange.start)`;
/// * `v_cols` starts at `(0, off + jrange.start)` — **full column height**,
///   with `row_off = off` giving the block's first row within the column.
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_vect_panel(
    ws_block: &[f64],
    x_cols: &[f64],
    xld: usize,
    v_cols: &mut [f64],
    ld: usize,
    row_off: usize,
    nm: usize,
    n1: usize,
    defl: &Deflation,
    jrange: std::ops::Range<usize>,
    threads: usize,
) -> Result<(), DcError> {
    let ncols = jrange.len();
    if ncols == 0 {
        return Ok(());
    }
    if dcst_matrix::failpoints::fire("gemm") {
        return Err(DcError::Breakdown {
            stage: "gemm",
            off: row_off,
        });
    }
    let n2 = nm - n1;
    let c1 = defl.ctot[0];
    let c2 = defl.ctot[1];
    let c3 = defl.ctot[2];
    // GEMM volume for the metrics registry, batched into one update below.
    let mut gemm_calls = 0u64;
    let mut gemm_flops = 0u64;
    // Top rows: A = [Top | Full] columns (n1 × (c1+c2)).
    if n1 > 0 {
        if c1 + c2 > 0 {
            gemm_calls += 1;
            gemm_flops += 2 * (n1 * ncols * (c1 + c2)) as u64;
            gemm_par(
                threads,
                n1,
                ncols,
                c1 + c2,
                1.0,
                ws_block,
                ld,
                x_cols,
                xld,
                0.0,
                &mut v_cols[row_off..],
                ld,
            );
        } else {
            for j in 0..ncols {
                v_cols[j * ld + row_off..j * ld + row_off + n1].fill(0.0);
            }
        }
    }
    // Bottom rows: A = [Full | Bottom] columns (n2 × (c2+c3)), starting at
    // workspace column c1, row n1; B rows start at c1.
    if n2 > 0 {
        if c2 + c3 > 0 {
            gemm_calls += 1;
            gemm_flops += 2 * (n2 * ncols * (c2 + c3)) as u64;
            gemm_par(
                threads,
                n2,
                ncols,
                c2 + c3,
                1.0,
                &ws_block[c1 * ld + n1..],
                ld,
                &x_cols[c1..],
                xld,
                0.0,
                &mut v_cols[row_off + n1..],
                ld,
            );
        } else {
            for j in 0..ncols {
                v_cols[j * ld + row_off + n1..j * ld + row_off + nm].fill(0.0);
            }
        }
    }
    if gemm_calls > 0 {
        dcst_matrix::metrics::add("gemm.calls", gemm_calls);
        dcst_matrix::metrics::add("gemm.flops", gemm_flops);
    }
    // NaN-corruption site: models a GEMM that silently produced garbage.
    dcst_matrix::failpoints::poke_nan("nan-gemm", &mut v_cols[row_off..]);
    // Always-on finite scan of the freshly written block rows: O(nm·ncols)
    // against the GEMMs' O(nm·ncols·k), so ~1/k of the kernel's cost. This
    // is where mid-tree corruption (from any upstream kernel feeding the
    // update) is converted into a typed error instead of a wrong answer.
    for j in 0..ncols {
        let col = &v_cols[j * ld + row_off..j * ld + row_off + nm];
        if !col.iter().all(|x| x.is_finite()) {
            return Err(DcError::Breakdown {
                stage: "update-vect",
                off: row_off,
            });
        }
    }
    Ok(())
}

/// `CopyBackDeflated`: copy deflated workspace columns back into V.
/// Both slices start at `(off, off + slot0)`; `count` columns are copied
/// over the full block height.
///
/// With `ld == nm` (root merge) the columns are contiguous and the whole
/// panel moves in one `copy_from_slice`; smaller blocks keep the strided
/// per-column copies so the rows owned by neighbouring blocks stay
/// untouched.
pub(crate) fn copy_back_panel(
    ws_cols: &[f64],
    v_cols: &mut [f64],
    ld: usize,
    nm: usize,
    count: usize,
) {
    if ld == nm {
        v_cols[..count * ld].copy_from_slice(&ws_cols[..count * ld]);
        return;
    }
    for s in 0..count {
        v_cols[s * ld..s * ld + nm].copy_from_slice(&ws_cols[s * ld..s * ld + nm]);
    }
}

/// Storage-slot spans selected by a subset of *sorted* positions: given
/// the slots `idxq[il..=iu]`, return the secular span `[jlo, jhi)` and the
/// deflated span `[dlo, dhi)` they occupy. Both are contiguous because the
/// sorting permutation merges two ascending runs (secular eigenvalues in
/// slots `0..k`, deflated ones in `k..nm`) — any window of sorted
/// positions draws a prefix-free contiguous chunk from each run.
pub(crate) fn subset_slot_spans(
    slots: &[usize],
    k: usize,
    nm: usize,
) -> (usize, usize, usize, usize) {
    let (mut jlo, mut jhi) = (k, k);
    let (mut dlo, mut dhi) = (nm, nm);
    for &s in slots {
        if s < k {
            if jhi == jlo {
                (jlo, jhi) = (s, s + 1);
            } else {
                jlo = jlo.min(s);
                jhi = jhi.max(s + 1);
            }
        } else if dhi == dlo {
            (dlo, dhi) = (s, s + 1);
        } else {
            dlo = dlo.min(s);
            dhi = dhi.max(s + 1);
        }
    }
    debug_assert_eq!(
        (jhi - jlo) + (dhi - dlo),
        slots.len(),
        "subset slots must form two contiguous spans"
    );
    (jlo, jhi, dlo, dhi)
}

/// Finalize a merge: write the block's new diagonal (secular eigenvalues
/// then deflated ones) and return the permutation sorting it ascending.
pub(crate) fn finalize_d(defl: &Deflation, lam_sec: &[f64], d_block: &mut [f64]) -> Vec<usize> {
    let k = defl.k;
    debug_assert_eq!(lam_sec.len(), k);
    d_block[..k].copy_from_slice(lam_sec);
    d_block[k..defl.n].copy_from_slice(&defl.d_deflated);
    merge_perm(&d_block[..defl.n], k)
}

/// One whole merge, sequentially (the LAPACK `dlaed1` shape). Used by the
/// non-task-flow drivers; `gemm_threads` > 1 reproduces the "threaded BLAS
/// only" MKL model.
///
/// * `d_block`: the `nm` diagonal entries of this block (in/out);
/// * `v_panel`, `ws_panel`: the `nm` columns of V/workspace covering the
///   block, full column height (`ld` rows per column), block rows starting
///   at `row_off`;
/// * `beta`: the signed coupling `e[off + n1 − 1]`;
/// * `idxq_l`, `idxq_r`: children's sorting permutations (local to each
///   child's range);
/// * `subset`: `Some((il, iu))` at the *root* merge of a
///   [`SolveMode::Subset`](crate::SolveMode::Subset) solve — eigenvector
///   assembly, the update GEMMs, and the deflated copy-back are then
///   pruned to the storage slots that land in sorted positions `il..=iu`
///   (the diagonal is still fully merged, so all eigenvalues stay exact);
/// * `scratch`: grow-once buffers reused across merges by the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_sequential(
    d_block: &mut [f64],
    v_panel: &mut [f64],
    ws_panel: &mut [f64],
    ld: usize,
    row_off: usize,
    nm: usize,
    n1: usize,
    beta: f64,
    idxq_l: &[usize],
    idxq_r: &[usize],
    gemm_threads: usize,
    subset: Option<(usize, usize)>,
    scratch: &mut MergeScratch,
) -> Result<(Vec<usize>, MergeStat), DcError> {
    debug_assert_eq!(d_block.len(), nm);
    debug_assert_eq!(idxq_l.len(), n1);
    debug_assert_eq!(idxq_r.len(), nm - n1);

    // Block-origin view of the V/workspace panels.
    let vb0 = row_off; // offset of element (off, off) within v_panel

    let MergeScratch {
        z, idxq, lam, x, ..
    } = scratch;
    build_z_into(z, &v_panel[vb0..], ld, nm, n1);
    ensure_finite_merge_inputs(d_block, z, row_off)?;
    idxq.clear();
    idxq.extend_from_slice(idxq_l);
    idxq.extend(idxq_r.iter().map(|&r| r + n1));

    let defl = deflate(&DeflationInput {
        d: d_block,
        z: z.as_slice(),
        beta,
        n1,
        idxq: idxq.as_slice(),
    });
    let k = defl.k;

    apply_givens(&mut v_panel[vb0..], ld, nm, &defl.givens);
    permute_slots(
        &v_panel[vb0..],
        &mut ws_panel[vb0..],
        ld,
        nm,
        n1,
        &defl,
        0..nm,
    );

    lam.clear();
    lam.resize(k, 0.0);
    if k > 0 {
        // Grow-once k×k panel; every entry is written by solve_roots_panel
        // before any read, so stale contents need no zeroing.
        if x.len() < k * k {
            x.resize(k * k, 0.0);
        }
        let x = &mut x[..k * k];
        solve_roots_panel(&defl, x, k, 0..k, lam).map_err(|e| e.with_offset(row_off))?;
        let partials = vec![local_w_panel(&defl, x, k, 0..k)];
        let zhat = reduce_w_panels(&defl, &partials);
        if let Some((il, iu)) = subset {
            // The merged diagonal — and hence the sorted order — is fully
            // determined before any eigenvector work, so finalizing early
            // reveals which storage slots the requested sorted positions
            // occupy; only those columns get assembled and updated.
            let idxq_out = finalize_d(&defl, lam, d_block);
            let (jlo, jhi, dlo, dhi) = subset_slot_spans(&idxq_out[il..=iu], k, nm);
            if jhi > jlo {
                compute_vect_panel(&defl, &zhat, &mut x[jlo * k..], k, jlo..jhi);
                update_vect_panel(
                    &ws_panel[vb0..],
                    &x[jlo * k..],
                    k,
                    &mut v_panel[jlo * ld..],
                    ld,
                    row_off,
                    nm,
                    n1,
                    &defl,
                    jlo..jhi,
                    gemm_threads,
                )?;
            }
            if dhi > dlo {
                copy_back_panel(
                    &ws_panel[vb0 + dlo * ld..],
                    &mut v_panel[vb0 + dlo * ld..],
                    ld,
                    nm,
                    dhi - dlo,
                );
            }
            return Ok((idxq_out, MergeStat { n: nm, n1, k }));
        }
        compute_vect_panel(&defl, &zhat, x, k, 0..k);
        // Auto-switch: rank-probe the secular matrix and take the
        // compressed multiply when it is strictly cheaper than the dense
        // oracle (see crate::structured); the dense two-GEMM path stays
        // the default and the fallback.
        match crate::structured::plan_update(&ws_panel[vb0..], x, k, ld, nm, n1, &defl, ld) {
            Some(su) => {
                su.compute_all_bases(gemm_threads);
                su.update_panel(v_panel, ld, row_off, nm, 0..k, gemm_threads)?;
            }
            None => update_vect_panel(
                &ws_panel[vb0..],
                x,
                k,
                v_panel,
                ld,
                row_off,
                nm,
                n1,
                &defl,
                0..k,
                gemm_threads,
            )?,
        }
    }
    if let Some((il, iu)) = subset {
        // Fully deflated merge (k == 0) under a subset solve: the
        // workspace already holds the final vectors, so copy back only the
        // deflated span the requested positions select.
        let idxq_out = finalize_d(&defl, lam, d_block);
        let (_, _, dlo, dhi) = subset_slot_spans(&idxq_out[il..=iu], k, nm);
        if dhi > dlo {
            copy_back_panel(
                &ws_panel[vb0 + dlo * ld..],
                &mut v_panel[vb0 + dlo * ld..],
                ld,
                nm,
                dhi - dlo,
            );
        }
        return Ok((idxq_out, MergeStat { n: nm, n1, k }));
    }
    if k < nm {
        copy_back_panel(
            &ws_panel[vb0 + k * ld..],
            &mut v_panel[vb0 + k * ld..],
            ld,
            nm,
            nm - k,
        );
    }

    let idxq_out = finalize_d(&defl, lam, d_block);
    Ok((idxq_out, MergeStat { n: nm, n1, k }))
}

/// Apply the final sorting permutation to `d` and the columns of `v`,
/// using `ws` as scratch (both full `n × n`, `ld = n`).
pub(crate) fn apply_final_sort(
    d: &mut [f64],
    v: &mut [f64],
    ws: &mut [f64],
    ld: usize,
    idxq: &[usize],
    scratch: &mut MergeScratch,
) {
    let n = idxq.len();
    let dtmp = &mut scratch.dtmp;
    dtmp.clear();
    dtmp.resize(n, 0.0);
    // Columns are full height, so a run of consecutive sources in idxq
    // (common: deflation leaves long already-sorted stretches) moves as
    // one spanning copy instead of per-column slicing.
    let mut r = 0;
    while r < n {
        let src = idxq[r];
        let mut len = 1;
        while r + len < n && idxq[r + len] == src + len {
            len += 1;
        }
        dtmp[r..r + len].copy_from_slice(&d[src..src + len]);
        ws[r * ld..(r + len) * ld].copy_from_slice(&v[src * ld..(src + len) * ld]);
        r += len;
    }
    d[..n].copy_from_slice(dtmp);
    v[..n * ld].copy_from_slice(&ws[..n * ld]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::Matrix;

    #[test]
    fn build_z_extracts_rows() {
        // 4x4 block, n1 = 2: z = [V[1,0], V[1,1], V[2,2], V[2,3]] / √2.
        let mut v = Matrix::zeros(4, 4);
        v[(1, 0)] = 1.0;
        v[(1, 1)] = 2.0;
        v[(2, 2)] = 3.0;
        v[(2, 3)] = 4.0;
        let z = build_z(v.as_slice(), 4, 4, 2);
        let s = FRAC_1_SQRT_2;
        assert_eq!(z, vec![s, 2.0 * s, 3.0 * s, 4.0 * s]);
    }

    #[test]
    fn givens_rotation_preserves_norms() {
        let mut v = Matrix::from_fn(3, 3, |i, j| (i + j) as f64 + 1.0);
        let before: f64 = v.as_slice().iter().map(|x| x * x).sum();
        let th = 0.3f64;
        apply_givens(
            v.as_mut_slice(),
            3,
            3,
            &[GivensRot {
                col_a: 0,
                col_b: 2,
                c: th.cos(),
                s: th.sin(),
            }],
        );
        let after: f64 = v.as_slice().iter().map(|x| x * x).sum();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn slot_rows_by_type() {
        assert_eq!(slot_rows(SlotType::Top, 10, 4), (0, 4));
        assert_eq!(slot_rows(SlotType::Bottom, 10, 4), (4, 10));
        assert_eq!(slot_rows(SlotType::Full, 10, 4), (0, 10));
        assert_eq!(slot_rows(SlotType::Deflated, 10, 4), (0, 10));
    }

    #[test]
    fn finalize_d_sorts_two_runs() {
        // Fake a deflation result with k = 2 secular values and 2 deflated.
        let d = [0.0, 1.0, 0.5, 2.0];
        let z = [0.5, 0.5, 1e-30, 1e-30];
        let idxq = [0usize, 1, 2, 3];
        let defl = deflate(&DeflationInput {
            d: &d,
            z: &z,
            beta: 0.25,
            n1: 2,
            idxq: &idxq,
        });
        assert_eq!(defl.k, 2);
        let mut d_block = [0.0; 4];
        let lam = [0.4, 1.4];
        let perm = finalize_d(&defl, &lam, &mut d_block);
        // New d = [0.4, 1.4, 0.5, 2.0]; ascending = indices [0, 2, 1, 3].
        assert_eq!(perm, vec![0, 2, 1, 3]);
    }
}
