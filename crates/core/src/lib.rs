//! Task-flow Divide & Conquer symmetric tridiagonal eigensolver.
//!
//! This crate is the paper's contribution: Cuppen's divide & conquer
//! algorithm expressed as a *sequential task flow* over panel-granular
//! tasks — `ComputeDeflation → {PermuteV | LAED4 | ComputeLocalW}ₚ →
//! ReduceW → {CopyBackDeflated | ComputeVect | UpdateVect}ₚ` per merge —
//! scheduled out of order by the [`dcst_runtime`] QUARK-analogue, so
//! independent merges of the tree overlap and the quadratic kernels
//! (secular equation, stabilization) parallelize alongside the cubic ones
//! (eigenvector update GEMMs).
//!
//! Four solver variants share the same numerical kernels:
//!
//! * [`TaskFlowDc`] — the paper's solver;
//! * [`SequentialDc`] — LAPACK `dstedc` shape (one thread, everything
//!   sequential);
//! * [`ForkJoinDc`] — "LAPACK + multithreaded BLAS" shape (the Intel MKL
//!   comparator): sequential control flow, only the update GEMMs threaded;
//! * [`LevelParallelDc`] — ScaLAPACK `pdstedc` shape: subproblems of one
//!   tree level in parallel with a barrier between levels.
//!
//! ```
//! use dcst_core::{DcOptions, TaskFlowDc, TridiagEigensolver};
//! use dcst_tridiag::SymTridiag;
//!
//! let t = SymTridiag::toeplitz121(64);
//! let eig = TaskFlowDc::new(DcOptions::default()).solve(&t).unwrap();
//! assert_eq!(eig.values.len(), 64);
//! ```

mod merge;
mod metrics;
mod opcount;
mod seq;
mod structured;
mod taskflow;
mod tree;
mod values;

pub use merge::MergeStat;
pub use metrics::{MetricsRecorder, SolverMetrics};
pub use opcount::{merge_cost_model, solve_cost_model, MergeCosts};
pub use seq::{ForkJoinDc, LevelParallelDc, SequentialDc};
pub use taskflow::{PendingSolve, TaskFlowDc};
pub use tree::{PartitionTree, TreeNode};

use dcst_matrix::Matrix;
use dcst_mrrr::MrrrError;
use dcst_qriter::QrError;
use dcst_runtime::RuntimeError;
use dcst_secular::SecularError;
use dcst_tridiag::SymTridiag;

/// Eigen-decomposition `T = V Λ Vᵀ`: `values` ascending, `vectors` columns
/// in matching order.
#[derive(Clone, Debug)]
pub struct Eigen {
    pub values: Vec<f64>,
    pub vectors: Matrix,
}

/// What part of the eigen-decomposition a solve computes.
///
/// * [`Full`](SolveMode::Full) — values and the complete n×n eigenvector
///   matrix (the default; unchanged behaviour).
/// * [`ValuesOnly`](SolveMode::ValuesOnly) — eigenvalues only. Instead of
///   accumulating n×n eigenvector matrices the D&C drivers propagate two
///   O(n) boundary rows per node (first and last row of the node's
///   eigenvector matrix — exactly what the parent merge's z-vector needs),
///   cutting internal state from O(n²) to O(n)-class. `Eigen::vectors`
///   comes back as an `n × 0` matrix.
/// * [`Subset`](SolveMode::Subset) — all eigenvalues plus eigenvectors for
///   the ascending (0-based, inclusive) index range `il..=iu` only: the
///   root merge's assembly/GEMM/back-transform are pruned to those k
///   columns, and when `k ≪ n` the driver falls back to the MRRR crate's
///   Θ(n·k) subset computation. `Eigen::values` then holds the k selected
///   values and `Eigen::vectors` is n×k.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SolveMode {
    #[default]
    Full,
    ValuesOnly,
    Subset {
        il: usize,
        iu: usize,
    },
}

/// A subset solve falls back to MRRR bisection when `16·k ≤ n`: below
/// that, pruning only the root merge cannot beat Θ(n·k) bisection.
pub(crate) const SUBSET_FALLBACK_RATIO: usize = 16;

/// Tuning options shared by every D&C variant.
#[derive(Clone, Copy, Debug)]
pub struct DcOptions {
    /// Maximum leaf size before the recursion stops (the paper's minimal
    /// partition size; LAPACK's `smlsiz` is 25, the paper demos 300).
    pub min_part: usize,
    /// Panel width `nb`: tasks operate on `nb`-column panels.
    pub nb: usize,
    /// Worker threads (task-flow, fork-join GEMMs, level-parallel).
    pub threads: usize,
    /// Allocate extra workspace so the second task phase can stage into a
    /// buffer distinct from the first phase's (the paper's §IV user
    /// option, exposed for the ablation bench).
    pub extra_workspace: bool,
    /// Use the paper's GATHERV qualifier for panel tasks (default). When
    /// false, panel tasks declare INOUT on the merge's node key instead,
    /// which serializes them — the fork/join behaviour the paper's runtime
    /// extension removes. Exposed for the ablation bench.
    pub use_gatherv: bool,
    /// What to compute: full decomposition, eigenvalues only, or an
    /// eigenvector subset. See [`SolveMode`].
    pub mode: SolveMode,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            min_part: 32,
            nb: 64,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            extra_workspace: false,
            use_gatherv: true,
            mode: SolveMode::Full,
        }
    }
}

/// Errors from the D&C drivers.
#[derive(Debug)]
pub enum DcError {
    /// Input contained NaN/Inf.
    NonFinite,
    /// The QR-iteration leaf solver failed.
    Leaf(QrError),
    /// The secular-equation solver failed.
    Secular(SecularError),
    /// A kernel produced non-finite values mid-computation: `stage` names
    /// the merge kernel that detected the corruption, `off` the global row
    /// offset of the merge node it happened in.
    Breakdown { stage: &'static str, off: usize },
    /// A task failed inside the runtime in a way the solver could not
    /// attribute to a numerical kernel (e.g. a panic).
    Task(RuntimeError),
    /// A [`SolveMode::Subset`] index range is empty or out of bounds —
    /// user input, reported rather than asserted.
    InvalidRange { il: usize, iu: usize, n: usize },
    /// The MRRR fallback for a small subset failed.
    Subset(MrrrError),
    /// The solve was cancelled before it completed (a pending solve's
    /// [`taskflow::PendingSolve`] scope was cancelled mid-flight).
    Cancelled,
}

impl std::fmt::Display for DcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcError::NonFinite => write!(f, "matrix contains NaN or infinite entries"),
            DcError::Leaf(e) => write!(f, "leaf solver failed: {e}"),
            DcError::Secular(e) => write!(f, "secular solver failed: {e}"),
            DcError::Breakdown { stage, off } => write!(
                f,
                "non-finite values mid-computation in '{stage}' at merge offset {off}"
            ),
            DcError::Task(e) => write!(f, "task failure: {e}"),
            DcError::InvalidRange { il, iu, n } => write!(
                f,
                "eigenvalue index range {il}:{iu} invalid for matrix of order {n} \
                 (need il <= iu < n, 0-based)"
            ),
            DcError::Subset(e) => write!(f, "subset fallback failed: {e}"),
            DcError::Cancelled => write!(f, "solve cancelled"),
        }
    }
}

impl std::error::Error for DcError {}

impl DcError {
    /// Translate block-local coordinates (leaf rows, merge root indices) to
    /// global matrix coordinates by adding the node's row offset.
    pub fn with_offset(self, off: usize) -> Self {
        match self {
            DcError::Leaf(e) => DcError::Leaf(e.with_offset(off)),
            DcError::Secular(e) => DcError::Secular(e.with_offset(off)),
            other => other,
        }
    }
}

impl From<QrError> for DcError {
    fn from(e: QrError) -> Self {
        DcError::Leaf(e)
    }
}

impl From<SecularError> for DcError {
    fn from(e: SecularError) -> Self {
        DcError::Secular(e)
    }
}

impl From<RuntimeError> for DcError {
    fn from(e: RuntimeError) -> Self {
        // A task body that failed with a typed DcError (spawn_try in the
        // task-flow driver) surfaces as that error, exactly as the
        // sequential drivers would report it; anything else — a panic or a
        // foreign error type — stays wrapped with the task name attached.
        if e.is_cancelled() {
            return DcError::Cancelled;
        }
        match e.downcast::<DcError>() {
            Ok((_task, err)) => err,
            Err(e) => DcError::Task(e),
        }
    }
}

/// Validate a [`SolveMode::Subset`] range against the matrix order.
pub(crate) fn validate_subset(il: usize, iu: usize, n: usize) -> Result<(), DcError> {
    if il > iu || iu >= n {
        return Err(DcError::InvalidRange { il, iu, n });
    }
    Ok(())
}

/// True when a subset solve should route to the MRRR fallback: pruning
/// eigenvector work at the root merge only saves about half the vector
/// flops, so once `16·k ≤ n` MRRR's Θ(n·k) subset path wins outright.
pub(crate) fn subset_uses_fallback(il: usize, iu: usize, n: usize) -> bool {
    let k = iu - il + 1;
    SUBSET_FALLBACK_RATIO * k <= n
}

/// Solve the subset `il..=iu` via MRRR bisection + twisted factorizations
/// (exact-count contract), packaging the result as an [`Eigen`].
pub(crate) fn subset_fallback(
    t: &SymTridiag,
    il: usize,
    iu: usize,
    threads: usize,
) -> Result<Eigen, DcError> {
    let solver = dcst_mrrr::MrrrSolver::new(dcst_mrrr::MrrrOptions {
        threads: threads.max(1),
        ..Default::default()
    });
    let (values, vectors) = solver.solve_range_exact(t, il, iu).map_err(|e| match e {
        MrrrError::NonFinite => DcError::NonFinite,
        MrrrError::InvalidRange { il, iu, n } => DcError::InvalidRange { il, iu, n },
        other => DcError::Subset(other),
    })?;
    Ok(Eigen { values, vectors })
}

/// Common interface over every tridiagonal eigensolver in the workspace.
pub trait TridiagEigensolver {
    /// Compute the full eigen-decomposition.
    fn solve(&self, t: &SymTridiag) -> Result<Eigen, DcError>;

    /// Human-readable solver name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Per-solve statistics: one entry per merge node, bottom-up.
#[derive(Clone, Debug, Default)]
pub struct DcStats {
    pub merges: Vec<MergeStat>,
}

impl DcStats {
    /// Weighted average deflation ratio across merges (weights = merge
    /// sizes), the paper's matrix-dependence headline number.
    pub fn overall_deflation(&self) -> f64 {
        let tot: usize = self.merges.iter().map(|m| m.n).sum();
        if tot == 0 {
            return 0.0;
        }
        let defl: usize = self.merges.iter().map(|m| m.n - m.k).sum();
        defl as f64 / tot as f64
    }
}
