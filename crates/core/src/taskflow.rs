//! The paper's solver: D&C as a sequential task flow.
//!
//! The master thread submits the complete task graph up front — one
//! `STEDC` task per leaf and, per merge node, the pipeline
//!
//! ```text
//! ComputeDeflation → {PermuteV, LAED4, ComputeLocalW}ₚ → ReduceW
//!                  → {CopyBackDeflated, ComputeVect, UpdateVect}ₚ
//! ```
//!
//! with `p` ranging over `⌈n_m / nb⌉` panels. Panel tasks carry a GATHERV
//! access on the merge's node key (commuting writers), the join tasks an
//! INOUT access, and a parent's `ComputeDeflation` reads both child node
//! keys — every task has a *constant* number of declared dependencies,
//! the property the paper added GATHERV to QUARK for. Since the deflation
//! count `k` is only known at run time, every panel task is submitted
//! regardless and computes its actual (possibly empty) work range from the
//! shared deflation state — the paper's "matrix-independent DAG".
//!
//! Data is shared through [`SharedData`] buffers; each closure borrows
//! only the disjoint range its declared access covers (see
//! `dcst_runtime::share` for the aliasing contract).

use crate::merge::{
    apply_givens, build_z, compute_vect_panel, copy_back_panel, ensure_finite_merge_inputs,
    finalize_d, local_w_panel, permute_slots, solve_roots_panel, update_vect_panel, MergeStat,
};
use crate::tree::PartitionTree;
use crate::values::{
    deflate_rows, row_update_panel, secular_rows_panel, solve_leaf_values, BoundaryRows,
    RowDeflation,
};
use crate::{DcError, DcOptions, DcStats, Eigen, SolveMode, TridiagEigensolver};
use dcst_matrix::Matrix;
use dcst_qriter::{steqr_mut, ZBlock};
use dcst_runtime::{
    CancelHandle, DagRecorder, DataKey, Runtime, RuntimeMetrics, Scope, SharedData, TaskBuilder,
    Trace,
};
use dcst_secular::Deflation;
use dcst_tridiag::SymTridiag;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const OBJ_NODE: u64 = 1;
const OBJ_X: u64 = 2;
const OBJ_SCALE: u64 = 3;

/// The dependency tracker's key namespace is global to a [`Runtime`], so
/// concurrent submissions onto a *shared* runtime (the service path) must
/// not reuse object ids. Each submission claims a fresh 38-bit block of
/// the 40-bit object-id space from a process-global counter and derives
/// its three object ids from it; the first submission of a process gets
/// the historic `OBJ_NODE`/`OBJ_X`/`OBJ_SCALE` ids.
#[derive(Clone, Copy)]
struct KeySpace {
    node: u64,
    x: u64,
    scale: u64,
}

static KEY_SEQ: AtomicU64 = AtomicU64::new(0);

impl KeySpace {
    fn fresh() -> Self {
        let seq = KEY_SEQ.fetch_add(1, Ordering::Relaxed);
        let base = (seq & ((1u64 << 38) - 1)) << 2;
        KeySpace {
            node: base | OBJ_NODE,
            x: base | OBJ_X,
            scale: base | OBJ_SCALE,
        }
    }
}

/// Start a panel task: GATHERV on the node key (the paper's commuting
/// qualifier) normally, or a serializing INOUT in the ablation mode
/// without the runtime extension.
fn panel_task<'rt>(
    scope: &Scope<'rt>,
    name: &'static str,
    node: DataKey,
    use_gatherv: bool,
) -> TaskBuilder<'rt> {
    if use_gatherv {
        scope.task(name).gatherv(node)
    } else {
        scope.task(name).read_write(node)
    }
}

/// Per-node state shared between the node's tasks. Interior mutability is
/// safe because the runtime orders writers before readers (node-key
/// epochs).
#[derive(Default)]
struct NodeCell {
    defl: Mutex<Option<Arc<Deflation>>>,
    zhat: Mutex<Option<Arc<Vec<f64>>>>,
    idxq: Mutex<Option<Arc<Vec<usize>>>>,
    partials: Mutex<Vec<Option<Vec<f64>>>>,
    stat: Mutex<Option<MergeStat>>,
    /// Rank-structured update plan for this merge; `None` means the dense
    /// path (either the auto-switch chose it or `CompressW` hasn't run —
    /// the node-key epochs guarantee the latter never races `UpdateVect`).
    structured: Mutex<Option<Arc<crate::structured::StructuredUpdate>>>,
    /// Subset pruning plan `(jlo, jhi, dlo, dhi)` for the root merge of a
    /// `SolveMode::Subset` solve, published by `ReduceW` (which the
    /// node-key epochs order before every phase-2 panel): the secular and
    /// deflated storage-slot spans that land in the requested sorted
    /// positions. `None` everywhere else.
    subset_plan: Mutex<Option<(usize, usize, usize, usize)>>,
}

impl NodeCell {
    fn defl(&self) -> Arc<Deflation> {
        self.defl
            .lock()
            .unwrap()
            .clone()
            .expect("deflation state not yet computed")
    }
    fn zhat(&self) -> Arc<Vec<f64>> {
        self.zhat
            .lock()
            .unwrap()
            .clone()
            .expect("zhat not yet computed")
    }
    fn idxq(&self) -> Arc<Vec<usize>> {
        self.idxq
            .lock()
            .unwrap()
            .clone()
            .expect("idxq not yet computed")
    }
}

/// Per-node state of the values-only graph ([`TaskFlowDc::submit_values`]):
/// the node's boundary rows take the place of the full path's eigenvector
/// block, so the whole solve carries O(n) state per node.
#[derive(Default)]
struct ValueCell {
    rd: Mutex<Option<Arc<RowDeflation>>>,
    zhat: Mutex<Option<Arc<Vec<f64>>>>,
    idxq: Mutex<Option<Arc<Vec<usize>>>>,
    partials: Mutex<Vec<Option<Vec<f64>>>>,
    rows: Mutex<Option<BoundaryRows>>,
    stat: Mutex<Option<MergeStat>>,
}

impl ValueCell {
    fn rd(&self) -> Arc<RowDeflation> {
        self.rd
            .lock()
            .unwrap()
            .clone()
            .expect("deflation state not yet computed")
    }
    fn zhat(&self) -> Arc<Vec<f64>> {
        self.zhat
            .lock()
            .unwrap()
            .clone()
            .expect("zhat not yet computed")
    }
    fn idxq(&self) -> Arc<Vec<usize>> {
        self.idxq
            .lock()
            .unwrap()
            .clone()
            .expect("idxq not yet computed")
    }
    fn take_rows(&self) -> BoundaryRows {
        self.rows
            .lock()
            .unwrap()
            .take()
            .expect("boundary rows not yet computed")
    }
}

/// A solve whose task graph has been submitted to a (possibly shared)
/// [`Runtime`] but not yet waited on.
///
/// This is the submit/collect split behind the `dcst serve` daemon: the
/// graph lives in its own runtime [`Scope`], so many requests can be in
/// flight on one worker pool at once, each independently cancellable
/// ([`PendingSolve::cancel_handle`]) and each failing without poisoning
/// its neighbours. [`PendingSolve::wait`] blocks until this submission's
/// tasks drain, then assembles the result exactly as the one-shot
/// [`TaskFlowDc::solve_with_stats`] path does.
pub struct PendingSolve<'rt> {
    scope: Scope<'rt>,
    kind: PendingKind,
}

enum PendingKind {
    /// `n == 0`: nothing was submitted.
    Empty,
    /// The full eigenvector graph (also used, pruned, for large subsets).
    Full(FullPending),
    /// The values-only boundary-row graph.
    Values(ValuesPending),
    /// Small-subset MRRR fallback, run as a single task so it occupies one
    /// worker slot and stays cancellable before it starts.
    Fallback(Arc<Mutex<Option<Result<Eigen, DcError>>>>),
}

/// Collect-phase state of a full (eigenvector) submission: the handles the
/// master must keep to unwrap results after the scope drains. Worker-side
/// clones are released when the scope's finished tasks are garbage
/// collected by `wait`, so `try_unwrap` succeeds.
struct FullPending {
    n: usize,
    subset: Option<(usize, usize)>,
    tree: Arc<PartitionTree>,
    cells: Arc<Vec<NodeCell>>,
    d: SharedData<f64>,
    v: SharedData<f64>,
}

/// Collect-phase state of a values-only submission.
struct ValuesPending {
    n: usize,
    tree: Arc<PartitionTree>,
    cells: Arc<Vec<ValueCell>>,
    d: SharedData<f64>,
}

impl<'rt> PendingSolve<'rt> {
    /// The scope this submission's tasks run in.
    pub fn scope(&self) -> &Scope<'rt> {
        &self.scope
    }

    /// A detached handle that cancels this solve from any thread: queued
    /// tasks are skipped and [`PendingSolve::wait`] reports
    /// [`DcError::Cancelled`] (unless a real failure already won the
    /// scope's first-failure slot).
    pub fn cancel_handle(&self) -> CancelHandle {
        self.scope.cancel_handle()
    }

    /// Cancel this solve in place.
    pub fn cancel(&self) {
        self.scope.cancel();
    }

    /// Block until the submission drains, then collect the result.
    pub fn wait(self) -> Result<(Eigen, DcStats), DcError> {
        self.scope.wait()?;
        match self.kind {
            PendingKind::Empty => Ok((
                Eigen {
                    values: vec![],
                    vectors: Matrix::zeros(0, 0),
                },
                DcStats::default(),
            )),
            PendingKind::Full(st) => st.collect(),
            PendingKind::Values(st) => st.collect(),
            PendingKind::Fallback(slot) => {
                let res = slot
                    .lock()
                    .unwrap()
                    .take()
                    .expect("fallback task ran to completion");
                res.map(|eig| (eig, DcStats::default()))
            }
        }
    }
}

impl FullPending {
    fn collect(self) -> Result<(Eigen, DcStats), DcError> {
        let FullPending {
            n,
            subset,
            tree,
            cells,
            d,
            v,
        } = self;
        let values = d
            .try_unwrap()
            .unwrap_or_else(|_| panic!("d buffer still shared after wait"));
        let vectors = v
            .try_unwrap()
            .unwrap_or_else(|_| panic!("v buffer still shared after wait"));
        let mut stats = DcStats::default();
        for &m in &tree.merges_postorder() {
            if let Some(stat) = cells[m].stat.lock().unwrap().take() {
                stats.merges.push(stat);
            }
        }
        if let Some((il, iu)) = subset {
            // d is still in physical slot order (the sort tasks were
            // skipped); gather the k requested values/columns directly.
            let idxq = cells[tree.root].idxq();
            let ksub = iu - il + 1;
            let mut vals = Vec::with_capacity(ksub);
            let mut vsub = vec![0.0f64; n * ksub];
            for (c, p) in (il..=iu).enumerate() {
                let src = idxq[p];
                vals.push(values[src]);
                vsub[c * n..(c + 1) * n].copy_from_slice(&vectors[src * n..(src + 1) * n]);
            }
            return Ok((
                Eigen {
                    values: vals,
                    vectors: Matrix::from_vec(n, ksub, vsub),
                },
                stats,
            ));
        }
        Ok((
            Eigen {
                values,
                vectors: Matrix::from_vec(n, n, vectors),
            },
            stats,
        ))
    }
}

impl ValuesPending {
    fn collect(self) -> Result<(Eigen, DcStats), DcError> {
        let ValuesPending { n, tree, cells, d } = self;
        let values = d
            .try_unwrap()
            .unwrap_or_else(|_| panic!("d buffer still shared after wait"));
        let mut stats = DcStats::default();
        for &m in &tree.merges_postorder() {
            if let Some(stat) = cells[m].stat.lock().unwrap().take() {
                stats.merges.push(stat);
            }
        }
        Ok((
            Eigen {
                values,
                vectors: Matrix::zeros(n, 0),
            },
            stats,
        ))
    }
}

/// The task-flow Divide & Conquer eigensolver (the paper's contribution).
pub struct TaskFlowDc {
    opts: DcOptions,
}

impl TaskFlowDc {
    pub fn new(opts: DcOptions) -> Self {
        TaskFlowDc { opts }
    }

    /// Solve and return per-merge statistics.
    pub fn solve_with_stats(&self, t: &SymTridiag) -> Result<(Eigen, DcStats), DcError> {
        let rt = Runtime::new(self.opts.threads);
        let pending = self.submit(t, &rt)?;
        pending.wait()
    }

    /// Solve while recording an execution trace (Figures 3 and 4).
    pub fn solve_traced(&self, t: &SymTridiag) -> Result<(Eigen, DcStats, Trace), DcError> {
        let rt = Runtime::new(self.opts.threads);
        rt.enable_tracing();
        let (eig, stats) = self.submit(t, &rt)?.wait()?;
        Ok((eig, stats, rt.take_trace()))
    }

    /// Solve with full observability: execution trace plus the pool's
    /// scheduler counters, taken from the same run so the metrics
    /// reconcile with the trace (executed-task count == record count;
    /// counters are all zeros unless built with the `metrics` feature).
    #[allow(clippy::type_complexity)]
    pub fn solve_observed(
        &self,
        t: &SymTridiag,
    ) -> Result<(Eigen, DcStats, Trace, RuntimeMetrics), DcError> {
        let rt = Runtime::new(self.opts.threads);
        rt.enable_tracing();
        let (eig, stats) = self.submit(t, &rt)?.wait()?;
        let trace = rt.take_trace();
        let metrics = rt.runtime_metrics();
        Ok((eig, stats, trace, metrics))
    }

    /// Solve while recording the task DAG (Figure 2).
    pub fn solve_with_dag(&self, t: &SymTridiag) -> Result<(Eigen, DagRecorder), DcError> {
        let rt = Runtime::new(self.opts.threads);
        rt.enable_dag_recording();
        let (eig, _) = self.submit(t, &rt)?.wait()?;
        Ok((eig, rt.take_dag().expect("dag recording was enabled")))
    }

    /// Submit this solve's task graph onto `rt` without waiting: the
    /// daemon path. The graph runs in its own [`Scope`], so any number of
    /// submissions can coexist on one runtime; each is independently
    /// cancellable and collects its own failure.
    pub fn submit<'rt>(
        &self,
        t: &SymTridiag,
        rt: &'rt Runtime,
    ) -> Result<PendingSolve<'rt>, DcError> {
        self.submit_scoped(t, rt.scope())
    }

    /// [`TaskFlowDc::submit`], but every task of the graph rides the
    /// pool's high-priority injector lane — the service's priority class.
    pub fn submit_priority<'rt>(
        &self,
        t: &SymTridiag,
        rt: &'rt Runtime,
    ) -> Result<PendingSolve<'rt>, DcError> {
        self.submit_scoped(t, rt.priority_scope())
    }

    /// Fused batch solve: submit every problem's graph before waiting on
    /// any of them, so panel tasks from different problems interleave in
    /// the shared pool's ready queue and the per-problem GEMM/LAED4
    /// panels fill worker idle gaps left by their neighbours' spines.
    pub fn solve_batch(&self, ts: &[SymTridiag]) -> Vec<Result<(Eigen, DcStats), DcError>> {
        let rt = Runtime::new(self.opts.threads);
        self.solve_batch_on(ts, &rt)
    }

    /// [`TaskFlowDc::solve_batch`] on a caller-provided (shared) runtime.
    pub fn solve_batch_on(
        &self,
        ts: &[SymTridiag],
        rt: &Runtime,
    ) -> Vec<Result<(Eigen, DcStats), DcError>> {
        let pending: Vec<Result<PendingSolve<'_>, DcError>> =
            ts.iter().map(|t| self.submit(t, rt)).collect();
        pending.into_iter().map(|p| p?.wait()).collect()
    }

    fn submit_scoped<'rt>(
        &self,
        t: &SymTridiag,
        scope: Scope<'rt>,
    ) -> Result<PendingSolve<'rt>, DcError> {
        let n = t.n();
        if t.has_non_finite() {
            return Err(DcError::NonFinite);
        }
        if n == 0 {
            return Ok(PendingSolve {
                scope,
                kind: PendingKind::Empty,
            });
        }
        // Mode dispatch (as in the comparator drivers): values-only takes
        // the boundary-row graph, a small subset routes to MRRR, and a
        // large subset runs the graph below with root-merge pruning.
        let subset = match self.opts.mode {
            SolveMode::Full => None,
            SolveMode::ValuesOnly => {
                let st = self.submit_values(t, &scope, KeySpace::fresh());
                return Ok(PendingSolve {
                    scope,
                    kind: PendingKind::Values(st),
                });
            }
            SolveMode::Subset { il, iu } => {
                crate::validate_subset(il, iu, n)?;
                if crate::subset_uses_fallback(il, iu, n) {
                    // One worker-slot task keeps the MRRR fallback inside
                    // the scope discipline (cancellable before it starts,
                    // counted by admission control) — MRRR brings its own
                    // internal parallelism.
                    let slot = Arc::new(Mutex::new(None));
                    let out = slot.clone();
                    let t = t.clone();
                    let threads = self.opts.threads;
                    scope.task("SubsetFallback").spawn(move || {
                        *out.lock().unwrap() = Some(crate::subset_fallback(&t, il, iu, threads));
                    });
                    return Ok(PendingSolve {
                        scope,
                        kind: PendingKind::Fallback(slot),
                    });
                }
                Some((il, iu))
            }
        };
        let st = self.submit_full(t, &scope, KeySpace::fresh(), subset);
        Ok(PendingSolve {
            scope,
            kind: PendingKind::Full(st),
        })
    }

    fn submit_full(
        &self,
        t: &SymTridiag,
        scope: &Scope<'_>,
        ks: KeySpace,
        subset: Option<(usize, usize)>,
    ) -> FullPending {
        let n = t.n();
        let nb = self.opts.nb.max(1);
        let orgnrm = t.max_norm();
        let scale = if orgnrm > 0.0 { 1.0 / orgnrm } else { 1.0 };

        let tree = Arc::new(PartitionTree::build(n, self.opts.min_part));
        // Signed β per internal node, computed from the unscaled input.
        let mut betas = vec![0.0f64; tree.nodes.len()];
        for &m in &tree.merges_postorder() {
            let node = &tree.nodes[m];
            betas[m] = t.e[node.off + node.n1 - 1] * scale;
        }
        let cuts: Vec<usize> = tree.cuts();

        let d = SharedData::new(t.d.clone());
        let e = SharedData::new(t.e.clone());
        let v = SharedData::new(vec![0.0f64; n * n]);
        let ws = SharedData::new(vec![0.0f64; n * n]);
        let x = SharedData::new(vec![0.0f64; n * n]);
        let lam = SharedData::new(vec![0.0f64; n]);
        let cells: Arc<Vec<NodeCell>> =
            Arc::new((0..tree.nodes.len()).map(|_| NodeCell::default()).collect());

        let key_node = move |id: usize| DataKey::new(ks.node, id as u64);
        let use_gatherv = self.opts.use_gatherv;
        let key_x = move |col: usize| DataKey::new(ks.x, col as u64);
        let key_scale = DataKey::new(ks.scale, 0);

        // Bind each buffer to the keys tasks declare when touching it, so
        // the `access-check` shadow tracker can validate every borrow in
        // the graph below against the declared footprint.
        #[cfg(feature = "access-check")]
        {
            let node_keys: Vec<DataKey> = (0..tree.nodes.len()).map(key_node).collect();
            let mut scale_and_nodes = vec![key_scale];
            scale_and_nodes.extend_from_slice(&node_keys);
            d.bind_keys(&scale_and_nodes);
            e.bind_keys(&scale_and_nodes);
            v.bind_keys(&node_keys);
            ws.bind_keys(&node_keys);
            let mut cols_and_nodes: Vec<DataKey> = (0..n).map(key_x).collect();
            cols_and_nodes.extend_from_slice(&node_keys);
            x.bind_keys(&cols_and_nodes);
            lam.bind_keys(&cols_and_nodes);
        }

        // ---- Scale T: bring the matrix to unit max-norm and apply the
        // rank-one tears at every cut.
        {
            let (d, e) = (d.clone(), e.clone());
            let cuts = cuts.clone();
            scope
                .task("Scale")
                .high_priority()
                .write(key_scale)
                .spawn(move || {
                    // SAFETY: first task to touch d/e; leaves wait on the key.
                    let ds = unsafe { d.slice_mut() };
                    let es = unsafe { e.slice_mut() };
                    if scale != 1.0 {
                        ds.iter_mut().for_each(|v| *v *= scale);
                        es.iter_mut().for_each(|v| *v *= scale);
                    }
                    for &c in &cuts {
                        let b = es[c - 1].abs();
                        ds[c - 1] -= b;
                        ds[c] -= b;
                    }
                });
        }

        // ---- leaves: STEDC (QR iteration) into the diagonal block of V.
        for &l in &tree.leaves() {
            let node = &tree.nodes[l];
            let (off, nm) = (node.off, node.n);
            let (d, e, v) = (d.clone(), e.clone(), v.clone());
            let cells = cells.clone();
            scope
                .task("STEDC")
                .high_priority()
                .read(key_scale)
                .write(key_node(l))
                .spawn_try(move || -> Result<(), DcError> {
                    // SAFETY: exclusive block ranges per leaf; ordered after
                    // Scale by the key and before the parent merge by N(l).
                    let db = unsafe { d.range_mut(off..off + nm) };
                    let eb = unsafe { e.range_mut(off..off + nm - 1) };
                    let ld = d.len();
                    let vcols = unsafe { v.range_mut(off * ld..(off + nm) * ld) };
                    for j in 0..nm {
                        vcols[j * ld + off + j] = 1.0;
                    }
                    let z = ZBlock {
                        buf: &mut vcols[off..],
                        ld,
                        nrows: nm,
                    };
                    steqr_mut(db, eb, Some(z))
                        .map_err(|err| DcError::Leaf(err.with_offset(off)))?;
                    *cells[l].idxq.lock().unwrap() = Some(Arc::new((0..nm).collect()));
                    Ok(())
                });
        }

        // ---- merges, bottom-up.
        for &m in &tree.merges_postorder() {
            let node = &tree.nodes[m];
            let (off, nm, n1) = (node.off, node.n, node.n1);
            let (lc, rc) = node.children.unwrap();
            let beta = betas[m];
            let npanels = nm.div_ceil(nb);
            let block_end = move |cols: usize| (off + cols - 1) * n + off + nm;
            // Root merge of a subset solve: ReduceW publishes the pruning
            // plan and the phase-2 panels clamp their ranges to it.
            let node_subset = if m == tree.root { subset } else { None };

            // ComputeDeflation: the only task reading the children's state.
            {
                let (d, v) = (d.clone(), v.clone());
                let cells = cells.clone();
                // The merge spine (deflation → … → ReduceW) gates every
                // panel task of this node and of all ancestors: schedule it
                // through the runtime's priority lane.
                scope
                    .task("ComputeDeflation")
                    .high_priority()
                    .read(key_node(lc))
                    .read(key_node(rc))
                    .read_write(key_node(m))
                    .spawn_try(move || -> Result<(), DcError> {
                        // SAFETY: epoch-exclusive access to the block.
                        let db = unsafe { d.range_mut(off..off + nm) };
                        let vb = unsafe { v.range_mut(off * n + off..block_end(nm)) };
                        let z = build_z(vb, n, nm, n1);
                        ensure_finite_merge_inputs(db, &z, off)?;
                        let idxq_l = cells[lc].idxq();
                        let idxq_r = cells[rc].idxq();
                        let mut idxq: Vec<usize> = idxq_l.to_vec();
                        idxq.extend(idxq_r.iter().map(|&r| r + n1));
                        let defl = dcst_secular::deflate(&dcst_secular::DeflationInput {
                            d: db,
                            z: &z,
                            beta,
                            n1,
                            idxq: &idxq,
                        });
                        apply_givens(vb, n, nm, &defl.givens);
                        *cells[m].partials.lock().unwrap() = vec![None; npanels];
                        *cells[m].defl.lock().unwrap() = Some(Arc::new(defl));
                        Ok(())
                    });
            }

            // Phase 1 panels.
            for p in 0..npanels {
                let s0 = p * nb;
                let s1 = ((p + 1) * nb).min(nm);
                // PermuteV
                {
                    let (v, ws) = (v.clone(), ws.clone());
                    let cells = cells.clone();
                    let mut task = panel_task(scope, "PermuteV", key_node(m), use_gatherv);
                    if !self.opts.extra_workspace {
                        // Without extra workspace the paper serializes the
                        // permute with the panel's LAED4 (shared staging).
                        task = task.write(key_x(off + s0));
                    }
                    task.spawn(move || {
                        let defl = cells[m].defl();
                        // SAFETY: reads the whole block (shared, no writer
                        // in this phase), writes only columns s0..s1 of ws.
                        let vb = unsafe { v.range(off * n + off..block_end(nm)) };
                        let wcols = unsafe {
                            ws.range_mut((off + s0) * n + off..(off + s1 - 1) * n + off + nm)
                        };
                        permute_slots(vb, wcols, n, nm, n1, &defl, s0..s1);
                    });
                }
                // LAED4
                {
                    let (x, lam) = (x.clone(), lam.clone());
                    let cells = cells.clone();
                    panel_task(scope, "LAED4", key_node(m), use_gatherv)
                        .write(key_x(off + s0))
                        .spawn_try(move || {
                            let defl = cells[m].defl();
                            let k = defl.k;
                            let j0 = s0.min(k);
                            let j1 = s1.min(k);
                            if j0 >= j1 {
                                return Ok(());
                            }
                            // SAFETY: exclusive column range of X and of lam.
                            let xc = unsafe {
                                x.range_mut((off + j0) * n + off..(off + j1 - 1) * n + off + k)
                            };
                            let lo = unsafe { lam.range_mut(off + j0..off + j1) };
                            solve_roots_panel(&defl, xc, n, j0..j1, lo)
                                .map_err(|err| err.with_offset(off))
                        });
                }
                // ComputeLocalW
                {
                    let x = x.clone();
                    let cells = cells.clone();
                    panel_task(scope, "ComputeLocalW", key_node(m), use_gatherv)
                        .read(key_x(off + s0))
                        .spawn(move || {
                            let defl = cells[m].defl();
                            let k = defl.k;
                            let j0 = s0.min(k);
                            let j1 = s1.min(k);
                            if j0 >= j1 {
                                return;
                            }
                            // SAFETY: shared read of this panel's X columns.
                            let xc = unsafe {
                                x.range((off + j0) * n + off..(off + j1 - 1) * n + off + k)
                            };
                            let part = local_w_panel(&defl, xc, n, j0..j1);
                            cells[m].partials.lock().unwrap()[p] = Some(part);
                        });
                }
            }

            // ReduceW: join, build ẑ, finalize the block diagonal.
            {
                let (d, lam) = (d.clone(), lam.clone());
                let cells = cells.clone();
                scope
                    .task("ReduceW")
                    .high_priority()
                    .read_write(key_node(m))
                    .spawn(move || {
                        let defl = cells[m].defl();
                        let k = defl.k;
                        if k > 0 {
                            let parts: Vec<Vec<f64>> = cells[m]
                                .partials
                                .lock()
                                .unwrap()
                                .iter_mut()
                                .filter_map(|p| p.take())
                                .collect();
                            let zhat = dcst_secular::reduce_w(&defl.w, &parts);
                            *cells[m].zhat.lock().unwrap() = Some(Arc::new(zhat));
                        }
                        // SAFETY: epoch-exclusive d block; lam is read-only now.
                        let db = unsafe { d.range_mut(off..off + nm) };
                        let ls = unsafe { lam.range(off..off + k) };
                        let idxq = finalize_d(&defl, ls, db);
                        if let Some((il, iu)) = node_subset {
                            *cells[m].subset_plan.lock().unwrap() =
                                Some(crate::merge::subset_slot_spans(&idxq[il..=iu], k, nm));
                        }
                        *cells[m].idxq.lock().unwrap() = Some(Arc::new(idxq));
                        *cells[m].stat.lock().unwrap() = Some(MergeStat { n: nm, n1, k });
                    });
            }

            // Phase 2a panels (CopyBackDeflated + ComputeVect).
            for p in 0..npanels {
                let s0 = p * nb;
                let s1 = ((p + 1) * nb).min(nm);
                // CopyBackDeflated
                {
                    let (v, ws) = (v.clone(), ws.clone());
                    let cells = cells.clone();
                    let mut task = panel_task(scope, "CopyBackDeflated", key_node(m), use_gatherv);
                    if !self.opts.extra_workspace {
                        task = task.write(key_x(off + s0));
                    }
                    task.spawn(move || {
                        let defl = cells[m].defl();
                        let k = defl.k;
                        let mut c0 = s0.max(k);
                        let mut c1 = s1.max(k);
                        if let Some((_, _, dlo, dhi)) = *cells[m].subset_plan.lock().unwrap() {
                            c0 = c0.max(dlo);
                            c1 = c1.min(dhi);
                        }
                        if c0 >= c1 {
                            return;
                        }
                        // SAFETY: disjoint deflated column ranges.
                        let wc = unsafe {
                            ws.range((off + c0) * n + off..(off + c1 - 1) * n + off + nm)
                        };
                        let vc = unsafe {
                            v.range_mut((off + c0) * n + off..(off + c1 - 1) * n + off + nm)
                        };
                        copy_back_panel(wc, vc, n, nm, c1 - c0);
                    });
                }
                // ComputeVect
                {
                    let x = x.clone();
                    let cells = cells.clone();
                    panel_task(scope, "ComputeVect", key_node(m), use_gatherv)
                        .read_write(key_x(off + s0))
                        .spawn(move || {
                            let defl = cells[m].defl();
                            let k = defl.k;
                            let mut j0 = s0.min(k);
                            let mut j1 = s1.min(k);
                            if let Some((jlo, jhi, _, _)) = *cells[m].subset_plan.lock().unwrap() {
                                j0 = j0.max(jlo);
                                j1 = j1.min(jhi);
                            }
                            if j0 >= j1 {
                                return;
                            }
                            let zhat = cells[m].zhat();
                            // SAFETY: exclusive column range of X.
                            let xc = unsafe {
                                x.range_mut((off + j0) * n + off..(off + j1 - 1) * n + off + k)
                            };
                            compute_vect_panel(&defl, &zhat, xc, n, j0..j1);
                        });
                }
            }

            // CompressW: once every ComputeVect epoch retires, rank-probe
            // the secular matrix and build the compressed operands +
            // gathered Q when the structured path wins (crate::structured).
            // The INOUT access on the node key orders it after the phase-2a
            // GATHERV writers and before the UpdateVect group; its borrows
            // (whole ws/X block, read) are covered by the node key the
            // buffers are bound to, so the access-check tracker validates
            // the footprint.
            {
                let (ws, x) = (ws.clone(), x.clone());
                let cells = cells.clone();
                scope
                    .task("CompressW")
                    .high_priority()
                    .read_write(key_node(m))
                    .spawn(move || {
                        if node_subset.is_some() {
                            // Subset-pruned root: the panels update only a
                            // column slice, for which the dense GEMMs are
                            // already minimal — rank-probing the full
                            // secular matrix would cost more than it saves.
                            return;
                        }
                        let defl = cells[m].defl();
                        let k = defl.k;
                        if k == 0 {
                            return;
                        }
                        // SAFETY: node-key epoch excludes every writer of
                        // the block; ws and X are read-shared here.
                        let wb = unsafe { ws.range(off * n + off..block_end(k)) };
                        let xb = unsafe { x.range(off * n + off..block_end(k)) };
                        let plan = crate::structured::plan_update(wb, xb, n, n, nm, n1, &defl, n);
                        if let Some(su) = plan {
                            *cells[m].structured.lock().unwrap() = Some(Arc::new(su));
                        }
                    });
            }
            // StructBasis: the per-tile Q·U products, fanned out
            // round-robin over a fixed panel-count of commuting tasks (the
            // DAG stays matrix-independent; each is a no-op on dense
            // merges). They touch only plan-owned buffers, so the node key
            // is their whole footprint.
            for p in 0..npanels {
                let cells = cells.clone();
                panel_task(scope, "StructBasis", key_node(m), use_gatherv).spawn(move || {
                    let su = cells[m].structured.lock().unwrap().clone();
                    if let Some(su) = su {
                        su.compute_basis_chunk(p, npanels, 1);
                    }
                });
            }
            // StructJoin: epoch barrier so every basis product is in place
            // before the first UpdateVect reads them.
            scope
                .task("StructJoin")
                .high_priority()
                .read_write(key_node(m))
                .spawn(|| {});

            // Phase 2b panels: the eigenvector update itself.
            for p in 0..npanels {
                let s0 = p * nb;
                let s1 = ((p + 1) * nb).min(nm);
                // UpdateVect (dense: both structured GEMMs for this panel;
                // structured: the compressed multiply for its columns).
                {
                    let (v, ws, x) = (v.clone(), ws.clone(), x.clone());
                    let cells = cells.clone();
                    panel_task(scope, "UpdateVect", key_node(m), use_gatherv)
                        .read(key_x(off + s0))
                        .spawn_try(move || {
                            let defl = cells[m].defl();
                            let k = defl.k;
                            let mut j0 = s0.min(k);
                            let mut j1 = s1.min(k);
                            if let Some((jlo, jhi, _, _)) = *cells[m].subset_plan.lock().unwrap() {
                                j0 = j0.max(jlo);
                                j1 = j1.min(jhi);
                            }
                            if j0 >= j1 {
                                return Ok(());
                            }
                            if let Some(su) = cells[m].structured.lock().unwrap().clone() {
                                // Relabel this record so traces show the
                                // structured and dense variants distinctly.
                                dcst_runtime::set_task_trace_name("UpdateVectStructured");
                                // SAFETY: V columns j0..j1 (full height)
                                // are exclusive to this panel; the plan
                                // owns its operands.
                                let vc = unsafe { v.range_mut((off + j0) * n..(off + j1) * n) };
                                return su.update_panel(vc, n, off, nm, j0..j1, 1);
                            }
                            // SAFETY: ws block is read-shared in this phase; V
                            // columns j0..j1 (full height) are exclusive.
                            let wb = unsafe { ws.range(off * n + off..block_end(k)) };
                            let xc = unsafe {
                                x.range((off + j0) * n + off..(off + j1 - 1) * n + off + k)
                            };
                            let vc = unsafe { v.range_mut((off + j0) * n..(off + j1) * n) };
                            update_vect_panel(wb, xc, n, vc, n, off, nm, n1, &defl, j0..j1, 1)
                        });
                }
            }
        }

        // ---- final sort + scale back on the root.
        let root = tree.root;
        let nroot_panels = n.div_ceil(nb);
        // A subset solve gathers its k columns on the main thread after
        // the graph drains — no full column sort.
        if !tree.nodes[root].is_leaf() && subset.is_none() {
            {
                let d = d.clone();
                let cells = cells.clone();
                scope
                    .task("SortEigenvalues")
                    .high_priority()
                    .read_write(key_node(root))
                    .spawn(move || {
                        let idxq = cells[root].idxq();
                        // SAFETY: epoch-exclusive d.
                        let ds = unsafe { d.slice_mut() };
                        let tmp: Vec<f64> = idxq.iter().map(|&s| ds[s]).collect();
                        ds.copy_from_slice(&tmp);
                    });
            }
            for p in 0..nroot_panels {
                let r0 = p * nb;
                let r1 = ((p + 1) * nb).min(n);
                let (v, ws) = (v.clone(), ws.clone());
                let cells = cells.clone();
                panel_task(scope, "SortCopy", key_node(root), use_gatherv).spawn(move || {
                    let idxq = cells[root].idxq();
                    // SAFETY: v fully read-shared; ws target columns
                    // exclusive per panel.
                    let vs = unsafe { v.slice() };
                    let wt = unsafe { ws.range_mut(r0 * n..r1 * n) };
                    // Full-height columns: batch runs of consecutive
                    // sources into single spanning copies.
                    let cols = r1 - r0;
                    let mut t = 0;
                    while t < cols {
                        let src = idxq[r0 + t];
                        let mut len = 1;
                        while t + len < cols && idxq[r0 + t + len] == src + len {
                            len += 1;
                        }
                        wt[t * n..(t + len) * n].copy_from_slice(&vs[src * n..(src + len) * n]);
                        t += len;
                    }
                });
            }
            scope
                .task("SortBarrier")
                .high_priority()
                .read_write(key_node(root))
                .spawn(|| {});
            for p in 0..nroot_panels {
                let r0 = p * nb;
                let r1 = ((p + 1) * nb).min(n);
                let (v, ws) = (v.clone(), ws.clone());
                panel_task(scope, "SortCopyBack", key_node(root), use_gatherv).spawn(move || {
                    // SAFETY: ws read-shared, v target columns exclusive.
                    let wsrc = unsafe { ws.range(r0 * n..r1 * n) };
                    let vt = unsafe { v.range_mut(r0 * n..r1 * n) };
                    vt.copy_from_slice(wsrc);
                });
            }
        }
        {
            let d = d.clone();
            scope
                .task("ScaleBack")
                .high_priority()
                .read_write(key_node(root))
                .spawn(move || {
                    if scale != 1.0 {
                        // SAFETY: epoch-exclusive d.
                        let ds = unsafe { d.slice_mut() };
                        ds.iter_mut().for_each(|x| *x *= orgnrm);
                    }
                });
        }

        // Submission done: the master drops its e/ws/x/lam handles here;
        // the workers' clones die with their tasks' GC at wait, so the
        // collect phase can unwrap d and v.
        FullPending {
            n,
            subset,
            tree,
            cells,
            d,
            v,
        }
    }

    /// The values-only task graph ([`SolveMode::ValuesOnly`]): the same
    /// matrix-independent DAG discipline as the full solve, but built on
    /// boundary-row propagation (`crate::values`), so the three n×n
    /// V/WS/X buffers disappear entirely — per-node state is two O(n)
    /// rows plus the deflation record. This is the memory reduction the
    /// `BENCH_modes.json` high-water gate measures.
    fn submit_values(&self, t: &SymTridiag, scope: &Scope<'_>, ks: KeySpace) -> ValuesPending {
        let n = t.n();
        let nb = self.opts.nb.max(1);
        let orgnrm = t.max_norm();
        let scale = if orgnrm > 0.0 { 1.0 / orgnrm } else { 1.0 };

        let tree = Arc::new(PartitionTree::build(n, self.opts.min_part));
        let mut betas = vec![0.0f64; tree.nodes.len()];
        for &m in &tree.merges_postorder() {
            let node = &tree.nodes[m];
            betas[m] = t.e[node.off + node.n1 - 1] * scale;
        }
        let cuts: Vec<usize> = tree.cuts();

        let d = SharedData::new(t.d.clone());
        let e = SharedData::new(t.e.clone());
        let lam = SharedData::new(vec![0.0f64; n]);
        let cells: Arc<Vec<ValueCell>> = Arc::new(
            (0..tree.nodes.len())
                .map(|_| ValueCell::default())
                .collect(),
        );

        let key_node = move |id: usize| DataKey::new(ks.node, id as u64);
        let use_gatherv = self.opts.use_gatherv;
        let key_x = move |col: usize| DataKey::new(ks.x, col as u64);
        let key_scale = DataKey::new(ks.scale, 0);

        #[cfg(feature = "access-check")]
        {
            let node_keys: Vec<DataKey> = (0..tree.nodes.len()).map(key_node).collect();
            let mut scale_and_nodes = vec![key_scale];
            scale_and_nodes.extend_from_slice(&node_keys);
            d.bind_keys(&scale_and_nodes);
            e.bind_keys(&scale_and_nodes);
            let mut cols_and_nodes: Vec<DataKey> = (0..n).map(key_x).collect();
            cols_and_nodes.extend_from_slice(&node_keys);
            lam.bind_keys(&cols_and_nodes);
        }

        // ---- Scale T + rank-one tears (identical to the full graph).
        {
            let (d, e) = (d.clone(), e.clone());
            let cuts = cuts.clone();
            scope
                .task("Scale")
                .high_priority()
                .write(key_scale)
                .spawn(move || {
                    // SAFETY: first task to touch d/e; leaves wait on the key.
                    let ds = unsafe { d.slice_mut() };
                    let es = unsafe { e.slice_mut() };
                    if scale != 1.0 {
                        ds.iter_mut().for_each(|v| *v *= scale);
                        es.iter_mut().for_each(|v| *v *= scale);
                    }
                    for &c in &cuts {
                        let b = es[c - 1].abs();
                        ds[c - 1] -= b;
                        ds[c] -= b;
                    }
                });
        }

        // ---- leaves: QR iteration accumulating only the 2×nm row block.
        for &l in &tree.leaves() {
            let node = &tree.nodes[l];
            let (off, nm) = (node.off, node.n);
            let (d, e) = (d.clone(), e.clone());
            let cells = cells.clone();
            scope
                .task("STEDC")
                .high_priority()
                .read(key_scale)
                .write(key_node(l))
                .spawn_try(move || -> Result<(), DcError> {
                    // SAFETY: exclusive d block per leaf; the e block is
                    // copied out under a shared read (no writer after
                    // Scale).
                    let db = unsafe { d.range_mut(off..off + nm) };
                    let eb = unsafe { e.range(off..off + nm - 1) }.to_vec();
                    let rows = solve_leaf_values(db, eb, off)?;
                    *cells[l].rows.lock().unwrap() = Some(rows);
                    *cells[l].idxq.lock().unwrap() = Some(Arc::new((0..nm).collect()));
                    Ok(())
                });
        }

        // ---- merges, bottom-up: deflation → pass-1 panels → ReduceW →
        // pass-2 row-update panels.
        for &m in &tree.merges_postorder() {
            let node = &tree.nodes[m];
            let (off, nm, n1) = (node.off, node.n, node.n1);
            let (lc, rc) = node.children.unwrap();
            let beta = betas[m];
            let npanels = nm.div_ceil(nb);

            // ComputeDeflation: consumes the children's boundary rows.
            {
                let d = d.clone();
                let cells = cells.clone();
                scope
                    .task("ComputeDeflation")
                    .high_priority()
                    .read(key_node(lc))
                    .read(key_node(rc))
                    .read_write(key_node(m))
                    .spawn_try(move || -> Result<(), DcError> {
                        // SAFETY: epoch-exclusive access to the d block.
                        let db = unsafe { d.range_mut(off..off + nm) };
                        let rows_l = cells[lc].take_rows();
                        let rows_r = cells[rc].take_rows();
                        let idxq_l = cells[lc].idxq();
                        let idxq_r = cells[rc].idxq();
                        let rd =
                            deflate_rows(db, n1, beta, off, &rows_l, &rows_r, &idxq_l, &idxq_r)?;
                        // Deflated slots pass their row entries through
                        // unchanged; the pass-2 panels overwrite j < k.
                        *cells[m].rows.lock().unwrap() = Some(BoundaryRows {
                            first: rd.w_first.clone(),
                            last: rd.w_last.clone(),
                        });
                        *cells[m].partials.lock().unwrap() = vec![None; npanels];
                        *cells[m].rd.lock().unwrap() = Some(Arc::new(rd));
                        Ok(())
                    });
            }

            // Pass-1 panels: secular roots + running local-W partial.
            for p in 0..npanels {
                let s0 = p * nb;
                let s1 = ((p + 1) * nb).min(nm);
                let lam = lam.clone();
                let cells = cells.clone();
                panel_task(scope, "LAED4", key_node(m), use_gatherv)
                    .write(key_x(off + s0))
                    .spawn_try(move || -> Result<(), DcError> {
                        let rd = cells[m].rd();
                        let k = rd.defl.k;
                        let j0 = s0.min(k);
                        let j1 = s1.min(k);
                        if j0 >= j1 {
                            return Ok(());
                        }
                        // SAFETY: exclusive lam range per panel.
                        let lo = unsafe { lam.range_mut(off + j0..off + j1) };
                        let part = secular_rows_panel(&rd.defl, j0..j1, lo, off)?;
                        cells[m].partials.lock().unwrap()[p] = Some(part);
                        Ok(())
                    });
            }

            // ReduceW: join partials into ẑ, finalize the block diagonal.
            {
                let (d, lam) = (d.clone(), lam.clone());
                let cells = cells.clone();
                scope
                    .task("ReduceW")
                    .high_priority()
                    .read_write(key_node(m))
                    .spawn(move || {
                        let rd = cells[m].rd();
                        let k = rd.defl.k;
                        if k > 0 {
                            let parts: Vec<Vec<f64>> = cells[m]
                                .partials
                                .lock()
                                .unwrap()
                                .iter_mut()
                                .filter_map(|p| p.take())
                                .collect();
                            let zhat = dcst_secular::reduce_w(&rd.defl.w, &parts);
                            *cells[m].zhat.lock().unwrap() = Some(Arc::new(zhat));
                        }
                        // SAFETY: epoch-exclusive d block; lam read-only now.
                        let db = unsafe { d.range_mut(off..off + nm) };
                        let ls = unsafe { lam.range(off..off + k) };
                        let idxq = finalize_d(&rd.defl, ls, db);
                        *cells[m].idxq.lock().unwrap() = Some(Arc::new(idxq));
                        *cells[m].stat.lock().unwrap() = Some(MergeStat { n: nm, n1, k });
                    });
            }

            // Pass-2 panels: update the merged boundary rows. The root's
            // rows have no reader, so its whole group is elided — a
            // size-dependent (not matrix-dependent) asymmetry, like the
            // panel counts themselves.
            if m != tree.root {
                for p in 0..npanels {
                    let s0 = p * nb;
                    let s1 = ((p + 1) * nb).min(nm);
                    let cells = cells.clone();
                    panel_task(scope, "RowUpdate", key_node(m), use_gatherv).spawn_try(
                        move || -> Result<(), DcError> {
                            let rd = cells[m].rd();
                            let k = rd.defl.k;
                            let j0 = s0.min(k);
                            let j1 = s1.min(k);
                            if j0 >= j1 {
                                return Ok(());
                            }
                            let zhat = cells[m].zhat();
                            // No shared-buffer borrows: the kernel re-solves
                            // the secular roots from the node's own deflation
                            // state (pass 2 of the two-pass scheme).
                            let (f, l) = row_update_panel(&rd, &zhat, j0..j1, off)?;
                            let mut rows = cells[m].rows.lock().unwrap();
                            let rows = rows.as_mut().expect("rows initialized by deflation");
                            rows.first[j0..j1].copy_from_slice(&f);
                            rows.last[j0..j1].copy_from_slice(&l);
                            Ok(())
                        },
                    );
                }
            }
        }

        // ---- final sort + scale back (values only: a gather on d).
        let root = tree.root;
        if !tree.nodes[root].is_leaf() {
            let d = d.clone();
            let cells = cells.clone();
            scope
                .task("SortEigenvalues")
                .high_priority()
                .read_write(key_node(root))
                .spawn(move || {
                    let idxq = cells[root].idxq();
                    // SAFETY: epoch-exclusive d.
                    let ds = unsafe { d.slice_mut() };
                    let tmp: Vec<f64> = idxq.iter().map(|&s| ds[s]).collect();
                    ds.copy_from_slice(&tmp);
                });
        }
        {
            let d = d.clone();
            scope
                .task("ScaleBack")
                .high_priority()
                .read_write(key_node(root))
                .spawn(move || {
                    if scale != 1.0 {
                        // SAFETY: epoch-exclusive d.
                        let ds = unsafe { d.slice_mut() };
                        ds.iter_mut().for_each(|x| *x *= orgnrm);
                    }
                });
        }

        ValuesPending { n, tree, cells, d }
    }
}

impl TridiagEigensolver for TaskFlowDc {
    fn solve(&self, t: &SymTridiag) -> Result<Eigen, DcError> {
        self.solve_with_stats(t).map(|(e, _)| e)
    }

    fn name(&self) -> &'static str {
        "dc-taskflow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::{orthogonality_error, residual_error};
    use dcst_tridiag::gen::MatrixType;

    fn opts(min_part: usize, nb: usize, threads: usize) -> DcOptions {
        DcOptions {
            min_part,
            nb,
            threads,
            extra_workspace: true,
            use_gatherv: true,
            mode: SolveMode::Full,
        }
    }

    fn check(t: &SymTridiag, eig: &Eigen, tol: f64) {
        assert!(eig.values.windows(2).all(|w| w[0] <= w[1]), "values sorted");
        let orth = orthogonality_error(&eig.vectors);
        assert!(orth < tol, "orthogonality {orth}");
        let res = residual_error(
            t.n(),
            |x, y| t.matvec(x, y),
            &eig.values,
            &eig.vectors,
            t.max_norm(),
        );
        assert!(res < tol, "residual {res}");
    }

    #[test]
    fn matches_sequential_driver() {
        let t = MatrixType::Type6.generate(100, 21);
        let seq = crate::SequentialDc::new(opts(16, 8, 1)).solve(&t).unwrap();
        let tf = TaskFlowDc::new(opts(16, 8, 2)).solve(&t).unwrap();
        for (a, b) in seq.values.iter().zip(&tf.values) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        check(&t, &tf, 1e-13);
    }

    #[test]
    fn all_types_through_taskflow() {
        for ty in MatrixType::ALL {
            let t = ty.generate(72, 7);
            let eig = TaskFlowDc::new(opts(12, 10, 2)).solve(&t).unwrap();
            check(&t, &eig, 1e-12);
        }
    }

    #[test]
    fn panel_width_does_not_change_results() {
        let t = MatrixType::Type4.generate(80, 3);
        let a = TaskFlowDc::new(opts(16, 4, 2)).solve(&t).unwrap();
        let b = TaskFlowDc::new(opts(16, 80, 2)).solve(&t).unwrap();
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn single_leaf_matrix() {
        let t = SymTridiag::toeplitz121(20);
        let eig = TaskFlowDc::new(opts(32, 8, 2)).solve(&t).unwrap();
        check(&t, &eig, 1e-13);
    }

    #[test]
    fn trace_contains_expected_kernels() {
        let t = MatrixType::Type4.generate(96, 5);
        let (eig, _stats, trace) = TaskFlowDc::new(opts(16, 8, 2)).solve_traced(&t).unwrap();
        check(&t, &eig, 1e-12);
        let names: std::collections::HashSet<&str> = trace.records.iter().map(|r| r.name).collect();
        for expect in [
            "Scale",
            "STEDC",
            "ComputeDeflation",
            "PermuteV",
            "LAED4",
            "ComputeLocalW",
            "ReduceW",
            "CopyBackDeflated",
            "ComputeVect",
            "ScaleBack",
        ] {
            assert!(names.contains(expect), "missing kernel {expect}");
        }
        // The update shows up under its dense name or, when the policy
        // picks the compressed path, the structured rename.
        assert!(
            names.contains("UpdateVect") || names.contains("UpdateVectStructured"),
            "missing kernel UpdateVect(Structured)"
        );
    }

    #[test]
    fn dag_is_matrix_independent() {
        // Same size, very different deflation behaviour → identical DAG.
        let t2 = MatrixType::Type2.generate(64, 3);
        let t4 = MatrixType::Type4.generate(64, 3);
        let solver = TaskFlowDc::new(opts(16, 8, 2));
        let (_, dag2) = solver.solve_with_dag(&t2).unwrap();
        let (_, dag4) = solver.solve_with_dag(&t4).unwrap();
        assert_eq!(dag2.num_nodes(), dag4.num_nodes());
        assert_eq!(dag2.num_edges(), dag4.num_edges());
    }

    #[test]
    fn gatherv_off_matches_gatherv_on() {
        // The ablation mode (serializing panel tasks) must be numerically
        // identical — only slower.
        let t = MatrixType::Type3.generate(80, 13);
        let mut o = opts(16, 8, 2);
        let a = TaskFlowDc::new(o).solve(&t).unwrap();
        o.use_gatherv = false;
        let b = TaskFlowDc::new(o).solve(&t).unwrap();
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-12);
        }
        check(&t, &b, 1e-12);
    }

    #[test]
    fn stats_report_deflation() {
        let t = MatrixType::Type2.generate(128, 3);
        let (_, stats) = TaskFlowDc::new(opts(16, 16, 2))
            .solve_with_stats(&t)
            .unwrap();
        assert!(
            stats.overall_deflation() > 0.8,
            "type 2 deflates heavily: {}",
            stats.overall_deflation()
        );
    }

    #[test]
    fn extra_workspace_toggle_is_equivalent() {
        let t = MatrixType::Type3.generate(90, 11);
        let mut o = opts(16, 8, 2);
        let a = TaskFlowDc::new(o).solve(&t).unwrap();
        o.extra_workspace = false;
        let b = TaskFlowDc::new(o).solve(&t).unwrap();
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pending_submissions_share_one_runtime() {
        let rt = Runtime::new(2);
        let solver = TaskFlowDc::new(opts(16, 8, 2));
        let t1 = MatrixType::Type4.generate(80, 3);
        let t2 = MatrixType::Type2.generate(96, 5);
        let p1 = solver.submit(&t1, &rt).unwrap();
        let p2 = solver.submit_priority(&t2, &rt).unwrap();
        let (e2, _) = p2.wait().unwrap();
        let (e1, _) = p1.wait().unwrap();
        check(&t1, &e1, 1e-12);
        check(&t2, &e2, 1e-12);
    }

    #[test]
    fn cancelled_pending_reports_cancelled() {
        // One worker, blocked by a decoy task in the default scope: the
        // solve's tasks cannot start, so cancel() must skip all of them.
        let rt = Runtime::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        rt.task("decoy").spawn(move || {
            rx.recv().unwrap();
        });
        let solver = TaskFlowDc::new(opts(16, 8, 1));
        let t = MatrixType::Type4.generate(64, 9);
        let pending = solver.submit(&t, &rt).unwrap();
        let handle = pending.cancel_handle();
        handle.cancel();
        tx.send(()).unwrap();
        match pending.wait() {
            Err(DcError::Cancelled) => {}
            other => panic!("expected DcError::Cancelled, got {:?}", other.map(|_| ())),
        }
        rt.wait().unwrap();
    }

    #[test]
    fn batch_values_are_bit_identical_to_solo() {
        let solver = TaskFlowDc::new(opts(12, 8, 2));
        let ts: Vec<SymTridiag> = (0..4)
            .map(|i| MatrixType::Type4.generate(48 + 8 * i, 3 + i as u64))
            .collect();
        let batch = solver.solve_batch(&ts);
        for (t, res) in ts.iter().zip(batch) {
            let (eig, _) = res.unwrap();
            let solo = solver.solve(t).unwrap();
            for (a, b) in solo.values.iter().zip(&eig.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
            check(t, &eig, 1e-12);
        }
    }

    #[test]
    fn one_poisoned_submission_leaves_neighbours_intact() {
        let rt = Runtime::new(2);
        let solver = TaskFlowDc::new(opts(16, 8, 2));
        let good = MatrixType::Type4.generate(80, 11);
        let mut bad = MatrixType::Type4.generate(80, 12);
        bad.d[40] = f64::NAN;
        let pg = solver.submit(&good, &rt).unwrap();
        // NaN input is rejected at validation (before submission)...
        assert!(matches!(
            solver.submit(&bad, &rt).map(|_| ()),
            Err(DcError::NonFinite)
        ));
        // ...and the concurrent good submission is unaffected.
        let (eig, _) = pg.wait().unwrap();
        check(&good, &eig, 1e-12);
    }
}
