//! End-to-end tests of the `dcst` binary.

use std::process::Command;

fn dcst() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dcst"))
}

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dcst-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_info_solve_pipeline() {
    let path = tempfile("pipeline.txt");
    let out = dcst()
        .args([
            "generate",
            "--type",
            "10",
            "--n",
            "64",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dcst()
        .args(["info", "--in", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("n               = 64"), "{text}");
    assert!(text.contains("max-norm        = 2.0"), "{text}");

    let out = dcst()
        .args([
            "solve",
            "--in",
            path.to_str().unwrap(),
            "--check",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let values: Vec<f64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(values.len(), 64);
    // (1,2,1) Toeplitz spectrum.
    for (k, &v) in values.iter().enumerate() {
        let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / 65.0).cos();
        assert!((v - want).abs() < 1e-12, "{v} vs {want}");
    }
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("orthogonality"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn solvers_agree_through_the_cli() {
    let path = tempfile("agree.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "6",
            "--n",
            "48",
            "--seed",
            "3",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let mut all: Vec<Vec<f64>> = Vec::new();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "mrrr", "qr"] {
        let out = dcst()
            .args(["solve", "--in", path.to_str().unwrap(), "--solver", solver])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        all.push(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(|l| l.parse().unwrap())
                .collect(),
        );
    }
    for other in &all[1..] {
        assert_eq!(other.len(), all[0].len());
        for (a, b) in all[0].iter().zip(other) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mrrr_subset_through_the_cli() {
    let path = tempfile("subset.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "60",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let out = dcst()
        .args([
            "solve",
            "--in",
            path.to_str().unwrap(),
            "--solver",
            "mrrr",
            "--subset",
            "5:9",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let count = String::from_utf8_lossy(&out.stdout).lines().count();
    assert!(
        count >= 5,
        "at least the requested 5 eigenvalues, got {count}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_writes_svg() {
    let svg = tempfile("trace.svg");
    let out = dcst()
        .args([
            "trace",
            "--type",
            "2",
            "--n",
            "128",
            "--svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&svg).unwrap();
    assert!(body.starts_with("<svg"));
    assert!(body.contains("STEDC"));
    let _ = std::fs::remove_file(&svg);
}

#[test]
fn non_finite_input_is_an_input_error() {
    // NaN parses as a valid f64 token, so this reaches the solvers and must
    // be rejected as bad *input* (exit 1), not a numerical failure (exit 3).
    let path = tempfile("nan-input.txt");
    std::fs::write(&path, "3\n1.0 NaN 2.0\n0.5 0.5\n").unwrap();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "mrrr", "qr"] {
        let out = dcst()
            .args(["solve", "--in", path.to_str().unwrap(), "--solver", solver])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(1),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// A numerical failure (solver gave up on well-formed input) must exit with
/// code 3, distinct from input errors. Genuinely non-convergent inputs are
/// nearly impossible to construct now that the kernels carry rescue paths,
/// so the failpoint build stands in: `DCST_FAIL=steqr:1` makes the first
/// leaf solve report `NoConvergence` exactly as a stuck QR iteration would.
#[cfg(feature = "failpoints")]
#[test]
fn numerical_failure_is_exit_code_3() {
    let path = tempfile("nonconv.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "64",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "qr"] {
        let out = dcst()
            .env("DCST_FAIL", "steqr:1")
            .args(["solve", "--in", path.to_str().unwrap(), "--solver", solver])
            .output()
            .unwrap();
        let err = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(3), "{solver}: {err}");
        assert!(err.contains("converge"), "{solver}: {err}");
    }
    // Without the env var the same build and input solve cleanly.
    let out = dcst()
        .args(["solve", "--in", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = dcst().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = dcst()
        .args(["solve", "--in", "/nonexistent/file"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = dcst().args(["generate", "--type", "99"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = dcst()
        .args(["solve", "--in", "/dev/null"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "empty input rejected");
}
