//! End-to-end tests of the `dcst` binary.

use std::process::Command;

fn dcst() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dcst"))
}

fn tempfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dcst-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_info_solve_pipeline() {
    let path = tempfile("pipeline.txt");
    let out = dcst()
        .args([
            "generate",
            "--type",
            "10",
            "--n",
            "64",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dcst()
        .args(["info", "--in", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("n               = 64"), "{text}");
    assert!(text.contains("max-norm        = 2.0"), "{text}");

    let out = dcst()
        .args([
            "solve",
            "--in",
            path.to_str().unwrap(),
            "--check",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let values: Vec<f64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(values.len(), 64);
    // (1,2,1) Toeplitz spectrum.
    for (k, &v) in values.iter().enumerate() {
        let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / 65.0).cos();
        assert!((v - want).abs() < 1e-12, "{v} vs {want}");
    }
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("orthogonality"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn solvers_agree_through_the_cli() {
    let path = tempfile("agree.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "6",
            "--n",
            "48",
            "--seed",
            "3",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let mut all: Vec<Vec<f64>> = Vec::new();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "mrrr", "qr"] {
        let out = dcst()
            .args(["solve", "--in", path.to_str().unwrap(), "--solver", solver])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        all.push(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(|l| l.parse().unwrap())
                .collect(),
        );
    }
    for other in &all[1..] {
        assert_eq!(other.len(), all[0].len());
        for (a, b) in all[0].iter().zip(other) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mrrr_subset_through_the_cli() {
    let path = tempfile("subset.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "60",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let out = dcst()
        .args([
            "solve",
            "--in",
            path.to_str().unwrap(),
            "--solver",
            "mrrr",
            "--subset",
            "5:9",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let count = String::from_utf8_lossy(&out.stdout).lines().count();
    assert!(
        count >= 5,
        "at least the requested 5 eigenvalues, got {count}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_writes_svg() {
    let svg = tempfile("trace.svg");
    let out = dcst()
        .args([
            "trace",
            "--type",
            "2",
            "--n",
            "128",
            "--svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&svg).unwrap();
    assert!(body.starts_with("<svg"));
    assert!(body.contains("STEDC"));
    let _ = std::fs::remove_file(&svg);
}

#[test]
fn non_finite_input_is_an_input_error() {
    // NaN parses as a valid f64 token, so this reaches the solvers and must
    // be rejected as bad *input* (exit 1), not a numerical failure (exit 3).
    let path = tempfile("nan-input.txt");
    std::fs::write(&path, "3\n1.0 NaN 2.0\n0.5 0.5\n").unwrap();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "mrrr", "qr"] {
        let out = dcst()
            .args(["solve", "--in", path.to_str().unwrap(), "--solver", solver])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(1),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// A numerical failure (solver gave up on well-formed input) must exit with
/// code 3, distinct from input errors. Genuinely non-convergent inputs are
/// nearly impossible to construct now that the kernels carry rescue paths,
/// so the failpoint build stands in: `DCST_FAIL=steqr:1` makes the first
/// leaf solve report `NoConvergence` exactly as a stuck QR iteration would.
#[cfg(feature = "failpoints")]
#[test]
fn numerical_failure_is_exit_code_3() {
    let path = tempfile("nonconv.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "64",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "qr"] {
        let out = dcst()
            .env("DCST_FAIL", "steqr:1")
            .args(["solve", "--in", path.to_str().unwrap(), "--solver", solver])
            .output()
            .unwrap();
        let err = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(3), "{solver}: {err}");
        assert!(err.contains("converge"), "{solver}: {err}");
    }
    // Without the env var the same build and input solve cleanly.
    let out = dcst()
        .args(["solve", "--in", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let _ = std::fs::remove_file(&path);
}

/// The acceptance run for the observability layer: a taskflow solve at
/// n = 1024 with `DCST_TRACE` set must emit a Chrome trace-event file whose
/// "X" (complete) events match the `tasks executed = N` counter reported on
/// stderr, with worker-lane metadata and dependency flow events present.
#[test]
fn chrome_trace_reconciles_with_runtime_metrics() {
    let input = tempfile("chrome-1024.txt");
    let trace = tempfile("chrome-1024.trace.json");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "1024",
            "--seed",
            "11",
            "--out",
            input.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let out = dcst()
        .env("DCST_TRACE", trace.to_str().unwrap())
        .args([
            "solve",
            "--in",
            input.to_str().unwrap(),
            "--solver",
            "taskflow",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    let executed: usize = err
        .lines()
        .find_map(|l| l.strip_prefix("tasks executed = "))
        .expect("stderr reports the executed-task counter")
        .trim()
        .parse()
        .unwrap();
    assert!(executed > 0);

    let body = std::fs::read_to_string(&trace).unwrap();
    let doc = dcst_runtime::jsonv::parse(&body).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let ph = |e: &dcst_runtime::jsonv::Json| {
        e.get("ph")
            .and_then(|p| p.as_str())
            .unwrap_or("")
            .to_string()
    };
    let complete: Vec<_> = events.iter().filter(|e| ph(e) == "X").collect();
    assert_eq!(
        complete.len(),
        executed,
        "every executed task has exactly one complete event"
    );
    // Worker lanes: one thread_name metadata event per worker thread,
    // plus one scheduler-counter metadata event per lane and one
    // pool-level entry (DCST_TRACE exports carry the counters along).
    let meta_named = |name: &str| {
        events
            .iter()
            .filter(|e| ph(e) == "M" && e.get("name").and_then(|n| n.as_str()) == Some(name))
            .count()
    };
    assert_eq!(
        meta_named("thread_name"),
        2,
        "one worker-lane metadata event per thread"
    );
    assert_eq!(
        meta_named("dcst_sched_counters"),
        2,
        "one scheduler-counter metadata event per lane"
    );
    assert_eq!(
        meta_named("dcst_sched_pool"),
        1,
        "pool-level metadata event"
    );
    // Dependency edges export as paired flow events.
    let starts = events.iter().filter(|e| ph(e) == "s").count();
    let finishes = events.iter().filter(|e| ph(e) == "f").count();
    assert!(starts > 0, "flow events present");
    assert_eq!(starts, finishes, "flow starts pair with flow finishes");
    // Task names from the D&C merge phase appear on the complete events.
    let names: Vec<_> = complete
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()).map(str::to_string))
        .collect();
    assert!(names.iter().any(|n| n == "LAED4"), "{names:?}");
    assert!(names.iter().any(|n| n == "UpdateVect"), "{names:?}");
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn metrics_flag_reports_solver_and_runtime_counters() {
    let path = tempfile("metrics.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "200",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let out = dcst()
        .args([
            "solve",
            "--in",
            path.to_str().unwrap(),
            "--solver",
            "taskflow",
            "--threads",
            "2",
            "--metrics",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("overall deflation"), "{err}");
    assert!(err.contains("root solves"), "{err}");
    assert!(err.contains("gemm:"), "{err}");
    // Runtime counter table follows the solver report for taskflow runs.
    assert!(err.contains("max ready-queue depth"), "{err}");
    // The counters are compiled in by default for the CLI, so real work
    // must be visible in the report.
    assert!(!err.contains("secular: 0 root solves"), "{err}");

    // Sequential solvers still accept --metrics (deflation stats come from
    // DcStats, which every D&C variant produces).
    let out = dcst()
        .args([
            "solve",
            "--in",
            path.to_str().unwrap(),
            "--solver",
            "seq",
            "--metrics",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("overall deflation"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_subcommand_writes_chrome_json() {
    let chrome = tempfile("trace.chrome.json");
    let out = dcst()
        .args([
            "trace",
            "--type",
            "2",
            "--n",
            "128",
            "--chrome",
            chrome.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&chrome).unwrap();
    let doc = dcst_runtime::jsonv::parse(&body).expect("valid JSON");
    assert!(doc.get("traceEvents").is_some());
    assert!(body.contains("STEDC"));
    let _ = std::fs::remove_file(&chrome);
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = dcst().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = dcst()
        .args(["solve", "--in", "/nonexistent/file"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = dcst().args(["generate", "--type", "99"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = dcst()
        .args(["solve", "--in", "/dev/null"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "empty input rejected");
}

/// Malformed or out-of-range `--subset` specs are usage errors (exit 2)
/// for every solver — never a silent `(0,0)` default, never a panic.
#[test]
fn bad_subset_specs_exit_2_for_every_solver() {
    let path = tempfile("badsubset.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "32",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "mrrr", "qr"] {
        for spec in ["foo:bar", "5", "3:2", "0:32", "40:50", ":", "1:x", "-1:4"] {
            let out = dcst()
                .args([
                    "solve",
                    "--in",
                    path.to_str().unwrap(),
                    "--solver",
                    solver,
                    "--subset",
                    spec,
                ])
                .output()
                .unwrap();
            let err = String::from_utf8_lossy(&out.stderr);
            assert_eq!(
                out.status.code(),
                Some(2),
                "{solver} --subset {spec}: {err}"
            );
            assert!(err.contains("--subset"), "{solver} {spec}: {err}");
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// Present-but-unparsable numeric flags exit 2 and name the flag, on every
/// subcommand that accepts them.
#[test]
fn unparsable_numeric_flags_exit_2_naming_the_flag() {
    let path = tempfile("badflags.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "24",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let cases: Vec<(Vec<&str>, &str)> = vec![
        (vec!["generate", "--n", "10O0"], "--n"),
        (vec!["generate", "--type", "four"], "--type"),
        (vec!["generate", "--n", "64", "--seed", "x"], "--seed"),
        (
            vec!["solve", "--in", path.to_str().unwrap(), "--threads", "two"],
            "--threads",
        ),
        (vec!["trace", "--n", "1e3"], "--n"),
        (vec!["trace", "--type", "nan"], "--type"),
    ];
    for (argv, flag) in cases {
        let out = dcst().args(&argv).output().unwrap();
        let err = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{argv:?}: {err}");
        assert!(err.contains(flag), "{argv:?} names {flag}: {err}");
    }
    // A trailing valueless flag is also a usage error.
    let out = dcst()
        .args(["solve", "--in", path.to_str().unwrap(), "--threads"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_file(&path);
}

/// An unwritable `DCST_TRACE` path is an I/O error (exit 1 with a message),
/// not a panic — the solve itself succeeded, the report must say why the
/// artifact did not.
#[test]
fn unwritable_trace_destination_exits_1() {
    let path = tempfile("tracefail.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "64",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let out = dcst()
        .env("DCST_TRACE", "/nonexistent-dir/trace.json")
        .args([
            "solve",
            "--in",
            path.to_str().unwrap(),
            "--solver",
            "taskflow",
        ])
        .output()
        .unwrap();
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{err}");
    assert!(err.contains("cannot write"), "{err}");
    assert!(!err.contains("panicked"), "{err}");

    // Same for the trace subcommand's artifact flags.
    for flag in ["--svg", "--json", "--chrome"] {
        let out = dcst()
            .args(["trace", "--n", "96", flag, "/nonexistent-dir/out"])
            .output()
            .unwrap();
        let err = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "{flag}: {err}");
        assert!(err.contains("cannot write"), "{flag}: {err}");
        assert!(!err.contains("panicked"), "{flag}: {err}");
    }
    let _ = std::fs::remove_file(&path);
}

/// `--values-only` agrees with the full solve on every solver and reports
/// zero vector columns.
#[test]
fn values_only_agrees_across_solvers() {
    let path = tempfile("valsonly.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "6",
            "--n",
            "48",
            "--seed",
            "9",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let full = dcst()
        .args(["solve", "--in", path.to_str().unwrap(), "--solver", "seq"])
        .output()
        .unwrap();
    let oracle: Vec<f64> = String::from_utf8_lossy(&full.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    for solver in ["taskflow", "seq", "forkjoin", "levelpar", "mrrr", "qr"] {
        let out = dcst()
            .args([
                "solve",
                "--in",
                path.to_str().unwrap(),
                "--solver",
                solver,
                "--values-only",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("0 vector column(s)"), "{solver}: {err}");
        let vals: Vec<f64> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(vals.len(), oracle.len(), "{solver}");
        for (a, b) in vals.iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-9, "{solver}: {a} vs {b}");
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// `--subset il:iu` returns exactly iu−il+1 values (the oracle's slice)
/// and as many vector columns, on every solver; `--check` passes on the
/// n×k slice.
#[test]
fn subset_agrees_across_solvers() {
    let path = tempfile("subsetall.txt");
    dcst()
        .args([
            "generate",
            "--type",
            "4",
            "--n",
            "48",
            "--seed",
            "5",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    let full = dcst()
        .args(["solve", "--in", path.to_str().unwrap(), "--solver", "seq"])
        .output()
        .unwrap();
    let oracle: Vec<f64> = String::from_utf8_lossy(&full.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    // A wide range (D&C pruned root) and a narrow one (MRRR fallback).
    for (il, iu) in [(8usize, 39usize), (20, 23)] {
        for solver in ["taskflow", "seq", "forkjoin", "levelpar", "mrrr", "qr"] {
            let out = dcst()
                .args([
                    "solve",
                    "--in",
                    path.to_str().unwrap(),
                    "--solver",
                    solver,
                    "--subset",
                    &format!("{il}:{iu}"),
                    "--check",
                ])
                .output()
                .unwrap();
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(out.status.success(), "{solver} {il}:{iu}: {err}");
            assert!(
                err.contains(&format!("{} vector column(s)", iu - il + 1)),
                "{solver} {il}:{iu}: {err}"
            );
            assert!(err.contains("residual"), "{solver} {il}:{iu}: {err}");
            let vals: Vec<f64> = String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(|l| l.parse().unwrap())
                .collect();
            assert_eq!(vals.len(), iu - il + 1, "{solver} {il}:{iu}");
            for (a, b) in vals.iter().zip(&oracle[il..=iu]) {
                assert!((a - b).abs() < 1e-9, "{solver} {il}:{iu}: {a} vs {b}");
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// The daemon lifecycle through the binary alone: `serve` prints its
/// readiness line, `request` exercises ping/solve/typed-error exit
/// codes, and the `shutdown` verb terminates the process.
#[test]
fn serve_and_request_round_trip() {
    use std::io::{BufRead, BufReader};

    let mut server = dcst()
        .args(["serve", "--threads", "2", "--max-inflight", "4"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dcst serve");
    let mut ready = String::new();
    BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut ready)
        .unwrap();
    let addr = ready
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad readiness line: {ready:?}"))
        .to_string();

    let request = |json: &str| {
        dcst()
            .args(["request", "--addr", &addr, "--json", json])
            .output()
            .expect("run dcst request")
    };

    let out = request(r#"{"op":"ping","id":1}"#);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"pong\":true"));

    let out = request(r#"{"op":"solve","id":2,"matrix":{"type":4,"n":48,"seed":3},"check":true}"#);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(
        body.contains("\"ok\":true") && body.contains("\"values\":["),
        "{body}"
    );

    // A typed (non-busy) protocol error exits 3.
    let out = request(r#"{"op":"frobnicate"}"#);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stdout).contains("unknown-op"));

    let out = request(r#"{"op":"shutdown"}"#);
    assert!(out.status.success());
    let status = server.wait().expect("serve exits after shutdown verb");
    assert!(status.success());
}
