//! `dcst` — command-line front end for the workspace.
//!
//! ```text
//! dcst generate --type 4 --n 1000 --seed 7 --out t.txt
//! dcst info     --in t.txt
//! dcst solve    --in t.txt [--solver taskflow|seq|forkjoin|levelpar|mrrr|qr]
//!               [--values-only] [--subset il:iu] [--threads k] [--check]
//!               [--metrics]
//! dcst trace    --type 4 --n 1000 --svg trace.svg [--json trace.json]
//!               [--chrome trace.json]
//! dcst serve    [--addr 127.0.0.1:0] [--threads K] [--max-inflight M]
//!               [--max-n N] [--trace-requests]
//! dcst request  --addr HOST:PORT [--json '{"op":"ping"}']
//! ```
//!
//! `--values-only` computes eigenvalues without accumulating eigenvectors;
//! `--subset il:iu` computes all eigenvalues but only the eigenvectors with
//! (0-based, ascending) indices `il..=iu`. Both are accepted by every
//! solver. With `DCST_TRACE=out.json` in the environment, `solve --solver
//! taskflow` additionally records the run and writes a Chrome trace-event
//! file (loadable in `chrome://tracing` / Perfetto).
//!
//! `serve` runs the eigensolver-as-a-service daemon (line-delimited JSON
//! over TCP on one shared runtime; see `DESIGN.md` "Service layer") and
//! prints `listening on ADDR` once the socket is bound. `request` is a
//! one-shot client: it sends the `--json` line (or one line read from
//! stdin) and prints the server's response verbatim, exiting 0 on
//! success, 4 when the server shed the request as `busy`, and 3 on any
//! other typed error.

use dcst_core::{
    DcError, DcOptions, DcStats, ForkJoinDc, LevelParallelDc, MetricsRecorder, SequentialDc,
    SolveMode, TaskFlowDc,
};
use dcst_mrrr::{bisect_range, MrrrError, MrrrOptions, MrrrSolver};
use dcst_qriter::QrError;
use dcst_runtime::{RuntimeMetrics, Trace};
use dcst_serve::{Client, Server, ServerConfig};
use dcst_tridiag::gen::MatrixType;
use dcst_tridiag::io::{read_tridiag, write_tridiag};
use dcst_tridiag::SymTridiag;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    raw: Vec<String>,
}

impl Args {
    fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }
    fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }
    /// The flag's value as a usize, `default` when absent. A flag that is
    /// present but missing or unparsable is a usage error naming the flag
    /// — silently substituting the default would mask typos like
    /// `--n 10O0`.
    fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name) {
            None => {
                if self.flag(name) {
                    Err(format!("{name} needs a value"))
                } else {
                    Ok(default)
                }
            }
            Some(v) => v
                .parse()
                .map_err(|_| format!("{name} wants a non-negative integer, got '{v}'")),
        }
    }
}

/// `il:iu` → a validated 0-based inclusive index range for a matrix of
/// order `n`. Rejects (instead of defaulting) anything unparsable.
fn parse_subset(spec: &str, n: usize) -> Result<(usize, usize), String> {
    let (a, b) = spec
        .split_once(':')
        .ok_or_else(|| format!("--subset wants il:iu, got '{spec}'"))?;
    let il: usize = a
        .parse()
        .map_err(|_| format!("--subset wants integer il:iu, got '{spec}'"))?;
    let iu: usize = b
        .parse()
        .map_err(|_| format!("--subset wants integer il:iu, got '{spec}'"))?;
    if il > iu || iu >= n {
        return Err(format!(
            "--subset {il}:{iu} out of range for a matrix of order {n} (need il <= iu < n, 0-based)"
        ));
    }
    Ok((il, iu))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dcst generate --type K --n N [--seed S] [--out FILE]\n  \
         dcst info --in FILE\n  \
         dcst solve --in FILE [--solver taskflow|seq|forkjoin|levelpar|mrrr|qr] \
         [--values-only] [--subset il:iu] [--threads K] [--check] [--metrics]\n  \
         dcst trace [--type K] [--n N] [--svg FILE] [--json FILE] [--chrome FILE]\n  \
         dcst serve [--addr A] [--threads K] [--max-inflight M] [--max-n N] [--trace-requests]\n  \
         dcst request --addr HOST:PORT [--json LINE]\n\
         env: DCST_TRACE=FILE with 'solve --solver taskflow' writes a Chrome trace-event file"
    );
    ExitCode::from(EXIT_USAGE)
}

// Exit codes: 0 = success, 1 = input error (unreadable/unparsable file, a
// matrix with NaN/Inf entries, or an unwritable output path), 2 = usage
// error (bad flags, out-of-range subset), 3 = numerical failure (a solver
// gave up on a well-formed input). Scripts driving the benchmark suite
// rely on 1-vs-3 to tell bad data from convergence problems. `request`
// adds 4 = the daemon shed the request with a typed `busy` error, so load
// drivers can retry on 4 and give up on 3.
const EXIT_INPUT: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_NUMERICAL: u8 = 3;
const EXIT_BUSY: u8 = 4;

fn fail<E: std::fmt::Display>(e: E, code: u8) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(code)
}

fn dc_code(e: &DcError) -> u8 {
    match e {
        DcError::NonFinite | DcError::Leaf(QrError::NonFinite) => EXIT_INPUT,
        DcError::InvalidRange { .. } => EXIT_USAGE,
        DcError::Subset(inner) => mrrr_code(inner),
        _ => EXIT_NUMERICAL,
    }
}

fn qr_code(e: &QrError) -> u8 {
    match e {
        QrError::NonFinite => EXIT_INPUT,
        QrError::NoConvergence { .. } => EXIT_NUMERICAL,
    }
}

fn mrrr_code(e: &MrrrError) -> u8 {
    match e {
        MrrrError::NonFinite => EXIT_INPUT,
        MrrrError::InvalidRange { .. } => EXIT_USAGE,
        MrrrError::ClusterFailure { .. } => EXIT_NUMERICAL,
    }
}

fn load(args: &Args) -> Result<SymTridiag, String> {
    let path = args.value("--in").ok_or("missing --in FILE")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_tridiag(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Write a generated artifact (trace SVG/JSON, Chrome events); an
/// unwritable path is an input-class error, never a panic.
fn write_artifact(path: &str, contents: String, what: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents)
        .map_err(|e| fail(format!("cannot write {path}: {e}"), EXIT_INPUT))?;
    eprintln!("{what} -> {path}");
    Ok(())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    let args = Args { raw: argv };
    let threads = match args.usize_flag(
        "--threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    ) {
        Ok(v) => v,
        Err(e) => return fail(e, EXIT_USAGE),
    };

    match cmd.as_str() {
        "generate" => {
            let ty_idx = match args.usize_flag("--type", 4) {
                Ok(v) => v,
                Err(e) => return fail(e, EXIT_USAGE),
            };
            let ty = match MatrixType::from_index(ty_idx) {
                Some(t) => t,
                None => return fail("--type must be 1..=15", EXIT_USAGE),
            };
            let n = match args.usize_flag("--n", 1000) {
                Ok(v) => v,
                Err(e) => return fail(e, EXIT_USAGE),
            };
            let seed = match args.usize_flag("--seed", 1) {
                Ok(v) => v as u64,
                Err(e) => return fail(e, EXIT_USAGE),
            };
            let t = ty.generate(n, seed);
            match args.value("--out") {
                Some(path) => {
                    let f = match std::fs::File::create(path) {
                        Ok(f) => f,
                        Err(e) => return fail(format!("cannot create {path}: {e}"), EXIT_INPUT),
                    };
                    if let Err(e) = write_tridiag(std::io::BufWriter::new(f), &t) {
                        return fail(format!("cannot write {path}: {e}"), EXIT_INPUT);
                    }
                    eprintln!("wrote type-{} matrix (n = {n}) to {path}", ty.index());
                }
                None => {
                    if let Err(e) = write_tridiag(std::io::stdout().lock(), &t) {
                        return fail(format!("cannot write to stdout: {e}"), EXIT_INPUT);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "info" => {
            let t = match load(&args) {
                Ok(t) => t,
                Err(e) => return fail(e, EXIT_INPUT),
            };
            let (gl, gu) = t.gershgorin_bounds();
            let splits = (0..t.n().saturating_sub(1))
                .filter(|&i| {
                    t.e[i].abs()
                        <= f64::EPSILON * (t.d[i].abs() * t.d[i + 1].abs()).sqrt()
                            + f64::MIN_POSITIVE
                })
                .count();
            println!("n               = {}", t.n());
            println!("max-norm        = {:.6e}", t.max_norm());
            println!("gershgorin      = [{gl:.6e}, {gu:.6e}]");
            println!("irreducible blocks = {}", splits + 1);
            println!("eigenvalues < 0 = {}", dcst_tridiag::sturm_count(&t, 0.0));
            ExitCode::SUCCESS
        }
        "solve" => {
            let t = match load(&args) {
                Ok(t) => t,
                Err(e) => return fail(e, EXIT_INPUT),
            };
            let solver_name = args.value("--solver").unwrap_or("taskflow");
            let values_only = args.flag("--values-only");
            // Every solver validates --subset against the matrix order
            // before any numerical work, so malformed ranges exit 2
            // uniformly.
            let subset = match args.value("--subset") {
                Some(spec) => match parse_subset(spec, t.n()) {
                    Ok(r) => Some(r),
                    Err(e) => return fail(e, EXIT_USAGE),
                },
                None => None,
            };
            let mode = match (values_only, subset) {
                (true, Some(_)) => {
                    // Values restricted to the subset: no vectors at all.
                    SolveMode::ValuesOnly
                }
                (true, None) => SolveMode::ValuesOnly,
                (false, Some((il, iu))) => SolveMode::Subset { il, iu },
                (false, None) => SolveMode::Full,
            };
            let opts = DcOptions {
                threads,
                mode,
                ..DcOptions::default()
            };
            let trace_path = std::env::var("DCST_TRACE").ok();
            // Bracket the solve with kernel-counter snapshots (no-op
            // counters unless built with the `metrics` feature, which the
            // CLI enables by default).
            let recorder = args.flag("--metrics").then(MetricsRecorder::start);
            let mut dc_stats: Option<DcStats> = None;
            let mut observed: Option<(Trace, RuntimeMetrics)> = None;
            let start = Instant::now();
            let (values, vectors) = match solver_name {
                "mrrr" => {
                    let solver = MrrrSolver::new(MrrrOptions {
                        threads,
                        ..Default::default()
                    });
                    let result = match (values_only, subset) {
                        (true, range) => {
                            // Bisection gives the Θ(n·k) values-only
                            // path directly.
                            let (il, iu) = range.unwrap_or((0, t.n().saturating_sub(1)));
                            bisect_range(&t, il..iu + 1, threads)
                                .map(|vals| (vals, dcst_matrix::Matrix::zeros(t.n(), 0)))
                        }
                        (false, Some((il, iu))) => solver.solve_range_exact(&t, il, iu),
                        (false, None) => solver.solve(&t),
                    };
                    match result {
                        Ok(r) => r,
                        Err(e) => return fail(&e, mrrr_code(&e)),
                    }
                }
                "qr" => {
                    let result = if values_only {
                        dcst_qriter::eigenvalues(&t)
                            .map(|vals| (vals, dcst_matrix::Matrix::zeros(t.n(), 0)))
                    } else {
                        dcst_qriter::steqr(&t).map(|(vals, vecs)| match subset {
                            // QR has no subset shortcut; slice the full
                            // factorization to the requested columns.
                            Some((il, iu)) => {
                                let n = t.n();
                                let k = iu - il + 1;
                                let mut sub = vec![0.0f64; n * k];
                                for (c, p) in (il..=iu).enumerate() {
                                    sub[c * n..(c + 1) * n].copy_from_slice(vecs.col(p));
                                }
                                (
                                    vals[il..=iu].to_vec(),
                                    dcst_matrix::Matrix::from_vec(n, k, sub),
                                )
                            }
                            None => (vals, vecs),
                        })
                    };
                    let (vals, vecs) = match result {
                        Ok(r) => r,
                        Err(e) => return fail(&e, qr_code(&e)),
                    };
                    // --values-only --subset: slice the values.
                    match (values_only, subset) {
                        (true, Some((il, iu))) => (vals[il..=iu].to_vec(), vecs),
                        _ => (vals, vecs),
                    }
                }
                name => {
                    // The D&C variants all expose solve_with_stats, so the
                    // deflation statistics behind --metrics come for free;
                    // the task-flow driver can additionally record the run
                    // (trace + scheduler counters) for DCST_TRACE.
                    let result =
                        match name {
                            "taskflow" => {
                                let solver = TaskFlowDc::new(opts);
                                if trace_path.is_some() || recorder.is_some() {
                                    solver.solve_observed(&t).map(|(eig, stats, trace, rm)| {
                                        dc_stats = Some(stats);
                                        observed = Some((trace, rm));
                                        eig
                                    })
                                } else {
                                    solver.solve_with_stats(&t).map(|(eig, stats)| {
                                        dc_stats = Some(stats);
                                        eig
                                    })
                                }
                            }
                            "seq" => SequentialDc::new(DcOptions { threads: 1, ..opts })
                                .solve_with_stats(&t)
                                .map(|(eig, stats)| {
                                    dc_stats = Some(stats);
                                    eig
                                }),
                            "forkjoin" => {
                                ForkJoinDc::new(opts)
                                    .solve_with_stats(&t)
                                    .map(|(eig, stats)| {
                                        dc_stats = Some(stats);
                                        eig
                                    })
                            }
                            "levelpar" => LevelParallelDc::new(opts).solve_with_stats(&t).map(
                                |(eig, stats)| {
                                    dc_stats = Some(stats);
                                    eig
                                },
                            ),
                            other => return fail(format!("unknown solver '{other}'"), EXIT_USAGE),
                        };
                    let eig = match result {
                        Ok(eig) => eig,
                        Err(e) => return fail(&e, dc_code(&e)),
                    };
                    // --values-only --subset: the D&C values path returns
                    // the full spectrum; slice to the request.
                    match (values_only, subset) {
                        (true, Some((il, iu))) => (eig.values[il..=iu].to_vec(), eig.vectors),
                        _ => (eig.values, eig.vectors),
                    }
                }
            };
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "{solver_name}: {} eigenvalue(s), {} vector column(s) in {:.3}s ({threads} threads)",
                values.len(),
                vectors.cols(),
                secs
            );
            if let Some((trace, rm)) = &observed {
                if let Some(path) = trace_path.as_deref() {
                    // Scheduler counters ride along as per-lane metadata so
                    // the trace viewer shows the contention story too.
                    if let Err(code) = write_artifact(
                        path,
                        trace.to_chrome_json_with_metrics(Some(rm)),
                        "chrome trace",
                    ) {
                        return code;
                    }
                    eprintln!(
                        "  ({} records, {} edges)",
                        trace.records.len(),
                        trace.edges.len()
                    );
                }
                // Parseable reconciliation line: the trace records every
                // retired task, so this always equals the record count
                // (zeros without the `metrics` feature compiled in).
                eprintln!("tasks executed = {}", rm.tasks_executed());
            } else if trace_path.is_some() {
                eprintln!("note: DCST_TRACE is only honored by --solver taskflow");
            }
            if let Some(rec) = recorder {
                match &dc_stats {
                    Some(stats) => {
                        eprintln!("{}", rec.finish(stats).report());
                        if let Some((_, rm)) = &observed {
                            eprintln!("{}", rm.report());
                        }
                    }
                    None => eprintln!("note: --metrics has no statistics for '{solver_name}'"),
                }
            }
            // Residual/orthogonality checks hold for any n×k slice of the
            // eigenbasis (k = cols), not only the full square factorization.
            if args.flag("--check")
                && vectors.cols() == values.len()
                && vectors.rows() == t.n()
                && vectors.cols() > 0
            {
                let orth = dcst_matrix::orthogonality_error(&vectors);
                let res = dcst_matrix::residual_error(
                    t.n(),
                    |x, y| t.matvec(x, y),
                    &values,
                    &vectors,
                    t.max_norm(),
                );
                eprintln!("orthogonality = {orth:.3e}   residual = {res:.3e}");
            }
            let mut out = String::with_capacity(values.len() * 24);
            for v in &values {
                out.push_str(&format!("{v:.17e}\n"));
            }
            print!("{out}");
            ExitCode::SUCCESS
        }
        "trace" => {
            let ty_idx = match args.usize_flag("--type", 4) {
                Ok(v) => v,
                Err(e) => return fail(e, EXIT_USAGE),
            };
            let ty = match MatrixType::from_index(ty_idx) {
                Some(t) => t,
                None => return fail("--type must be 1..=15", EXIT_USAGE),
            };
            let n = match args.usize_flag("--n", 1000) {
                Ok(v) => v,
                Err(e) => return fail(e, EXIT_USAGE),
            };
            let t = ty.generate(n, 1);
            let solver = TaskFlowDc::new(DcOptions {
                threads,
                ..DcOptions::default()
            });
            let (_, stats, trace) = match solver.solve_traced(&t) {
                Ok(r) => r,
                Err(e) => return fail(&e, dc_code(&e)),
            };
            eprintln!(
                "n = {n}, type {}: makespan {:.1} ms, idle {:.1}%, deflation {:.0}%",
                ty.index(),
                trace.makespan_us() as f64 / 1e3,
                100.0 * trace.idle_fraction(),
                100.0 * stats.overall_deflation()
            );
            if let Some(path) = args.value("--svg") {
                if let Err(code) = write_artifact(path, trace.to_svg(1200, 24), "svg timeline") {
                    return code;
                }
            }
            if let Some(path) = args.value("--json") {
                if let Err(code) = write_artifact(path, trace.to_json(), "json trace") {
                    return code;
                }
            }
            if let Some(path) = args.value("--chrome") {
                if let Err(code) = write_artifact(path, trace.to_chrome_json(), "chrome trace") {
                    return code;
                }
            }
            if args.value("--svg").is_none()
                && args.value("--json").is_none()
                && args.value("--chrome").is_none()
            {
                println!("{}", trace.ascii_timeline(100));
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let max_inflight = match args.usize_flag("--max-inflight", 8) {
                Ok(v) => v,
                Err(e) => return fail(e, EXIT_USAGE),
            };
            let max_n = match args.usize_flag("--max-n", 8192) {
                Ok(v) => v,
                Err(e) => return fail(e, EXIT_USAGE),
            };
            let cfg = ServerConfig {
                addr: args.value("--addr").unwrap_or("127.0.0.1:0").to_string(),
                threads,
                max_inflight,
                max_n,
                trace_requests: args.flag("--trace-requests"),
                ..ServerConfig::default()
            };
            let server = match Server::start(cfg) {
                Ok(s) => s,
                Err(e) => return fail(format!("cannot bind: {e}"), EXIT_INPUT),
            };
            // Parseable readiness line on stdout (scripts wait for it);
            // stdout is block-buffered when piped, so flush explicitly.
            println!("listening on {}", server.addr());
            let _ = std::io::stdout().flush();
            // Blocks until a client sends the `shutdown` verb.
            server.join();
            ExitCode::SUCCESS
        }
        "request" => {
            let Some(addr) = args.value("--addr") else {
                return fail("missing --addr HOST:PORT", EXIT_USAGE);
            };
            let line = match args.value("--json") {
                Some(l) => l.to_string(),
                None => {
                    let mut buf = String::new();
                    if let Err(e) = std::io::stdin().lock().read_line(&mut buf) {
                        return fail(format!("cannot read stdin: {e}"), EXIT_INPUT);
                    }
                    buf.trim().to_string()
                }
            };
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(e) => return fail(format!("cannot connect to {addr}: {e}"), EXIT_INPUT),
            };
            if let Err(e) = client.send(&line) {
                return fail(format!("cannot send request: {e}"), EXIT_INPUT);
            }
            let raw = match client.recv_raw() {
                Ok(Some(r)) => r,
                Ok(None) => return fail("server closed the connection", EXIT_INPUT),
                Err(e) => return fail(format!("cannot read response: {e}"), EXIT_INPUT),
            };
            println!("{raw}");
            // Exit code mirrors the typed error taxonomy: scripts retry
            // on busy (4) and treat anything else as final.
            match dcst_runtime::jsonv::parse(&raw) {
                Ok(doc) => {
                    let ok = matches!(doc.get("ok"), Some(dcst_runtime::jsonv::Json::Bool(true)));
                    if ok {
                        ExitCode::SUCCESS
                    } else {
                        let code = doc
                            .get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(|c| c.as_str())
                            .unwrap_or("internal");
                        ExitCode::from(if code == "busy" {
                            EXIT_BUSY
                        } else {
                            EXIT_NUMERICAL
                        })
                    }
                }
                Err(e) => fail(format!("malformed response: {e}"), EXIT_INPUT),
            }
        }
        _ => usage(),
    }
}
