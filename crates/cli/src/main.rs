//! `dcst` — command-line front end for the workspace.
//!
//! ```text
//! dcst generate --type 4 --n 1000 --seed 7 --out t.txt
//! dcst info     --in t.txt
//! dcst solve    --in t.txt [--solver taskflow|seq|forkjoin|levelpar|mrrr|qr]
//!               [--subset il:iu] [--threads k] [--check] [--metrics]
//! dcst trace    --type 4 --n 1000 --svg trace.svg [--json trace.json]
//!               [--chrome trace.json]
//! ```
//!
//! With `DCST_TRACE=out.json` in the environment, `solve --solver taskflow`
//! additionally records the run and writes a Chrome trace-event file
//! (loadable in `chrome://tracing` / Perfetto).

use dcst_core::{
    DcError, DcOptions, DcStats, ForkJoinDc, LevelParallelDc, MetricsRecorder, SequentialDc,
    TaskFlowDc,
};
use dcst_mrrr::{MrrrError, MrrrOptions, MrrrSolver};
use dcst_qriter::QrError;
use dcst_runtime::{RuntimeMetrics, Trace};
use dcst_tridiag::gen::MatrixType;
use dcst_tridiag::io::{read_tridiag, write_tridiag};
use dcst_tridiag::SymTridiag;
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    raw: Vec<String>,
}

impl Args {
    fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }
    fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }
    fn usize_or(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dcst generate --type K --n N [--seed S] [--out FILE]\n  \
         dcst info --in FILE\n  \
         dcst solve --in FILE [--solver taskflow|seq|forkjoin|levelpar|mrrr|qr] \
         [--subset il:iu] [--threads K] [--check] [--metrics]\n  \
         dcst trace [--type K] [--n N] [--svg FILE] [--json FILE] [--chrome FILE]\n\
         env: DCST_TRACE=FILE with 'solve --solver taskflow' writes a Chrome trace-event file"
    );
    ExitCode::from(2)
}

// Exit codes: 0 = success, 1 = input error (unreadable/unparsable file or a
// matrix with NaN/Inf entries), 2 = usage error, 3 = numerical failure (a
// solver gave up on a well-formed input). Scripts driving the benchmark
// suite rely on 1-vs-3 to tell bad data from convergence problems.
const EXIT_INPUT: u8 = 1;
const EXIT_NUMERICAL: u8 = 3;

fn fail<E: std::fmt::Display>(e: E, code: u8) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(code)
}

fn dc_code(e: &DcError) -> u8 {
    match e {
        DcError::NonFinite | DcError::Leaf(QrError::NonFinite) => EXIT_INPUT,
        _ => EXIT_NUMERICAL,
    }
}

fn qr_code(e: &QrError) -> u8 {
    match e {
        QrError::NonFinite => EXIT_INPUT,
        QrError::NoConvergence { .. } => EXIT_NUMERICAL,
    }
}

fn mrrr_code(e: &MrrrError) -> u8 {
    match e {
        MrrrError::NonFinite => EXIT_INPUT,
        MrrrError::ClusterFailure { .. } => EXIT_NUMERICAL,
    }
}

fn load(args: &Args) -> Result<SymTridiag, String> {
    let path = args.value("--in").ok_or("missing --in FILE")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_tridiag(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    let args = Args { raw: argv };
    let threads = args.usize_or(
        "--threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );

    match cmd.as_str() {
        "generate" => {
            let ty = match MatrixType::from_index(args.usize_or("--type", 4)) {
                Some(t) => t,
                None => {
                    eprintln!("--type must be 1..=15");
                    return ExitCode::from(2);
                }
            };
            let n = args.usize_or("--n", 1000);
            let seed = args.usize_or("--seed", 1) as u64;
            let t = ty.generate(n, seed);
            match args.value("--out") {
                Some(path) => {
                    let f = match std::fs::File::create(path) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("cannot create {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    write_tridiag(std::io::BufWriter::new(f), &t).expect("write failed");
                    eprintln!("wrote type-{} matrix (n = {n}) to {path}", ty.index());
                }
                None => {
                    write_tridiag(std::io::stdout().lock(), &t).expect("write failed");
                }
            }
            ExitCode::SUCCESS
        }
        "info" => {
            let t = match load(&args) {
                Ok(t) => t,
                Err(e) => return fail(e, EXIT_INPUT),
            };
            let (gl, gu) = t.gershgorin_bounds();
            let splits = (0..t.n().saturating_sub(1))
                .filter(|&i| {
                    t.e[i].abs()
                        <= f64::EPSILON * (t.d[i].abs() * t.d[i + 1].abs()).sqrt()
                            + f64::MIN_POSITIVE
                })
                .count();
            println!("n               = {}", t.n());
            println!("max-norm        = {:.6e}", t.max_norm());
            println!("gershgorin      = [{gl:.6e}, {gu:.6e}]");
            println!("irreducible blocks = {}", splits + 1);
            println!("eigenvalues < 0 = {}", dcst_tridiag::sturm_count(&t, 0.0));
            ExitCode::SUCCESS
        }
        "solve" => {
            let t = match load(&args) {
                Ok(t) => t,
                Err(e) => return fail(e, EXIT_INPUT),
            };
            let solver_name = args.value("--solver").unwrap_or("taskflow");
            let opts = DcOptions {
                threads,
                ..DcOptions::default()
            };
            let trace_path = std::env::var("DCST_TRACE").ok();
            // Bracket the solve with kernel-counter snapshots (no-op
            // counters unless built with the `metrics` feature, which the
            // CLI enables by default).
            let recorder = args.flag("--metrics").then(MetricsRecorder::start);
            let mut dc_stats: Option<DcStats> = None;
            let mut observed: Option<(Trace, RuntimeMetrics)> = None;
            let start = Instant::now();
            let (values, vectors) =
                match solver_name {
                    "mrrr" => {
                        let solver = MrrrSolver::new(MrrrOptions {
                            threads,
                            ..Default::default()
                        });
                        if let Some(spec) = args.value("--subset") {
                            let (il, iu) = match spec.split_once(':') {
                                Some((a, b)) => (a.parse().unwrap_or(0), b.parse().unwrap_or(0)),
                                None => {
                                    eprintln!("--subset wants il:iu");
                                    return ExitCode::from(2);
                                }
                            };
                            match solver.solve_range(&t, il, iu) {
                                Ok(r) => r,
                                Err(e) => return fail(&e, mrrr_code(&e)),
                            }
                        } else {
                            match solver.solve(&t) {
                                Ok(r) => r,
                                Err(e) => return fail(&e, mrrr_code(&e)),
                            }
                        }
                    }
                    "qr" => match dcst_qriter::steqr(&t) {
                        Ok(r) => r,
                        Err(e) => return fail(&e, qr_code(&e)),
                    },
                    name => {
                        // The D&C variants all expose solve_with_stats, so the
                        // deflation statistics behind --metrics come for free;
                        // the task-flow driver can additionally record the run
                        // (trace + scheduler counters) for DCST_TRACE.
                        let result =
                            match name {
                                "taskflow" => {
                                    let solver = TaskFlowDc::new(opts);
                                    if trace_path.is_some() || recorder.is_some() {
                                        solver.solve_observed(&t).map(|(eig, stats, trace, rm)| {
                                            dc_stats = Some(stats);
                                            observed = Some((trace, rm));
                                            eig
                                        })
                                    } else {
                                        solver.solve_with_stats(&t).map(|(eig, stats)| {
                                            dc_stats = Some(stats);
                                            eig
                                        })
                                    }
                                }
                                "seq" => SequentialDc::new(DcOptions { threads: 1, ..opts })
                                    .solve_with_stats(&t)
                                    .map(|(eig, stats)| {
                                        dc_stats = Some(stats);
                                        eig
                                    }),
                                "forkjoin" => ForkJoinDc::new(opts).solve_with_stats(&t).map(
                                    |(eig, stats)| {
                                        dc_stats = Some(stats);
                                        eig
                                    },
                                ),
                                "levelpar" => LevelParallelDc::new(opts).solve_with_stats(&t).map(
                                    |(eig, stats)| {
                                        dc_stats = Some(stats);
                                        eig
                                    },
                                ),
                                other => {
                                    eprintln!("unknown solver '{other}'");
                                    return ExitCode::from(2);
                                }
                            };
                        let eig = match result {
                            Ok(eig) => eig,
                            Err(e) => return fail(&e, dc_code(&e)),
                        };
                        (eig.values, eig.vectors)
                    }
                };
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "{solver_name}: {} eigenpairs in {:.3}s ({threads} threads)",
                values.len(),
                secs
            );
            if let Some((trace, rm)) = &observed {
                if let Some(path) = trace_path.as_deref() {
                    // Scheduler counters ride along as per-lane metadata so
                    // the trace viewer shows the contention story too.
                    std::fs::write(path, trace.to_chrome_json_with_metrics(Some(rm)))
                        .expect("write chrome trace");
                    eprintln!(
                        "chrome trace -> {path} ({} records, {} edges)",
                        trace.records.len(),
                        trace.edges.len()
                    );
                }
                // Parseable reconciliation line: the trace records every
                // retired task, so this always equals the record count
                // (zeros without the `metrics` feature compiled in).
                eprintln!("tasks executed = {}", rm.tasks_executed());
            } else if trace_path.is_some() {
                eprintln!("note: DCST_TRACE is only honored by --solver taskflow");
            }
            if let Some(rec) = recorder {
                match &dc_stats {
                    Some(stats) => {
                        eprintln!("{}", rec.finish(stats).report());
                        if let Some((_, rm)) = &observed {
                            eprintln!("{}", rm.report());
                        }
                    }
                    None => eprintln!("note: --metrics has no statistics for '{solver_name}'"),
                }
            }
            if args.flag("--check") && vectors.cols() == values.len() && vectors.cols() == t.n() {
                let orth = dcst_matrix::orthogonality_error(&vectors);
                let res = dcst_matrix::residual_error(
                    t.n(),
                    |x, y| t.matvec(x, y),
                    &values,
                    &vectors,
                    t.max_norm(),
                );
                eprintln!("orthogonality = {orth:.3e}   residual = {res:.3e}");
            }
            let mut out = String::with_capacity(values.len() * 24);
            for v in &values {
                out.push_str(&format!("{v:.17e}\n"));
            }
            print!("{out}");
            ExitCode::SUCCESS
        }
        "trace" => {
            let ty =
                MatrixType::from_index(args.usize_or("--type", 4)).unwrap_or(MatrixType::Type4);
            let n = args.usize_or("--n", 1000);
            let t = ty.generate(n, 1);
            let solver = TaskFlowDc::new(DcOptions {
                threads,
                ..DcOptions::default()
            });
            let (_, stats, trace) = match solver.solve_traced(&t) {
                Ok(r) => r,
                Err(e) => return fail(&e, dc_code(&e)),
            };
            eprintln!(
                "n = {n}, type {}: makespan {:.1} ms, idle {:.1}%, deflation {:.0}%",
                ty.index(),
                trace.makespan_us() as f64 / 1e3,
                100.0 * trace.idle_fraction(),
                100.0 * stats.overall_deflation()
            );
            if let Some(path) = args.value("--svg") {
                std::fs::write(path, trace.to_svg(1200, 24)).expect("write svg");
                eprintln!("svg timeline -> {path}");
            }
            if let Some(path) = args.value("--json") {
                std::fs::write(path, trace.to_json()).expect("write json");
                eprintln!("json trace   -> {path}");
            }
            if let Some(path) = args.value("--chrome") {
                std::fs::write(path, trace.to_chrome_json()).expect("write chrome trace");
                eprintln!("chrome trace -> {path}");
            }
            if args.value("--svg").is_none()
                && args.value("--json").is_none()
                && args.value("--chrome").is_none()
            {
                println!("{}", trace.ascii_timeline(100));
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
