//! Gu–Eisenstat stabilization and eigenvector assembly (`dlaed3` analogue).
//!
//! Computing eigenvectors of `D + ρzzᵀ` directly from the computed roots
//! loses orthogonality when roots are close. Gu & Eisenstat's fix: find the
//! vector ẑ for which the *computed* λ's are the exact secular roots,
//!
//! ```text
//! ẑᵢ² = (λ_{k−1} − dᵢ) · Π_{j<k−1} (λ_j − dᵢ)/(d_j − dᵢ)   (j ≠ i terms)
//! ```
//!
//! and assemble eigenvectors from ẑ — they are then orthogonal to working
//! precision regardless of root clustering. The product over roots `j`
//! splits into independent per-panel partial products: exactly the paper's
//! `ComputeLocalW` (panel) and `ReduceW` (join) tasks.

use crate::simd;
use dcst_matrix::util::sign;
use std::ops::Range;

/// Partial Gu–Eisenstat products over the root panel `jrange`.
///
/// `col0` is the column index stored at offset 0 of `deltas` (pass 0 when
/// the buffer holds all k columns; pass the panel start when handing in a
/// panel slice).
///
/// `deltas` is a column-major buffer with leading dimension `ld ≥ k` whose
/// column `j` holds `delta_j[i] = d_i − λ_j` as produced by
/// [`solve_secular_root`](crate::solve_secular_root). Returns
/// `out[i] = Π_{j ∈ jrange} tᵢⱼ` with `tᵢᵢ = delta_i[i]` and
/// `tᵢⱼ = delta_j[i] / (dlamda_i − dlamda_j)` otherwise.
pub fn local_w_products(
    dlamda: &[f64],
    deltas: &[f64],
    ld: usize,
    col0: usize,
    jrange: Range<usize>,
) -> Vec<f64> {
    local_w_impl(dlamda, deltas, ld, col0, jrange, !simd::use_simd())
}

/// [`local_w_products`] forced onto the scalar kernel body (the test
/// oracle). The SIMD path performs the identical element-wise operations,
/// so both variants return bit-identical products.
pub fn local_w_products_scalar(
    dlamda: &[f64],
    deltas: &[f64],
    ld: usize,
    col0: usize,
    jrange: Range<usize>,
) -> Vec<f64> {
    local_w_impl(dlamda, deltas, ld, col0, jrange, true)
}

fn local_w_impl(
    dlamda: &[f64],
    deltas: &[f64],
    ld: usize,
    col0: usize,
    jrange: Range<usize>,
    scalar: bool,
) -> Vec<f64> {
    let k = dlamda.len();
    debug_assert!(ld >= k);
    let mut out = vec![1.0f64; k];
    for j in jrange {
        let col = &deltas[(j - col0) * ld..(j - col0) * ld + k];
        simd::local_w_col(scalar, dlamda, col, j, &mut out);
    }
    out
}

/// Combine panel partial products into ẑ, restoring the sign of the
/// original `w`. Each product must be the element-wise product of the
/// panels covering all `k` roots exactly once.
pub fn reduce_w(w: &[f64], partials: &[Vec<f64>]) -> Vec<f64> {
    let k = w.len();
    let mut acc = vec![1.0f64; k];
    for p in partials {
        debug_assert_eq!(p.len(), k);
        for (a, &x) in acc.iter_mut().zip(p) {
            *a *= x;
        }
    }
    acc.iter()
        .zip(w)
        .map(|(&prod, &wi)| sign((-prod).max(0.0).sqrt(), wi))
        .collect()
}

/// Overwrite delta columns `jrange` of the buffer (leading dimension `ld`)
/// with the normalized eigenvectors of the secular problem, rows permuted
/// to workspace storage order by `sec_to_slot`.
///
/// Column `j` becomes `x` with `x[sec_to_slot[i]] = (ẑᵢ / delta_j[i]) / ‖·‖`.
pub fn assemble_vectors(
    zhat: &[f64],
    deltas: &mut [f64],
    ld: usize,
    col0: usize,
    jrange: Range<usize>,
    sec_to_slot: &[usize],
) {
    assemble_impl(
        zhat,
        deltas,
        ld,
        col0,
        jrange,
        sec_to_slot,
        !simd::use_simd(),
    )
}

/// [`assemble_vectors`] forced onto the scalar kernel body (the test
/// oracle). The SIMD path vectorizes the division and the norm
/// accumulation, so normalized columns can differ by rounding-order noise
/// within a few ulps.
pub fn assemble_vectors_scalar(
    zhat: &[f64],
    deltas: &mut [f64],
    ld: usize,
    col0: usize,
    jrange: Range<usize>,
    sec_to_slot: &[usize],
) {
    assemble_impl(zhat, deltas, ld, col0, jrange, sec_to_slot, true)
}

fn assemble_impl(
    zhat: &[f64],
    deltas: &mut [f64],
    ld: usize,
    col0: usize,
    jrange: Range<usize>,
    sec_to_slot: &[usize],
    scalar: bool,
) {
    let k = zhat.len();
    debug_assert!(ld >= k);
    debug_assert_eq!(sec_to_slot.len(), k);
    let mut tmp = vec![0.0f64; k];
    for j in jrange {
        let col = &mut deltas[(j - col0) * ld..(j - col0) * ld + k];
        let nrm2 = simd::assemble_col(scalar, zhat, col, &mut tmp);
        let inv = 1.0 / nrm2.sqrt();
        // Scatter through the slot permutation stays scalar: the indices
        // are arbitrary, and k writes are cheap next to the k divisions.
        for i in 0..k {
            col[sec_to_slot[i]] = tmp[i] * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_secular_root;

    /// Solve the whole k × k secular problem and return (λ, X) with X in
    /// secular row order (identity slot map).
    fn full_solve(d: &[f64], z: &[f64], rho: f64) -> (Vec<f64>, Vec<f64>) {
        let k = d.len();
        let mut deltas = vec![0.0; k * k];
        let mut lam = vec![0.0; k];
        for j in 0..k {
            lam[j] = solve_secular_root(j, d, z, rho, &mut deltas[j * k..(j + 1) * k]).unwrap();
        }
        let partials = vec![
            local_w_products(d, &deltas, k, 0, 0..k / 2),
            local_w_products(d, &deltas, k, 0, k / 2..k),
        ];
        let zhat = reduce_w(z, &partials);
        let ident: Vec<usize> = (0..k).collect();
        assemble_vectors(&zhat, &mut deltas, k, 0, 0..k, &ident);
        (lam, deltas)
    }

    fn rank_one_apply(d: &[f64], z: &[f64], rho: f64, x: &[f64], y: &mut [f64]) {
        let zx: f64 = z.iter().zip(x).map(|(a, b)| a * b).sum();
        for i in 0..d.len() {
            y[i] = d[i] * x[i] + rho * z[i] * zx;
        }
    }

    fn check_eigenpairs(d: &[f64], z: &[f64], rho: f64, lam: &[f64], x: &[f64], tol: f64) {
        let k = d.len();
        let mut y = vec![0.0; k];
        for j in 0..k {
            let col = &x[j * k..(j + 1) * k];
            rank_one_apply(d, z, rho, col, &mut y);
            for i in 0..k {
                assert!(
                    (y[i] - lam[j] * col[i]).abs() < tol,
                    "residual root {j} row {i}: {} vs {}",
                    y[i],
                    lam[j] * col[i]
                );
            }
        }
        // Orthonormality.
        for a in 0..k {
            for b in 0..=a {
                let g: f64 = (0..k).map(|i| x[a * k + i] * x[b * k + i]).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((g - want).abs() < tol, "gram ({a},{b}) = {g}");
            }
        }
    }

    #[test]
    fn small_problem_full_pipeline() {
        let d = [0.0, 1.0, 2.5, 4.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let rho = 1.5;
        let (lam, x) = full_solve(&d, &z, rho);
        check_eigenpairs(&d, &z, rho, &lam, &x, 1e-12);
    }

    #[test]
    fn zhat_close_to_z_for_well_separated_problem() {
        let d = [0.0, 10.0, 20.0, 30.0];
        let z = [0.3, -0.4, 0.5, 0.2];
        let rho = 1.0;
        let k = 4;
        let mut deltas = vec![0.0; k * k];
        for j in 0..k {
            solve_secular_root(j, &d, &z, rho, &mut deltas[j * k..(j + 1) * k]).unwrap();
        }
        let partials = vec![local_w_products(&d, &deltas, k, 0, 0..k)];
        let zhat = reduce_w(&z, &partials);
        for (a, b) in zhat.iter().zip(&z) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn clustered_poles_still_orthogonal() {
        // The whole point of Gu–Eisenstat: tight pole clusters must not
        // destroy orthogonality.
        let d = [0.0, 1e-13, 2e-13, 1.0, 1.0 + 1e-13, 2.0];
        let z = {
            let raw: [f64; 6] = [0.3, 0.35, 0.4, 0.45, 0.5, 0.55];
            let n: f64 = raw.iter().map(|x| x * x).sum::<f64>().sqrt();
            [
                raw[0] / n,
                raw[1] / n,
                raw[2] / n,
                raw[3] / n,
                raw[4] / n,
                raw[5] / n,
            ]
        };
        let rho = 0.7;
        let (lam, x) = full_solve(&d, &z, rho);
        check_eigenpairs(&d, &z, rho, &lam, &x, 1e-10);
        assert!(lam.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn panel_split_is_associative() {
        let d = [0.0, 0.5, 1.5, 3.0, 6.0];
        let z = [0.4, 0.4, 0.4, 0.4, 0.6];
        let rho = 2.0;
        let k = 5;
        let mut deltas = vec![0.0; k * k];
        for j in 0..k {
            solve_secular_root(j, &d, &z, rho, &mut deltas[j * k..(j + 1) * k]).unwrap();
        }
        let one = vec![local_w_products(&d, &deltas, k, 0, 0..k)];
        let many: Vec<Vec<f64>> = (0..k)
            .map(|j| local_w_products(&d, &deltas, k, 0, j..j + 1))
            .collect();
        let za = reduce_w(&z, &one);
        let zb = reduce_w(&z, &many);
        for (a, b) in za.iter().zip(&zb) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }

    #[test]
    fn slot_permutation_places_rows() {
        let d = [0.0, 1.0, 3.0];
        let z = [0.6, 0.6, 0.529_150_262_212_918_2]; // unit-ish
        let rho = 1.0;
        let k = 3;
        let mut deltas = vec![0.0; k * k];
        let mut lam = vec![0.0; k];
        for j in 0..k {
            lam[j] = solve_secular_root(j, &d, &z, rho, &mut deltas[j * k..(j + 1) * k]).unwrap();
        }
        let zhat = reduce_w(&z, &[local_w_products(&d, &deltas, k, 0, 0..k)]);
        let mut permuted = deltas.clone();
        let slot_map = [2usize, 0, 1];
        assemble_vectors(&zhat, &mut deltas, k, 0, 0..k, &[0, 1, 2]);
        assemble_vectors(&zhat, &mut permuted, k, 0, 0..k, &slot_map);
        for j in 0..k {
            for i in 0..k {
                assert_eq!(permuted[j * k + slot_map[i]], deltas[j * k + i]);
            }
        }
    }
}
