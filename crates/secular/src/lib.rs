//! Rank-one-update kernels for the divide & conquer merge phase.
//!
//! A merge combines two solved subproblems `T₁ = V₁D₁V₁ᵀ`, `T₂ = V₂D₂V₂ᵀ`
//! into the eigenproblem of `D + ρ z zᵀ` (the paper's Eq. (6)). This crate
//! provides the scalar/vector kernels of that reduction, mirroring LAPACK:
//!
//! * [`deflate`] — deflation detection, Givens pairing and 4-group
//!   permutation (`dlaed2` analogue);
//! * [`solve_secular_root`] — one root of the secular equation with
//!   accurately-computed pole distances (`dlaed4` analogue);
//! * [`local_w_products`] / [`reduce_w`] — the Gu–Eisenstat ẑ
//!   recomputation, split the way the paper's `ComputeLocalW`/`ReduceW`
//!   tasks split it (`dlaed3` analogue);
//! * [`assemble_vectors`] — stable eigenvector assembly for a panel of
//!   secular roots.
//!
//! Everything here is sequential by design: the *parallelism* lives in
//! `dcst-core`, which calls these kernels from panel tasks.

mod deflate;
mod roots;
mod vectors;

pub use deflate::{deflate, Deflation, DeflationInput, GivensRot, SlotType};
pub use roots::{secular_function, solve_secular_root, SecularError};
pub use vectors::{assemble_vectors, local_w_products, reduce_w};
