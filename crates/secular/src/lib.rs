//! Rank-one-update kernels for the divide & conquer merge phase.
//!
//! A merge combines two solved subproblems `T₁ = V₁D₁V₁ᵀ`, `T₂ = V₂D₂V₂ᵀ`
//! into the eigenproblem of `D + ρ z zᵀ` (the paper's Eq. (6)). This crate
//! provides the scalar/vector kernels of that reduction, mirroring LAPACK:
//!
//! * [`deflate`] — deflation detection, Givens pairing and 4-group
//!   permutation (`dlaed2` analogue);
//! * [`solve_secular_root`] — one root of the secular equation with
//!   accurately-computed pole distances (`dlaed4` analogue);
//! * [`local_w_products`] / [`reduce_w`] — the Gu–Eisenstat ẑ
//!   recomputation, split the way the paper's `ComputeLocalW`/`ReduceW`
//!   tasks split it (`dlaed3` analogue);
//! * [`assemble_vectors`] — stable eigenvector assembly for a panel of
//!   secular roots.
//!
//! Everything here is sequential by design: the *parallelism* lives in
//! `dcst-core`, which calls these kernels from panel tasks.
//!
//! The O(k²) inner loops (secular sweeps, local-W column products, vector
//! normalization) are vectorized in [`simd`] with runtime AVX2/FMA dispatch
//! through the workspace-wide `dcst_matrix::simd_level` detector; the
//! `*_scalar` entry points pin the original scalar bodies and serve as
//! test oracles and as the `DCST_FORCE_SCALAR=1` comparison baseline.

mod deflate;
mod roots;
mod simd;
pub mod structured;
mod vectors;

pub use deflate::{deflate, Deflation, DeflationInput, GivensRot, SlotType};
pub use roots::{
    secular_function, solve_secular_root, solve_secular_root_scalar, solve_secular_root_with_maxit,
    SecularError,
};
pub use simd::{max_abs, max_abs_scalar};
pub use structured::{
    compress_secular_x, estimate_offdiag_rank, leaf_size, rank_tolerance, StructuredX,
};
pub use vectors::{
    assemble_vectors, assemble_vectors_scalar, local_w_products, local_w_products_scalar, reduce_w,
};
