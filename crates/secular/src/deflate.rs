//! Deflation detection and bookkeeping (`dlaed2` analogue).
//!
//! Given the merged diagonal `d` (two sorted-by-permutation runs), the
//! rank-one vector `z` and the coupling `ρ`, this pass decides which
//! eigenpairs of `D + ρzzᵀ` are already known ("deflated"):
//!
//! * `ρ|zᵢ|` negligible → `(dᵢ, vᵢ)` is an eigenpair as is;
//! * two surviving entries with nearly-equal `dᵢ` → a Givens rotation on
//!   the pair zeroes one `z` component, deflating one of them.
//!
//! The output indexes everything the merge's panel tasks need: which
//! source columns feed the compressed workspace in which order (grouped by
//! row support — the paper's four groups), the Givens rotations to apply,
//! and the reduced secular problem `(dlamda, w, ρ)`.

use dcst_matrix::util::{lapy2, EPS};

/// Row-support class of a column in the compressed workspace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotType {
    /// Non-zero only in rows `0..n1` (came from the first subproblem).
    Top = 1,
    /// Dense (a Givens rotation mixed columns across the cut).
    Full = 2,
    /// Non-zero only in rows `n1..n`.
    Bottom = 3,
    /// Deflated (stored full height at the tail).
    Deflated = 4,
}

/// A Givens rotation to apply to two physical columns of the child
/// eigenvector matrix before permutation, in BLAS `drot` convention:
/// `[a, b] ← [c·a + s·b, −s·a + c·b]` (column `col_a` deflates).
#[derive(Clone, Copy, Debug)]
pub struct GivensRot {
    pub col_a: usize,
    pub col_b: usize,
    pub c: f64,
    pub s: f64,
}

/// Input of the deflation pass.
pub struct DeflationInput<'a> {
    /// Merged diagonal in *physical* order: entries `0..n1` belong to the
    /// first child, `n1..n` to the second; each child range is sorted
    /// ascending when permuted by its `idxq` range.
    pub d: &'a [f64],
    /// Rank-one vector in physical order, unit 2-norm.
    pub z: &'a [f64],
    /// Signed coupling `β` (`ρ = 2|β|` after normalization).
    pub beta: f64,
    /// Size of the first child.
    pub n1: usize,
    /// Permutation sorting each child run ascending:
    /// `idxq[0..n1]` indexes into `0..n1`, `idxq[n1..]` into `n1..n`.
    pub idxq: &'a [usize],
}

/// Output of the deflation pass. Slot indices refer to the *storage*
/// order of the compressed workspace: first all [`SlotType::Top`] columns,
/// then [`SlotType::Full`], then [`SlotType::Bottom`], then deflated.
pub struct Deflation {
    /// Number of non-deflated eigenvalues (the size of the secular problem).
    pub k: usize,
    /// Problem size `n`.
    pub n: usize,
    /// `n1` copied through for the update GEMM split.
    pub n1: usize,
    /// Normalized coupling for the secular solver (`2|β|`), > 0.
    pub rho: f64,
    /// Poles of the secular equation, strictly ascending, length `k`.
    pub dlamda: Vec<f64>,
    /// z-components matching `dlamda`, length `k`.
    pub w: Vec<f64>,
    /// Deflated eigenvalues ascending, length `n − k`.
    pub d_deflated: Vec<f64>,
    /// For storage slot `s` (0-based over all `n` slots: `0..k` are the
    /// non-deflated grouped Top/Full/Bottom, `k..n` the deflated ascending):
    /// the physical source column in the child eigenvector matrix.
    pub perm: Vec<usize>,
    /// Storage-slot types, length `n` (`k..n` are all `Deflated`).
    pub slot_type: Vec<SlotType>,
    /// Maps secular index (ascending `dlamda` order, `0..k`) to storage
    /// slot (`0..k`). Row `sec_to_slot[i]` of the secular eigenvector
    /// matrix X corresponds to workspace column `sec_to_slot[i]`.
    pub sec_to_slot: Vec<usize>,
    /// Givens rotations to apply (in order) to physical columns before the
    /// permutation/copy.
    pub givens: Vec<GivensRot>,
    /// Counts per group: `[Top, Full, Bottom, Deflated]`.
    pub ctot: [usize; 4],
}

impl Deflation {
    /// Fraction of the merge deflated, in `[0, 1]` (the paper's headline
    /// matrix-dependence metric).
    pub fn deflation_ratio(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (self.n - self.k) as f64 / self.n as f64
    }
}

/// Run deflation. See the module docs; mirrors `dlaed2`.
pub fn deflate(input: &DeflationInput<'_>) -> Deflation {
    let n = input.d.len();
    let n1 = input.n1;
    assert!(n1 <= n && input.z.len() == n && input.idxq.len() == n);

    // Effective z (second block negated when β < 0) and ρ = 2|β|.
    let mut z: Vec<f64> = input.z.to_vec();
    if input.beta < 0.0 {
        for zi in &mut z[n1..] {
            *zi = -*zi;
        }
    }
    let rho = 2.0 * input.beta.abs();
    let mut d: Vec<f64> = input.d.to_vec();

    // Sorted logical view: merge the two (idxq-sorted) runs.
    let dl: Vec<f64> = input.idxq.iter().map(|&p| d[p]).collect();
    let merged = dcst_matrix::merge_perm(&dl, n1);
    // sorted[t] = physical index of the t-th smallest diagonal entry.
    let sorted: Vec<usize> = merged.iter().map(|&r| input.idxq[r]).collect();

    let zmax = crate::simd::max_abs(&z);
    let dmax = crate::simd::max_abs(&d);
    let tol = 8.0 * EPS * zmax.max(dmax);

    let block_of = |p: usize| {
        if p < n1 {
            SlotType::Top
        } else {
            SlotType::Bottom
        }
    };

    let mut givens = Vec::new();
    // Physical indices of surviving (non-deflated) entries, ascending d.
    let mut survivors: Vec<usize> = Vec::with_capacity(n);
    let mut survivor_type: Vec<SlotType> = Vec::with_capacity(n);
    // Physical indices of deflated entries (eigenvalue = d[p] after
    // rotations).
    let mut deflated: Vec<usize> = Vec::with_capacity(n);

    if rho * zmax <= tol {
        // Everything deflates: the rank-one update is numerically zero.
        deflated.extend(sorted.iter().copied());
    } else {
        let mut prev: Option<(usize, SlotType)> = None;
        for &p in &sorted {
            if rho * z[p].abs() <= tol {
                deflated.push(p);
                continue;
            }
            match prev {
                None => prev = Some((p, block_of(p))),
                Some((q, qtype)) => {
                    // Try to deflate q against p (d[q] <= d[p]).
                    let s_ = z[q];
                    let c_ = z[p];
                    let tau = lapy2(c_, s_);
                    let tdiff = d[p] - d[q];
                    let c = c_ / tau;
                    let s = -s_ / tau;
                    if (tdiff * c * s).abs() <= tol {
                        // Rotate (q, p): z[q] → 0, z[p] → τ.
                        z[p] = tau;
                        z[q] = 0.0;
                        givens.push(GivensRot {
                            col_a: q,
                            col_b: p,
                            c,
                            s,
                        });
                        let dq = d[q];
                        let dp = d[p];
                        d[q] = dq * c * c + dp * s * s;
                        d[p] = dq * s * s + dp * c * c;
                        deflated.push(q);
                        // The survivor is dense if the pair crossed blocks
                        // or either column was already dense.
                        let ptype = if qtype != block_of(p) || qtype == SlotType::Full {
                            SlotType::Full
                        } else {
                            block_of(p)
                        };
                        prev = Some((p, ptype));
                    } else {
                        survivors.push(q);
                        survivor_type.push(qtype);
                        prev = Some((p, block_of(p)));
                    }
                }
            }
        }
        if let Some((q, qtype)) = prev {
            survivors.push(q);
            survivor_type.push(qtype);
        }
    }

    let k = survivors.len();

    // Deflated eigenvalues must come out ascending (rotations may have
    // perturbed the order).
    deflated.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());

    // Storage order: stable partition of survivors by type.
    let mut perm = Vec::with_capacity(n);
    let mut slot_type = Vec::with_capacity(n);
    let mut sec_to_slot = vec![0usize; k];
    let mut ctot = [0usize; 4];
    for &t in &survivor_type {
        ctot[t as usize - 1] += 1;
    }
    ctot[3] = n - k;
    let mut next_of = [0usize, ctot[0], ctot[0] + ctot[1], 0];
    // First lay out the k non-deflated slots grouped Top|Full|Bottom …
    let mut slots = vec![(0usize, SlotType::Deflated); k];
    for (i, (&p, &t)) in survivors.iter().zip(&survivor_type).enumerate() {
        let g = t as usize - 1;
        let slot = next_of[g];
        next_of[g] += 1;
        slots[slot] = (p, t);
        sec_to_slot[i] = slot;
    }
    for &(p, t) in &slots {
        perm.push(p);
        slot_type.push(t);
    }
    // … then the deflated tail ascending.
    for &p in &deflated {
        perm.push(p);
        slot_type.push(SlotType::Deflated);
    }

    let dlamda: Vec<f64> = survivors.iter().map(|&p| d[p]).collect();
    let w: Vec<f64> = survivors.iter().map(|&p| z[p]).collect();
    let d_deflated: Vec<f64> = deflated.iter().map(|&p| d[p]).collect();

    Deflation {
        k,
        n,
        n1,
        rho,
        dlamda,
        w,
        d_deflated,
        perm,
        slot_type,
        sec_to_slot,
        givens,
        ctot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident_input<'a>(
        d: &'a [f64],
        z: &'a [f64],
        beta: f64,
        n1: usize,
        idxq: &'a [usize],
    ) -> DeflationInput<'a> {
        DeflationInput {
            d,
            z,
            beta,
            n1,
            idxq,
        }
    }

    #[test]
    fn no_deflation_when_everything_is_generic() {
        let d = [0.0, 2.0, 1.0, 3.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let idxq = [0, 1, 2, 3];
        let out = deflate(&ident_input(&d, &z, 0.5, 2, &idxq));
        assert_eq!(out.k, 4);
        assert_eq!(out.d_deflated.len(), 0);
        assert!(out.dlamda.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(out.rho, 1.0);
        // Survivors grouped: two Top (phys 0, 1) then two Bottom.
        assert_eq!(out.ctot, [2, 0, 2, 0]);
        assert!(out.givens.is_empty());
    }

    #[test]
    fn tiny_z_components_deflate() {
        let d = [0.0, 1.0, 2.0, 3.0];
        let z = [0.7, 1e-20, 0.7, 1e-20];
        let idxq = [0, 1, 2, 3];
        let out = deflate(&ident_input(&d, &z, 0.5, 2, &idxq));
        assert_eq!(out.k, 2);
        assert_eq!(out.d_deflated, vec![1.0, 3.0]);
        assert_eq!(out.dlamda, vec![0.0, 2.0]);
        assert_eq!(out.deflation_ratio(), 0.5);
    }

    #[test]
    fn equal_diagonals_deflate_via_givens() {
        // d has an exact tie across blocks: one of the pair must deflate
        // through a rotation, and the survivor becomes Full.
        let d = [0.0, 1.0, 1.0, 3.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let idxq = [0, 1, 2, 3];
        let out = deflate(&ident_input(&d, &z, 0.5, 2, &idxq));
        assert_eq!(out.k, 3);
        assert_eq!(out.givens.len(), 1);
        let g = out.givens[0];
        // Rotation is a perfect 45° mix: c = s magnitude 1/√2.
        assert!((g.c.abs() - 0.5f64.sqrt()).abs() < 1e-15);
        assert_eq!(out.d_deflated.len(), 1);
        assert!((out.d_deflated[0] - 1.0).abs() < 1e-14);
        // Combined z magnitude √(0.25+0.25).
        let full_idx = out
            .slot_type
            .iter()
            .position(|&t| t == SlotType::Full)
            .unwrap();
        let sec_i = out.sec_to_slot.iter().position(|&s| s == full_idx).unwrap();
        assert!((out.w[sec_i] - 0.5f64.sqrt()).abs() < 1e-15);
        assert_eq!(out.ctot, [1, 1, 1, 1]);
    }

    #[test]
    fn zero_rho_deflates_everything() {
        let d = [0.0, 1.0, 2.0, 3.0];
        let z = [0.5; 4];
        let idxq = [0, 1, 2, 3];
        let out = deflate(&ident_input(&d, &z, 0.0, 2, &idxq));
        assert_eq!(out.k, 0);
        assert_eq!(out.d_deflated, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(out.perm, vec![0, 1, 2, 3]);
    }

    #[test]
    fn negative_beta_flips_second_block_z() {
        let d = [0.0, 2.0, 1.0, 3.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let idxq = [0, 1, 2, 3];
        let out = deflate(&ident_input(&d, &z, -0.5, 2, &idxq));
        assert_eq!(out.rho, 1.0);
        // The secular w entries belonging to the bottom block are negated.
        // Physical 2 and 3 are the bottom block.
        for (i, &p) in out.perm[..out.k].iter().enumerate() {
            let sec_i = out.sec_to_slot.iter().position(|&s| s == i).unwrap();
            let expect = if p >= 2 { -0.5 } else { 0.5 };
            assert_eq!(out.w[sec_i], expect, "slot {i} phys {p}");
        }
    }

    #[test]
    fn unsorted_runs_are_handled_through_idxq() {
        // Physical order is not ascending within runs; idxq fixes it.
        let d = [2.0, 0.0, 3.0, 1.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let idxq = [1, 0, 3, 2];
        let out = deflate(&ident_input(&d, &z, 0.5, 2, &idxq));
        assert_eq!(out.k, 4);
        assert_eq!(out.dlamda, vec![0.0, 1.0, 2.0, 3.0]);
        // dlamda order must interleave blocks: phys 1 (Top), 3 (Bottom), 0, 2.
        assert_eq!(out.ctot, [2, 0, 2, 0]);
        // Top group slots hold phys {1, 0} in ascending-d order.
        assert_eq!(&out.perm[..2], &[1, 0]);
        assert_eq!(&out.perm[2..4], &[3, 2]);
    }

    #[test]
    fn perm_is_a_bijection() {
        let d = [0.0, 1.0, 1.0 + 1e-18, 2.0, 0.5, 3.0];
        let z = [0.4, 1e-19, 0.4, 0.4, 0.4, 0.4];
        let idxq = [0, 1, 2, 3, 4, 5];
        let out = deflate(&ident_input(&d, &z, 0.7, 3, &idxq));
        let mut p = out.perm.clone();
        p.sort_unstable();
        assert_eq!(p, (0..6).collect::<Vec<_>>());
        assert_eq!(out.k + out.d_deflated.len(), 6);
        assert_eq!(out.slot_type.len(), 6);
    }

    #[test]
    fn dlamda_strictly_ascending_after_deflation() {
        // Nearly-equal surviving values must have been paired off so the
        // secular poles are strictly separated.
        let n = 20;
        let d: Vec<f64> = (0..n).map(|i| (i / 2) as f64).collect(); // pairs of ties
        let z = vec![(1.0 / (n as f64)).sqrt(); n];
        let idxq: Vec<usize> = {
            // runs: first half 0,2,4.. values already ascending per run
            let mut v: Vec<usize> = (0..n / 2).collect();
            v.extend(n / 2..n);
            v
        };
        let out = deflate(&DeflationInput {
            d: &d,
            z: &z,
            beta: 1.0,
            n1: n / 2,
            idxq: &idxq,
        });
        assert!(
            out.dlamda.windows(2).all(|w| w[0] < w[1]),
            "{:?}",
            out.dlamda
        );
        assert!(out.k < n, "ties must deflate");
    }
}
