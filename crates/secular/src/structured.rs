//! Rank-structured view of the secular eigenvector matrix.
//!
//! In ascending-pole (secular) order the eigenvector matrix of
//! `D + ρzzᵀ` is Cauchy-like,
//!
//! ```text
//! x̃_ij = (ẑᵢ / (dᵢ − λⱼ)) / ‖·‖ⱼ ,
//! ```
//!
//! and interlacing (`dᵢ < λᵢ < dᵢ₊₁`) confines the singular band to
//! `i ≈ j`: off-diagonal blocks are smooth and admit low-rank compression
//! (Li–Liao–Liu–Jiang, arXiv:1510.04591). The workspace stores `X` with
//! rows *slot-permuted* (Top|Full|Bottom grouping), which scrambles that
//! structure, so everything here reads `X` through the secular-ordered
//! view `x̃[i][j] = x[j·ld + sec_to_slot[i]]`.
//!
//! This module owns the secular-specific policy pieces:
//!
//! * [`rank_tolerance`] — compression tolerance derived from the DMPV
//!   accuracy budget (residual + orthogonality < 50 nε);
//! * [`estimate_offdiag_rank`] — a cheap sampled-ACA probe of the level-1
//!   off-diagonal block, used by the per-merge auto-switch;
//! * [`compress_secular_x`] — HSS-style two-level (recursing further for
//!   large merges) block partitioning into a top and a bottom
//!   [`StructuredMatrix`] that mirror the dense path's two GEMMs: the top
//!   operand holds the Top∪Full rows, the bottom operand the Full∪Bottom
//!   rows, each in ascending secular order with diagonal tiles dense and
//!   off-diagonal tiles ACA-compressed (falling back to dense tiles when
//!   a block refuses to compress).

use crate::deflate::{Deflation, SlotType};
use dcst_matrix::lowrank::{aca, materialize, StructuredMatrix, Tile, TileKind};

/// Compression tolerance for a merge of size `k` inside a global problem
/// of size `n`.
///
/// The accuracy gates bound `‖VᵀV − I‖_max / (nε)` and the scaled residual
/// by 50. A per-tile relative Frobenius tolerance `τ` perturbs the secular
/// eigenvector matrix by `‖E‖_F ≤ τ·‖X̃‖_F = τ·√k` (X̃ has orthonormal
/// columns), and the update multiplies by an orthogonal `Q`, so the
/// vectors move by at most `τ·√k` — keeping `τ·√k ≤ 4nε` leaves the gates
/// an order of magnitude of headroom above the dense baseline.
pub fn rank_tolerance(n: usize, k: usize) -> f64 {
    (4.0 * n as f64 * f64::EPSILON / (k.max(1) as f64).sqrt()).max(1e-15)
}

/// Sampled-ACA probe of the level-1 off-diagonal block (secular rows
/// `0..k/2` × columns `k/2..k`) on a strided `sample × sample` subgrid.
/// Returns the achieved rank of the sample, or `sample` when even the
/// subgrid refuses to compress — the auto-switch treats that as "high
/// rank, stay dense". Cost: O(sample²·r) entry reads.
pub fn estimate_offdiag_rank(
    x: &[f64],
    ld: usize,
    k: usize,
    sec_to_slot: &[usize],
    tol: f64,
) -> usize {
    let half = k / 2;
    let sample = half.min(40);
    if sample == 0 {
        return 0;
    }
    let mut entry = |a: usize, b: usize| {
        let i = a * half / sample; // row in 0..half
        let j = half + b * (k - half) / sample; // col in half..k
        x[j * ld + sec_to_slot[i]]
    };
    match aca(sample, sample, &mut entry, tol, sample) {
        Some(lr) => lr.rank,
        None => sample,
    }
}

/// The compressed secular eigenvector matrix, split the way the dense
/// update splits its two GEMMs.
pub struct StructuredX {
    /// Top∪Full rows (`ctot[0]+ctot[1]` of them) × k columns.
    pub top: StructuredMatrix,
    /// Full∪Bottom rows (`ctot[1]+ctot[2]` of them) × k columns.
    pub bot: StructuredMatrix,
    /// Storage slot of each top row, ascending secular order — the column
    /// of the workspace block to gather for that row of the top operand.
    pub top_slots: Vec<usize>,
    /// Storage slot of each bottom row, ascending secular order.
    pub bot_slots: Vec<usize>,
}

impl StructuredX {
    /// Compressed (low-rank) tiles across both operands.
    pub fn compressed_tiles(&self) -> usize {
        self.top.compressed_tiles() + self.bot.compressed_tiles()
    }

    /// Sum of achieved ranks across both operands.
    pub fn total_rank(&self) -> usize {
        self.top.total_rank() + self.bot.total_rank()
    }

    /// Flops of the structured update for top/bottom output heights
    /// `n1` / `n2` (including the `Q·U` basis products).
    pub fn multiply_flops(&self, n1: usize, n2: usize) -> u64 {
        self.top.multiply_flops(n1) + self.bot.multiply_flops(n2)
    }
}

/// Hierarchically tile and compress one row-subset operand of the secular
/// matrix.
///
/// `rows_sec[a]` is the (ascending) secular index of operand row `a` and
/// `slots[a]` its storage slot; entries are read as
/// `x[(col)·ld + slots[a]]`. Columns are split at their midpoint, rows at
/// the matching secular value, recursively while both sides exceed
/// `leaf`; the two off-diagonal blocks of every split are ACA-compressed
/// (dense fallback when the rank cap `min(dims)/2` trips), diagonal
/// leaves are materialized dense.
pub fn compress_rows(
    x: &[f64],
    ld: usize,
    k: usize,
    slots: &[usize],
    rows_sec: &[usize],
    tol: f64,
    leaf: usize,
) -> StructuredMatrix {
    debug_assert_eq!(slots.len(), rows_sec.len());
    let mut tiles = Vec::new();
    build_tiles(
        x,
        ld,
        slots,
        rows_sec,
        0,
        slots.len(),
        0,
        k,
        tol,
        leaf.max(2),
        &mut tiles,
    );
    StructuredMatrix {
        rows: slots.len(),
        cols: k,
        tiles,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_tiles(
    x: &[f64],
    ld: usize,
    slots: &[usize],
    rows_sec: &[usize],
    a0: usize,
    a1: usize,
    c0: usize,
    c1: usize,
    tol: f64,
    leaf: usize,
    tiles: &mut Vec<Tile>,
) {
    if a0 == a1 || c0 == c1 {
        return;
    }
    let (tr, tc) = (a1 - a0, c1 - c0);
    let mut entry = |i: usize, j: usize| x[(c0 + j) * ld + slots[a0 + i]];
    // Recursion depth is governed by the column span (the row span of a
    // split operand is roughly half of it, since only every other secular
    // row survives into the top/bottom subset); a near-empty row strip is
    // cheapest dense.
    if tc <= 2 * leaf || tr <= 8 {
        tiles.push(Tile {
            r0: a0,
            r1: a1,
            c0,
            c1,
            kind: TileKind::Dense(materialize(tr, tc, &mut entry)),
        });
        return;
    }
    let cmid = (c0 + c1) / 2;
    let amid = a0 + rows_sec[a0..a1].partition_point(|&s| s < cmid);
    // The two off-diagonal blocks of this split: smooth Cauchy-like
    // regions, compressed (or kept dense if the cap trips).
    for (r0, r1, cc0, cc1) in [(a0, amid, cmid, c1), (amid, a1, c0, cmid)] {
        if r0 == r1 || cc0 == cc1 {
            continue;
        }
        let (br, bc) = (r1 - r0, cc1 - cc0);
        let mut bentry = |i: usize, j: usize| x[(cc0 + j) * ld + slots[r0 + i]];
        let cap = (br.min(bc) / 2).max(1);
        let kind = match aca(br, bc, &mut bentry, tol, cap) {
            Some(lr) => TileKind::LowRank(lr),
            None => TileKind::Dense(materialize(br, bc, &mut bentry)),
        };
        tiles.push(Tile {
            r0,
            r1,
            c0: cc0,
            c1: cc1,
            kind,
        });
    }
    // Recurse on the two diagonal blocks.
    build_tiles(x, ld, slots, rows_sec, a0, amid, c0, cmid, tol, leaf, tiles);
    build_tiles(x, ld, slots, rows_sec, amid, a1, cmid, c1, tol, leaf, tiles);
}

/// Compress the full secular eigenvector matrix of one merge into the
/// top/bottom operand pair of the structured update. `x` is the k-column
/// workspace block produced by vector assembly (rows slot-permuted), `ld`
/// its leading dimension.
pub fn compress_secular_x(
    x: &[f64],
    ld: usize,
    defl: &Deflation,
    tol: f64,
    leaf: usize,
) -> StructuredX {
    let k = defl.k;
    let full_lo = defl.ctot[0];
    let full_hi = defl.ctot[0] + defl.ctot[1];
    let mut top_slots = Vec::with_capacity(full_hi);
    let mut top_sec = Vec::with_capacity(full_hi);
    let mut bot_slots = Vec::with_capacity(defl.ctot[1] + defl.ctot[2]);
    let mut bot_sec = Vec::with_capacity(defl.ctot[1] + defl.ctot[2]);
    for i in 0..k {
        let slot = defl.sec_to_slot[i];
        debug_assert!(matches!(
            defl.slot_type[slot],
            SlotType::Top | SlotType::Full | SlotType::Bottom
        ));
        if slot < full_hi {
            top_slots.push(slot);
            top_sec.push(i);
        }
        if slot >= full_lo {
            bot_slots.push(slot);
            bot_sec.push(i);
        }
    }
    let top = compress_rows(x, ld, k, &top_slots, &top_sec, tol, leaf);
    let bot = compress_rows(x, ld, k, &bot_slots, &bot_sec, tol, leaf);
    StructuredX {
        top,
        bot,
        top_slots,
        bot_slots,
    }
}

/// Leaf size for the hierarchical partition: an eighth of the merge,
/// clamped so leaves stay big enough to hit the packed GEMM's efficient
/// regime but small enough that dense diagonal work shrinks. The `force`
/// variant (gate testing on tiny merges) splits much finer so even k≈16
/// exercises compressed tiles.
pub fn leaf_size(k: usize, force: bool) -> usize {
    if force {
        (k / 16).max(2)
    } else {
        (k / 16).clamp(32, 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{local_w_products, reduce_w, solve_secular_root};
    use dcst_matrix::lowrank::reconstruct;

    /// Solve a k×k secular problem with well-interlaced poles and return
    /// (x in secular row order, k).
    fn secular_x(k: usize) -> Vec<f64> {
        let d: Vec<f64> = (0..k)
            .map(|i| i as f64 + 0.3 * ((i * 7 % 5) as f64) / 5.0)
            .collect();
        let mut z: Vec<f64> = (0..k).map(|i| 0.5 + ((i * 13 % 7) as f64) / 7.0).collect();
        let n: f64 = z.iter().map(|x| x * x).sum::<f64>().sqrt();
        z.iter_mut().for_each(|x| *x /= n);
        let rho = 1.0;
        let mut deltas = vec![0.0; k * k];
        for j in 0..k {
            solve_secular_root(j, &d, &z, rho, &mut deltas[j * k..(j + 1) * k]).unwrap();
        }
        let zhat = reduce_w(&z, &[local_w_products(&d, &deltas, k, 0, 0..k)]);
        let ident: Vec<usize> = (0..k).collect();
        crate::assemble_vectors(&zhat, &mut deltas, k, 0, 0..k, &ident);
        deltas
    }

    #[test]
    #[ignore = "manual profiling helper"]
    fn profile_compress_k1000() {
        let k = 1000;
        let x = secular_x(k);
        let ident: Vec<usize> = (0..k).collect();
        let tol = rank_tolerance(k, k);
        let leaf = leaf_size(k, false);
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            let sm = compress_rows(&x, k, k, &ident, &ident, tol, leaf);
            let dt = t0.elapsed();
            let dense_entries: usize = sm
                .tiles
                .iter()
                .filter(|t| matches!(t.kind, TileKind::Dense(_)))
                .map(|t| (t.r1 - t.r0) * (t.c1 - t.c0))
                .sum();
            eprintln!(
                "compress_rows k={k}: {:?} tiles={} lowrank={} rank={} dense_entries={}",
                dt,
                sm.tiles.len(),
                sm.compressed_tiles(),
                sm.total_rank(),
                dense_entries
            );
            let t1 = std::time::Instant::now();
            let est = estimate_offdiag_rank(&x, k, k, &ident, tol);
            eprintln!("probe: {:?} est={est}", t1.elapsed());
        }
    }

    #[test]
    fn tolerance_scales_with_budget() {
        assert!(rank_tolerance(1000, 1000) < 1e-12);
        assert!(rank_tolerance(1000, 1000) > 1e-15);
        assert!(rank_tolerance(100, 100) >= 1e-15);
    }

    #[test]
    fn offdiag_rank_is_low_for_interlaced_poles() {
        let k = 96;
        let x = secular_x(k);
        let ident: Vec<usize> = (0..k).collect();
        let tol = rank_tolerance(k, k);
        let est = estimate_offdiag_rank(&x, k, k, &ident, tol);
        assert!(est > 0 && est < 24, "estimated rank {est}");
    }

    #[test]
    fn compress_rows_reconstructs_x() {
        let k = 96;
        let x = secular_x(k);
        let ident: Vec<usize> = (0..k).collect();
        let tol = rank_tolerance(k, k);
        let sm = compress_rows(&x, k, k, &ident, &ident, tol, 12);
        assert!(sm.compressed_tiles() > 0, "expected compressed tiles");
        // Every entry covered exactly once and accurately.
        let a = reconstruct(&sm);
        let mut worst = 0.0f64;
        for j in 0..k {
            for i in 0..k {
                worst = worst.max((a[j * k + i] - x[j * k + i]).abs());
            }
        }
        assert!(worst < 1e-11, "worst reconstruction error {worst}");
        // The compression must actually save multiply flops.
        assert!(sm.multiply_flops(k) < 2 * (k * k * k) as u64);
    }

    #[test]
    fn scrambled_rows_are_recovered_through_slot_map() {
        // Store x with permuted rows, read through slots: reconstruction
        // must match the secular-ordered matrix.
        let k = 64;
        let x = secular_x(k);
        let mut perm: Vec<usize> = (0..k).collect();
        // Deterministic scramble.
        for i in 0..k {
            perm.swap(i, (i * 37 + 11) % k);
        }
        let mut scrambled = vec![0.0; k * k];
        for j in 0..k {
            for i in 0..k {
                scrambled[j * k + perm[i]] = x[j * k + i];
            }
        }
        let rows_sec: Vec<usize> = (0..k).collect();
        let sm = compress_rows(&scrambled, k, k, &perm, &rows_sec, 1e-13, 8);
        let a = reconstruct(&sm);
        for j in 0..k {
            for i in 0..k {
                assert!(
                    (a[j * k + i] - x[j * k + i]).abs() < 1e-11,
                    "entry ({i},{j})"
                );
            }
        }
    }
}
