//! Vectorized inner loops of the secular stage (AVX2/FMA, runtime
//! dispatch, scalar fallback).
//!
//! Once the eigenvector-update GEMMs are fast, the merge phase is
//! dominated by these O(k²) sweeps: the secular-function/derivative
//! evaluation inside every `solve_secular_root` iteration, the
//! Gu–Eisenstat per-column products of `local_w_products`, and the
//! per-column normalization of `assemble_vectors`. Each kernel here comes
//! in two forms:
//!
//! * a **scalar** body — the original seed loops, bit-for-bit, retained as
//!   the property-test oracle and the `DCST_FORCE_SCALAR=1` path;
//! * an **AVX2+FMA** body behind `#[target_feature]`, selected at runtime
//!   through the workspace-wide dispatcher
//!   [`dcst_matrix::simd::simd_level`] (AVX-512-capable CPUs also take the
//!   AVX2 body: these loops are division-bound, and 256-bit divides at
//!   doubled issue width already saturate the divider).
//!
//! The SIMD secular sweep uses the reciprocal-form rewrite `r = z/δ`,
//! `t = z·r`, `t′ = r²` — one division per term instead of two — and
//! four-lane accumulators, so its sums differ from the scalar ones by
//! normal rounding-order noise. The iteration tolerances absorb that; the
//! `local_w` kernel performs only element-wise operations and is exactly
//! identical to its scalar oracle.

#[cfg(target_arch = "x86_64")]
use dcst_matrix::{simd_level, SimdLevel};

/// True when the dispatched kernels should take the vector path.
#[inline]
pub(crate) fn use_simd() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd_level() >= SimdLevel::Avx2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Sums produced by one fused sweep over the `k` secular terms at the
/// current iterate μ.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SweepSums {
    /// `Σ zᵢ²/δᵢ` (the secular sum; `f = 1 + ρ·val`).
    pub val: f64,
    /// `Σ |zᵢ²/δᵢ|` (for the convergence tolerance; `fabs = 1 + ρ·abs`).
    pub abs: f64,
    /// `Σ_{i<split} zᵢ²/δᵢ²` (ψ′ side of the rational model).
    pub psi_p: f64,
    /// `Σ_{i≥split} zᵢ²/δᵢ²` (φ′ side).
    pub phi_p: f64,
}

// ---------------------------------------------------------------- scalar

/// Scalar oracle: fill `delta[i] = dk[i] − μ` and accumulate all four
/// sums with the seed's exact operation order (`t = z²/δ`, `t′ = t/δ`).
// dcst-hot
pub(crate) fn secular_sweep_scalar(
    dk: &[f64],
    mu: f64,
    z: &[f64],
    split: usize,
    delta: &mut [f64],
) -> SweepSums {
    let mut s = SweepSums::default();
    for i in 0..dk.len() {
        let de = dk[i] - mu;
        delta[i] = de;
        let t = z[i] * z[i] / de;
        s.val += t;
        s.abs += t.abs();
        let tp = t / de;
        if i < split {
            s.psi_p += tp;
        } else {
            s.phi_p += tp;
        }
    }
    s
}

/// Scalar oracle for the bracket-side probe: fill
/// `delta[i] = (d[i] − dj) − mid` and return `Σ zᵢ²/δᵢ`.
// dcst-hot
pub(crate) fn secular_probe_scalar(
    d: &[f64],
    dj: f64,
    mid: f64,
    z: &[f64],
    delta: &mut [f64],
) -> f64 {
    let mut val = 0.0;
    for i in 0..d.len() {
        let de = (d[i] - dj) - mid;
        delta[i] = de;
        val += z[i] * z[i] / de;
    }
    val
}

/// Scalar oracle for one Gu–Eisenstat column:
/// `out[i] *= col[i] / (dlamda[i] − dlamda[j])` for `i ≠ j`,
/// `out[j] *= col[j]`.
// dcst-hot
pub(crate) fn local_w_col_scalar(dlamda: &[f64], col: &[f64], j: usize, out: &mut [f64]) {
    let dj = dlamda[j];
    for i in 0..out.len() {
        if i == j {
            out[i] *= col[i];
        } else {
            out[i] *= col[i] / (dlamda[i] - dj);
        }
    }
}

/// Scalar oracle for one assembly column: `tmp[i] = zhat[i] / col[i]`,
/// returning `Σ tmpᵢ²`.
// dcst-hot
pub(crate) fn assemble_col_scalar(zhat: &[f64], col: &[f64], tmp: &mut [f64]) -> f64 {
    let mut nrm2 = 0.0;
    for i in 0..zhat.len() {
        let x = zhat[i] / col[i];
        tmp[i] = x;
        nrm2 += x * x;
    }
    nrm2
}

/// Scalar oracle for the deflation scans: `max |xᵢ|` (0 for empty input).
// dcst-hot
pub fn max_abs_scalar(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

// ------------------------------------------------------------------ AVX2

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::SweepSums;
    use core::arch::x86_64::*;

    /// Horizontal sum of a 4-lane double vector.
    ///
    /// # Safety
    /// Requires AVX.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// Sweep one index segment `[lo, hi)`: fill `delta`, return
    /// `(Σ z²/δ, Σ |z²/δ|, Σ z²/δ²)` for the segment.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `lo ≤ hi ≤ len` of all three slices.
    #[target_feature(enable = "avx2,fma")]
    // dcst-hot
    unsafe fn sweep_segment(
        dk: &[f64],
        z: &[f64],
        mu: f64,
        delta: &mut [f64],
        lo: usize,
        hi: usize,
    ) -> (f64, f64, f64) {
        let vmu = _mm256_set1_pd(mu);
        let sign = _mm256_set1_pd(-0.0);
        let mut vval = _mm256_setzero_pd();
        let mut vabs = _mm256_setzero_pd();
        let mut vder = _mm256_setzero_pd();
        let mut i = lo;
        while i + 4 <= hi {
            let vdk = _mm256_loadu_pd(dk.as_ptr().add(i));
            let vz = _mm256_loadu_pd(z.as_ptr().add(i));
            let vde = _mm256_sub_pd(vdk, vmu);
            _mm256_storeu_pd(delta.as_mut_ptr().add(i), vde);
            let vr = _mm256_div_pd(vz, vde); // z/δ
            let vt = _mm256_mul_pd(vz, vr); // z²/δ
            vval = _mm256_add_pd(vval, vt);
            vabs = _mm256_add_pd(vabs, _mm256_andnot_pd(sign, vt));
            vder = _mm256_fmadd_pd(vr, vr, vder); // (z/δ)²
            i += 4;
        }
        let (mut val, mut abs, mut der) = (hsum(vval), hsum(vabs), hsum(vder));
        while i < hi {
            let de = dk[i] - mu;
            delta[i] = de;
            let r = z[i] / de;
            let t = z[i] * r;
            val += t;
            abs += t.abs();
            der += r * r;
            i += 1;
        }
        (val, abs, der)
    }

    /// # Safety
    /// Requires AVX2+FMA; `split ≤ k` and all slices have length `k`.
    #[target_feature(enable = "avx2,fma")]
    // dcst-hot
    pub(super) unsafe fn secular_sweep(
        dk: &[f64],
        mu: f64,
        z: &[f64],
        split: usize,
        delta: &mut [f64],
    ) -> SweepSums {
        let k = dk.len();
        let (v1, a1, psi_p) = sweep_segment(dk, z, mu, delta, 0, split);
        let (v2, a2, phi_p) = sweep_segment(dk, z, mu, delta, split, k);
        SweepSums {
            val: v1 + v2,
            abs: a1 + a2,
            psi_p,
            phi_p,
        }
    }

    /// # Safety
    /// Requires AVX2+FMA; all slices have equal length.
    #[target_feature(enable = "avx2,fma")]
    // dcst-hot
    pub(super) unsafe fn secular_probe(
        d: &[f64],
        dj: f64,
        mid: f64,
        z: &[f64],
        delta: &mut [f64],
    ) -> f64 {
        let k = d.len();
        let vdj = _mm256_set1_pd(dj);
        let vmid = _mm256_set1_pd(mid);
        let mut vval = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= k {
            let vd = _mm256_loadu_pd(d.as_ptr().add(i));
            let vz = _mm256_loadu_pd(z.as_ptr().add(i));
            let vde = _mm256_sub_pd(_mm256_sub_pd(vd, vdj), vmid);
            _mm256_storeu_pd(delta.as_mut_ptr().add(i), vde);
            let vr = _mm256_div_pd(vz, vde);
            vval = _mm256_fmadd_pd(vz, vr, vval);
            i += 4;
        }
        let mut val = hsum(vval);
        while i < k {
            let de = (d[i] - dj) - mid;
            delta[i] = de;
            val += z[i] * z[i] / de;
            i += 1;
        }
        val
    }

    /// Multiply `out[i] *= col[i] / (dlamda[i] − dj)` over `[lo, hi)`.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `lo ≤ hi ≤ len` of all slices.
    #[target_feature(enable = "avx2,fma")]
    // dcst-hot
    unsafe fn local_w_segment(
        dlamda: &[f64],
        col: &[f64],
        dj: f64,
        out: &mut [f64],
        lo: usize,
        hi: usize,
    ) {
        let vdj = _mm256_set1_pd(dj);
        let mut i = lo;
        while i + 4 <= hi {
            let vd = _mm256_loadu_pd(dlamda.as_ptr().add(i));
            let vc = _mm256_loadu_pd(col.as_ptr().add(i));
            let vo = _mm256_loadu_pd(out.as_ptr().add(i));
            let vq = _mm256_div_pd(vc, _mm256_sub_pd(vd, vdj));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(vo, vq));
            i += 4;
        }
        while i < hi {
            out[i] *= col[i] / (dlamda[i] - dj);
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2+FMA; all slices have equal length `k` and `j < k`.
    #[target_feature(enable = "avx2,fma")]
    // dcst-hot
    pub(super) unsafe fn local_w_col(dlamda: &[f64], col: &[f64], j: usize, out: &mut [f64]) {
        let k = out.len();
        let dj = dlamda[j];
        local_w_segment(dlamda, col, dj, out, 0, j);
        out[j] *= col[j];
        local_w_segment(dlamda, col, dj, out, j + 1, k);
    }

    /// # Safety
    /// Requires AVX2+FMA; all slices have equal length.
    #[target_feature(enable = "avx2,fma")]
    // dcst-hot
    pub(super) unsafe fn assemble_col(zhat: &[f64], col: &[f64], tmp: &mut [f64]) -> f64 {
        let k = zhat.len();
        let mut vn = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= k {
            let vz = _mm256_loadu_pd(zhat.as_ptr().add(i));
            let vc = _mm256_loadu_pd(col.as_ptr().add(i));
            let vx = _mm256_div_pd(vz, vc);
            _mm256_storeu_pd(tmp.as_mut_ptr().add(i), vx);
            vn = _mm256_fmadd_pd(vx, vx, vn);
            i += 4;
        }
        let mut nrm2 = hsum(vn);
        while i < k {
            let x = zhat[i] / col[i];
            tmp[i] = x;
            nrm2 += x * x;
            i += 1;
        }
        nrm2
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    // dcst-hot
    pub(super) unsafe fn max_abs(x: &[f64]) -> f64 {
        let sign = _mm256_set1_pd(-0.0);
        let mut vm = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= x.len() {
            let v = _mm256_loadu_pd(x.as_ptr().add(i));
            vm = _mm256_max_pd(vm, _mm256_andnot_pd(sign, v));
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), vm);
        let mut m = lanes[0].max(lanes[1]).max(lanes[2].max(lanes[3]));
        while i < x.len() {
            m = m.max(x[i].abs());
            i += 1;
        }
        m
    }
}

// ------------------------------------------------------------- dispatch

/// Fused secular sweep at μ: fill `delta[i] = dk[i] − μ` and return the
/// four sums. `scalar` forces the oracle body (the dispatched entry points
/// pass `!use_simd()`).
#[inline]
// dcst-hot
pub(crate) fn secular_sweep(
    scalar: bool,
    dk: &[f64],
    mu: f64,
    z: &[f64],
    split: usize,
    delta: &mut [f64],
) -> SweepSums {
    #[cfg(target_arch = "x86_64")]
    if !scalar {
        // SAFETY: use_simd() verified AVX2+FMA support.
        return unsafe { avx2::secular_sweep(dk, mu, z, split, delta) };
    }
    let _ = scalar;
    secular_sweep_scalar(dk, mu, z, split, delta)
}

/// Bracket-side probe: fill `delta[i] = (d[i] − dj) − mid`, return `Σ z²/δ`.
#[inline]
// dcst-hot
pub(crate) fn secular_probe(
    scalar: bool,
    d: &[f64],
    dj: f64,
    mid: f64,
    z: &[f64],
    delta: &mut [f64],
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if !scalar {
        // SAFETY: use_simd() verified AVX2+FMA support.
        return unsafe { avx2::secular_probe(d, dj, mid, z, delta) };
    }
    let _ = scalar;
    secular_probe_scalar(d, dj, mid, z, delta)
}

/// One Gu–Eisenstat column product (element-wise; SIMD is bit-identical
/// to the scalar oracle).
#[inline]
// dcst-hot
pub(crate) fn local_w_col(scalar: bool, dlamda: &[f64], col: &[f64], j: usize, out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if !scalar {
        // SAFETY: use_simd() verified AVX2+FMA support.
        unsafe { avx2::local_w_col(dlamda, col, j, out) };
        return;
    }
    let _ = scalar;
    local_w_col_scalar(dlamda, col, j, out)
}

/// One assembly column: `tmp[i] = zhat[i]/col[i]`, returns `Σ tmp²`.
#[inline]
// dcst-hot
pub(crate) fn assemble_col(scalar: bool, zhat: &[f64], col: &[f64], tmp: &mut [f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if !scalar {
        // SAFETY: use_simd() verified AVX2+FMA support.
        return unsafe { avx2::assemble_col(zhat, col, tmp) };
    }
    let _ = scalar;
    assemble_col_scalar(zhat, col, tmp)
}

/// `max |xᵢ|` over a slice (0 for empty input), dispatched. Used by the
/// deflation tolerance scans; max is order-independent, so both paths
/// return identical values.
// dcst-hot
pub fn max_abs(x: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if use_simd() {
        // SAFETY: use_simd() verified AVX2 support.
        return unsafe { avx2::max_abs(x) };
    }
    max_abs_scalar(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(k: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // dk grid around 0 with μ strictly inside (dk[0], dk[1]).
        let dk: Vec<f64> = (0..k).map(|i| i as f64 * 1.25 - 0.5).collect();
        let z: Vec<f64> = (0..k).map(|i| 0.3 + 0.05 * (i % 7) as f64).collect();
        let delta = vec![0.0; k];
        (dk, z, delta)
    }

    #[test]
    fn sweep_simd_matches_scalar() {
        for k in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31, 257] {
            let (dk, z, mut da) = problem(k);
            let mut db = da.clone();
            let mu = 0.117;
            let split = k.div_ceil(2);
            let a = secular_sweep(false, &dk, mu, &z, split, &mut da);
            let b = secular_sweep(true, &dk, mu, &z, split, &mut db);
            assert_eq!(da, db, "delta fill differs at k={k}");
            for (x, y) in [
                (a.val, b.val),
                (a.abs, b.abs),
                (a.psi_p, b.psi_p),
                (a.phi_p, b.phi_p),
            ] {
                assert!(
                    (x - y).abs() <= 1e-12 * y.abs().max(1.0),
                    "k={k}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn probe_simd_matches_scalar() {
        for k in [1usize, 4, 6, 8, 31] {
            let (d, z, mut da) = problem(k);
            let mut db = da.clone();
            let a = secular_probe(false, &d, d[0], 0.3, &z, &mut da);
            let b = secular_probe(true, &d, d[0], 0.3, &z, &mut db);
            assert_eq!(da, db);
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "k={k}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn local_w_col_is_bit_identical() {
        for k in [1usize, 3, 4, 8, 31] {
            let (dl, col, _) = problem(k);
            for j in [0, k / 2, k - 1] {
                let mut a = vec![1.5f64; k];
                let mut b = a.clone();
                local_w_col(false, &dl, &col, j, &mut a);
                local_w_col(true, &dl, &col, j, &mut b);
                assert_eq!(a, b, "k={k} j={j}");
            }
        }
    }

    #[test]
    fn assemble_col_matches_scalar() {
        for k in [1usize, 4, 7, 8, 33] {
            let (zh, col, mut ta) = problem(k);
            let mut tb = ta.clone();
            let a = assemble_col(false, &zh, &col, &mut ta);
            let b = assemble_col(true, &zh, &col, &mut tb);
            assert_eq!(ta, tb);
            assert!((a - b).abs() <= 1e-12 * b.max(1.0));
        }
    }

    #[test]
    fn max_abs_handles_edges() {
        assert_eq!(max_abs(&[]), 0.0);
        assert_eq!(max_abs(&[-3.0]), 3.0);
        let v: Vec<f64> = (0..101).map(|i| ((i as f64) - 50.0) * 0.1).collect();
        assert_eq!(max_abs(&v), max_abs_scalar(&v));
        assert_eq!(max_abs(&v), 5.0);
    }
}
