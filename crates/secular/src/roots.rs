//! The secular equation solver (`dlaed4` analogue).
//!
//! For the rank-one update `D + ρ z zᵀ` (D = diag(d), d strictly
//! ascending, ρ > 0, z fully non-deflated) the eigenvalues are the roots of
//!
//! ```text
//! f(λ) = 1 + ρ Σᵢ zᵢ² / (dᵢ − λ)          (the paper's Eq. (7))
//! ```
//!
//! Root `j` lies in `(d_j, d_{j+1})` (and the last in
//! `(d_{k−1}, d_{k−1} + ρ‖z‖²)`). All arithmetic happens in coordinates
//! shifted to the closest pole, so the returned pole distances
//! `delta[i] = d_i − λ` are computed as `(d_i − d_K) − μ` without
//! cancellation — the property eigenvector orthogonality rests on.

use crate::simd;
use dcst_matrix::metrics;
use dcst_matrix::util::EPS;

/// Failure of the root finder.
#[derive(Debug, Clone, PartialEq)]
pub enum SecularError {
    /// Iteration did not reach the convergence criterion (returns the best
    /// bracket midpoint anyway in practice; this signals a numerical bug).
    NoConvergence { root: usize },
    /// Invalid input (non-positive rho, unsorted d, zero z entry).
    InvalidInput(&'static str),
}

impl std::fmt::Display for SecularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecularError::NoConvergence { root } => {
                write!(f, "secular root {root} did not converge")
            }
            SecularError::InvalidInput(msg) => write!(f, "invalid secular input: {msg}"),
        }
    }
}

impl std::error::Error for SecularError {}

impl SecularError {
    /// Translate a merge-local root index to global coordinates by adding
    /// the merge node's row offset (drivers report errors in global rows).
    pub fn with_offset(self, off: usize) -> Self {
        match self {
            SecularError::NoConvergence { root } => {
                SecularError::NoConvergence { root: root + off }
            }
            other => other,
        }
    }
}

/// Evaluate `f(λ)` directly (for tests and diagnostics; the solver itself
/// works in shifted coordinates).
pub fn secular_function(d: &[f64], z: &[f64], rho: f64, lambda: f64) -> f64 {
    1.0 + rho
        * d.iter()
            .zip(z)
            .map(|(&di, &zi)| zi * zi / (di - lambda))
            .sum::<f64>()
}

/// `f` and bookkeeping evaluated in shifted coordinates: `delta[i]`
/// already holds `(d_i − d_K) − μ`. Returns `(f, Σ|terms|)`.
fn eval_shifted(z: &[f64], rho: f64, delta: &[f64]) -> (f64, f64) {
    let mut val = 0.0;
    let mut abs = 0.0;
    for (&zi, &de) in z.iter().zip(delta) {
        let t = zi * zi / de;
        val += t;
        abs += t.abs();
    }
    (1.0 + rho * val, 1.0 + rho * abs)
}

/// Solve for root `j` (0-based) of the secular equation.
///
/// On success returns `λ_j`; `delta` (length k) is filled with the
/// accurately-computed distances `d_i − λ_j`.
///
/// The per-iteration k-term sweeps run through the runtime-dispatched
/// SIMD kernels in [`crate::simd`]; [`solve_secular_root_scalar`] pins the
/// scalar bodies and serves as the oracle.
pub fn solve_secular_root(
    j: usize,
    d: &[f64],
    z: &[f64],
    rho: f64,
    delta: &mut [f64],
) -> Result<f64, SecularError> {
    solve_root_impl(j, d, z, rho, delta, !simd::use_simd(), MAXIT)
}

/// Test hook: run the root finder with an explicit rational-iteration
/// budget, so the safeguarded-bisection rescue can be exercised directly
/// (a zero budget skips the Newton phase entirely).
#[doc(hidden)]
pub fn solve_secular_root_with_maxit(
    j: usize,
    d: &[f64],
    z: &[f64],
    rho: f64,
    delta: &mut [f64],
    maxit: usize,
) -> Result<f64, SecularError> {
    solve_root_impl(j, d, z, rho, delta, !simd::use_simd(), maxit)
}

/// [`solve_secular_root`] forced onto the scalar kernel bodies — the seed
/// implementation, bit for bit. Retained as the property-test oracle and
/// for SIMD-vs-scalar benchmarking within one process.
pub fn solve_secular_root_scalar(
    j: usize,
    d: &[f64],
    z: &[f64],
    rho: f64,
    delta: &mut [f64],
) -> Result<f64, SecularError> {
    solve_root_impl(j, d, z, rho, delta, true, MAXIT)
}

/// Rational-model iterations before the safeguarded-bisection rescue
/// takes over (LAPACK's dlaed4 uses 30; the bracket makes more harmless).
const MAXIT: usize = 100;

fn solve_root_impl(
    j: usize,
    d: &[f64],
    z: &[f64],
    rho: f64,
    delta: &mut [f64],
    scalar: bool,
    maxit: usize,
) -> Result<f64, SecularError> {
    let k = d.len();
    assert!(j < k && z.len() == k && delta.len() == k);
    if rho.is_nan() || rho <= 0.0 {
        return Err(SecularError::InvalidInput("rho must be positive"));
    }
    if d.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SecularError::InvalidInput(
            "poles must be strictly ascending",
        ));
    }
    if dcst_matrix::failpoints::fire("laed4") {
        return Err(SecularError::NoConvergence { root: j });
    }

    if k == 1 {
        // 1 + ρ z₀²/(d₀ − λ) = 0  ⇒  λ = d₀ + ρ z₀².
        let mu = rho * z[0] * z[0];
        delta[0] = -mu;
        return Ok(d[0] + mu);
    }

    let znorm2: f64 = z.iter().map(|x| x * x).sum();
    let last = j == k - 1;

    // ---- choose the origin pole K and the initial bracket for μ = λ − d_K.
    // For interior roots the root lies in (d_j, d_{j+1}); pick the closer
    // endpoint by the sign of f at the midpoint. For the last root the
    // origin is d_{k−1} and μ ∈ (0, ρ‖z‖²].
    let (origin, mut lo, mut hi);
    if last {
        origin = k - 1;
        lo = 0.0;
        hi = rho * znorm2;
    } else {
        let gap = d[j + 1] - d[j];
        // f at the midpoint, evaluated in shifted coords around d_j.
        let mid = 0.5 * gap;
        let fmid = 1.0 + rho * simd::secular_probe(scalar, d, d[j], mid, z, delta);
        if fmid >= 0.0 {
            // Root in the lower half: origin d_j, μ ∈ (0, gap/2].
            origin = j;
            lo = 0.0;
            hi = mid;
        } else {
            // Root in the upper half: origin d_{j+1}, μ ∈ [−gap/2, 0).
            origin = j + 1;
            lo = -mid;
            hi = 0.0;
        }
    }

    // Pole distances from the origin (exact in the d-grid).
    let dk: Vec<f64> = d.iter().map(|&di| di - d[origin]).collect();
    // The two model poles: the interval endpoints (for the last root, the
    // last two poles).
    let (p1, p2) = if last { (k - 1, k - 2) } else { (j, j + 1) };

    // Initial guess: bracket midpoint.
    let mut mu = 0.5 * (lo + hi);
    if mu == 0.0 {
        // Degenerate when lo == -hi == 0 can't happen (hi > lo), but μ may
        // round to an endpoint; nudge inside.
        mu = lo + 0.25 * (hi - lo);
    }

    let split = if last { k - 1 } else { j + 1 };
    let mut converged = false;
    let mut iters = 0u64;
    for _ in 0..maxit {
        iters += 1;
        // Fused sweep: fill delta[i] = dk[i] − μ and accumulate the secular
        // sum, its absolute-value companion, and both side-wise derivative
        // sums in one dispatched pass over the k terms.
        let sums = simd::secular_sweep(scalar, &dk, mu, z, split, delta);
        let f = 1.0 + rho * sums.val;
        let fabs = 1.0 + rho * sums.abs;
        let tol = 8.0 * EPS * (k as f64) * fabs;
        if f.abs() <= tol {
            converged = true;
            break;
        }
        if f > 0.0 {
            hi = mu;
        } else {
            lo = mu;
        }
        // --- rational model step: f̃(μ̂) = C + A/(δ₁ − μ̂) + B/(δ₂ − μ̂)
        // with the ψ/φ split across the two model poles, matching f and
        // the side-wise derivatives ψ′/φ′.
        let s1 = dk[p1] - mu;
        let s2 = dk[p2] - mu;
        let (psi_p, phi_p) = (sums.psi_p, sums.phi_p);
        // Guard the split so each model pole owns its own side.
        let (a_side, b_side) = if p1 < split { (s1, s2) } else { (s2, s1) };
        let a_coef = rho * psi_p * a_side * a_side;
        let b_coef = rho * phi_p * b_side * b_side;
        let c_coef = f - rho * psi_p * a_side - rho * phi_p * b_side;
        // Solve C + A/(a_side − η) + B/(b_side − η) = 0 for the step η
        // (shift μ̂ = μ + η): quadratic
        //   C(a−η)(b−η) + A(b−η) + B(a−η) = 0.
        let (a, b) = (a_side, b_side);
        let qa = c_coef;
        let qb = -(c_coef * (a + b) + a_coef + b_coef);
        let qc = c_coef * a * b + a_coef * b + b_coef * a;
        let eta = solve_quadratic_closest_to_zero(qa, qb, qc);
        let mut next = match eta {
            Some(eta) if (lo < mu + eta) && (mu + eta < hi) => mu + eta,
            _ => 0.5 * (lo + hi),
        };
        if next == mu {
            next = 0.5 * (lo + hi);
        }
        mu = next;
        // Bracket exhausted to rounding: accept.
        if hi - lo <= 2.0 * EPS * (lo.abs().max(hi.abs())) {
            converged = true;
            break;
        }
    }
    let rescued = !converged;
    if !converged {
        // Safeguarded-bisection rescue: the rational model can stagnate on
        // extreme pole configurations, but the sign-tested bracket [lo, hi]
        // survives every iteration above, so bisecting it converges
        // unconditionally (up to rounding) at ~1 bit per probe. This is the
        // dlaed4 lineage's safeguard: failure should become reportable only
        // when the bracket itself is numerically exhausted.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            let sums = simd::secular_sweep(scalar, &dk, mid, z, split, delta);
            mu = mid;
            let f = 1.0 + rho * sums.val;
            let fabs = 1.0 + rho * sums.abs;
            if f.abs() <= 8.0 * EPS * (k as f64) * fabs {
                converged = true;
                break;
            }
            if f > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= 2.0 * EPS * (lo.abs().max(hi.abs())) {
                converged = true;
                break;
            }
        }
    }
    // One batched registry update per root solve (never per iteration).
    metrics::add("secular.root_solves", 1);
    metrics::add("secular.iters", iters);
    if rescued {
        metrics::add("secular.bisection_rescues", 1);
    }
    // Final delta refresh at the accepted μ.
    for (de, &dki) in delta.iter_mut().zip(&dk) {
        *de = dki - mu;
    }
    if !converged {
        let (f, fabs) = eval_shifted(z, rho, delta);
        // Accept if the bracket is as tight as representable.
        if f.abs() > 1e3 * EPS * (k as f64) * fabs
            && hi - lo > 4.0 * EPS * (lo.abs().max(hi.abs()) + EPS)
        {
            return Err(SecularError::NoConvergence { root: j });
        }
    }
    Ok(d[origin] + mu)
}

/// Smaller-magnitude real root of `qa η² + qb η + qc = 0`, computed with
/// the stable formula; `None` when no real root exists.
fn solve_quadratic_closest_to_zero(qa: f64, qb: f64, qc: f64) -> Option<f64> {
    if qa == 0.0 {
        if qb == 0.0 {
            return None;
        }
        return Some(-qc / qb);
    }
    let disc = qb * qb - 4.0 * qa * qc;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let q = -0.5 * (qb + if qb >= 0.0 { sq } else { -sq });
    let r1 = q / qa;
    let r2 = if q != 0.0 { qc / q } else { f64::INFINITY };
    Some(if r1.abs() < r2.abs() { r1 } else { r2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference root by bisection on f (monotone per interval).
    fn reference_root(j: usize, d: &[f64], z: &[f64], rho: f64) -> f64 {
        let k = d.len();
        let znorm2: f64 = z.iter().map(|x| x * x).sum();
        let (mut lo, mut hi) = if j + 1 < k {
            (d[j], d[j + 1])
        } else {
            (d[k - 1], d[k - 1] + rho * znorm2 + 1.0)
        };
        for _ in 0..200 {
            let m = 0.5 * (lo + hi);
            if m <= lo || m >= hi {
                break;
            }
            if secular_function(d, z, rho, m) > 0.0 {
                hi = m;
            } else {
                lo = m;
            }
        }
        0.5 * (lo + hi)
    }

    fn check_all_roots(d: &[f64], z: &[f64], rho: f64, tol: f64) -> Vec<f64> {
        let k = d.len();
        let mut delta = vec![0.0; k];
        let mut roots = Vec::with_capacity(k);
        for j in 0..k {
            let lam = solve_secular_root(j, d, z, rho, &mut delta).unwrap();
            let rref = reference_root(j, d, z, rho);
            let scale = d[k - 1] - d[0] + rho;
            assert!(
                (lam - rref).abs() <= tol * scale.max(1.0),
                "root {j}: {lam} vs reference {rref}"
            );
            // Interlacing.
            assert!(lam > d[j], "root {j} below its pole");
            if j + 1 < k {
                assert!(lam < d[j + 1], "root {j} above next pole");
            }
            // delta consistency: d_i − λ.
            for i in 0..k {
                let direct = d[i] - lam;
                assert!(
                    (delta[i] - direct).abs() <= 1e-8 * direct.abs().max(1e-300) + 1e-18,
                    "delta[{i}] inconsistent at root {j}: {} vs {direct}",
                    delta[i]
                );
            }
            roots.push(lam);
        }
        roots
    }

    #[test]
    fn single_pole_closed_form() {
        let mut delta = [0.0];
        let lam = solve_secular_root(0, &[2.0], &[0.5], 4.0, &mut delta).unwrap();
        assert!((lam - 3.0).abs() < 1e-15);
        assert!((delta[0] + 1.0).abs() < 1e-15);
    }

    #[test]
    fn two_poles_match_2x2_eigenvalues() {
        // D + ρzzᵀ with D = diag(0, 1), z = (1,1)/√2, ρ = 1:
        // matrix [[0.5, 0.5], [0.5, 1.5]], eigenvalues 1 ± √2/2.
        let d = [0.0, 1.0];
        let s = 0.5f64.sqrt();
        let z = [s, s];
        let roots = check_all_roots(&d, &z, 1.0, 1e-12);
        assert!((roots[0] - (1.0 - s)).abs() < 1e-13, "{}", roots[0]);
        assert!((roots[1] - (1.0 + s)).abs() < 1e-13, "{}", roots[1]);
    }

    #[test]
    fn random_problems_match_bisection() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for trial in 0..20 {
            let k = rng.gen_range(2..30);
            let mut d: Vec<f64> = (0..k).map(|_| rng.gen_range(-5.0..5.0)).collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Enforce separation.
            for i in 1..k {
                if d[i] - d[i - 1] < 1e-3 {
                    d[i] = d[i - 1] + 1e-3;
                }
            }
            let mut z: Vec<f64> = (0..k).map(|_| rng.gen_range(0.1..1.0)).collect();
            let zn: f64 = z.iter().map(|x| x * x).sum::<f64>().sqrt();
            z.iter_mut().for_each(|x| *x /= zn);
            let rho = rng.gen_range(0.1..4.0);
            check_all_roots(&d, &z, rho, 1e-10);
            let _ = trial;
        }
    }

    #[test]
    fn close_poles_stress() {
        // Poles clustered to within 1e-12: the shifted representation must
        // still produce interlacing roots and consistent deltas.
        let d = [1.0, 1.0 + 1e-12, 1.0 + 2e-12, 2.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let mut delta = vec![0.0; 4];
        for j in 0..4 {
            let lam = solve_secular_root(j, &d, &z, 1.0, &mut delta).unwrap();
            assert!(lam > d[j]);
            if j + 1 < 4 {
                assert!(lam < d[j + 1]);
            }
            // The nearby pole distance keeps full relative precision.
            assert!(delta[j] < 0.0, "delta at own pole must be negative");
        }
    }

    #[test]
    fn tiny_z_component_gives_root_near_pole() {
        let d = [0.0, 1.0, 2.0];
        let z = [1e-9, 1.0, 1e-9];
        let mut delta = vec![0.0; 3];
        let lam0 = solve_secular_root(0, &d, &z, 1.0, &mut delta).unwrap();
        assert!(lam0 - d[0] < 1e-14, "root glued to pole: {}", lam0 - d[0]);
        let lam2 = solve_secular_root(2, &d, &z, 1.0, &mut delta).unwrap();
        assert!(lam2 - d[2] > 0.0 && lam2 - d[2] < 1e-6);
    }

    #[test]
    fn sum_rule_trace() {
        // Σ λ_j = Σ d_i + ρ‖z‖² (trace of D + ρzzᵀ).
        let d = [-1.0, 0.0, 0.5, 3.0];
        let z = [0.6, 0.2, 0.4, 0.3];
        let rho = 2.0;
        let zn2: f64 = z.iter().map(|x| x * x).sum();
        let mut delta = vec![0.0; 4];
        let sum: f64 = (0..4)
            .map(|j| solve_secular_root(j, &d, &z, rho, &mut delta).unwrap())
            .sum();
        let want = d.iter().sum::<f64>() + rho * zn2;
        assert!((sum - want).abs() < 1e-10, "{sum} vs {want}");
    }

    #[test]
    fn zero_newton_budget_is_rescued_by_bisection() {
        // With no rational-model iterations at all, the safeguarded
        // bisection must still land every root to reference accuracy.
        let d = [-1.0, 0.0, 0.5, 3.0];
        let z = [0.6, 0.2, 0.4, 0.3];
        let rho = 2.0;
        let mut delta = vec![0.0; 4];
        for j in 0..4 {
            let lam = solve_secular_root_with_maxit(j, &d, &z, rho, &mut delta, 0).unwrap();
            let rref = reference_root(j, &d, &z, rho);
            assert!((lam - rref).abs() < 1e-10, "root {j}: {lam} vs {rref}");
            assert!(lam > d[j]);
            if j + 1 < 4 {
                assert!(lam < d[j + 1]);
            }
        }
    }

    #[test]
    fn rescue_handles_clustered_poles() {
        let d = [1.0, 1.0 + 1e-12, 1.0 + 2e-12, 2.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let mut delta = vec![0.0; 4];
        for j in 0..4 {
            let lam = solve_secular_root_with_maxit(j, &d, &z, 1.0, &mut delta, 0).unwrap();
            assert!(lam > d[j]);
            if j + 1 < 4 {
                assert!(lam < d[j + 1]);
            }
            assert!(delta[j] < 0.0);
        }
    }

    #[test]
    fn offset_translation_maps_root_index() {
        let err = SecularError::NoConvergence { root: 3 };
        assert_eq!(
            err.with_offset(40),
            SecularError::NoConvergence { root: 43 }
        );
        let inv = SecularError::InvalidInput("x");
        assert_eq!(inv.clone().with_offset(40), inv);
    }

    #[test]
    fn rejects_bad_input() {
        let mut delta = vec![0.0; 2];
        assert!(matches!(
            solve_secular_root(0, &[0.0, 1.0], &[0.5, 0.5], -1.0, &mut delta),
            Err(SecularError::InvalidInput(_))
        ));
        assert!(matches!(
            solve_secular_root(0, &[1.0, 0.0], &[0.5, 0.5], 1.0, &mut delta),
            Err(SecularError::InvalidInput(_))
        ));
    }

    #[test]
    fn quadratic_helper() {
        // η² − 3η + 2 = 0 → roots 1, 2 → closest to zero is 1.
        assert_eq!(solve_quadratic_closest_to_zero(1.0, -3.0, 2.0), Some(1.0));
        // Linear.
        assert_eq!(solve_quadratic_closest_to_zero(0.0, 2.0, -4.0), Some(2.0));
        // No real root.
        assert_eq!(solve_quadratic_closest_to_zero(1.0, 0.0, 1.0), None);
    }
}
