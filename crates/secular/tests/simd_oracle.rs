//! Property tests pitting the dispatched (SIMD on capable hosts) secular
//! kernels against the retained scalar oracles.
//!
//! Sizes sweep the dispatch edge cases around the 4-lane AVX2 width
//! (`k ∈ {1, 3, 4, 7, 8, 31, 257}`: sub-vector, exact multiples, tails)
//! and the pole configurations include clustered, denormal-scale and
//! huge-magnitude `dlamda` gaps — the regimes where a vectorized rewrite
//! of the sweeps could diverge from the scalar bodies. On hosts without
//! AVX2 (or under `DCST_FORCE_SCALAR=1`) both paths resolve to the same
//! scalar body and the comparisons are trivially exact — the tests stay
//! meaningful as oracle self-checks.

use dcst_secular::*;
use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Dispatch edge cases around the 4-lane vector width, plus one size big
/// enough that every unrolled segment of the kernels is exercised.
const K_SET: [usize; 7] = [1, 3, 4, 7, 8, 31, 257];

const REGIMES: usize = 5;

/// A secular problem `D + ρzzᵀ` in one of five gap regimes:
///
/// 0. uniform O(1) gaps with jitter, ρ log-uniform in `[1e-6, 1e6]`;
/// 1. clustered pairs — gaps alternate `1.0` and `1e-13`;
/// 2. tiny scale — the whole spectrum (gaps and ρ) scaled by `1e-60`,
///    pushing the ψ′/φ′ sweep terms to ~1e119 while keeping their
///    products finite;
/// 3. huge scale — scaled by `1e150`, driving the derivative terms
///    `z²/δ²` down to denormals;
/// 4. mixed — gap magnitudes log-uniform across 15 decades.
fn gen_problem(k: usize, regime: usize, seed: u64) -> (Vec<f64>, Vec<f64>, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (gaps, rho): (Vec<f64>, f64) = match regime {
        0 => (
            (0..k).map(|_| rng.gen_range(0.2..2.0)).collect(),
            10f64.powf(rng.gen_range(-6.0..6.0)),
        ),
        1 => (
            (0..k)
                .map(|i| if i % 2 == 0 { 1.0 } else { 1e-13 })
                .collect(),
            rng.gen_range(0.5..2.0),
        ),
        2 => (
            (0..k).map(|_| rng.gen_range(0.2..2.0) * 1e-60).collect(),
            rng.gen_range(0.5..2.0) * 1e-60,
        ),
        3 => (
            (0..k).map(|_| rng.gen_range(0.2..2.0) * 1e150).collect(),
            rng.gen_range(0.5..2.0) * 1e150,
        ),
        _ => (
            (0..k)
                .map(|_| 10f64.powf(rng.gen_range(-13.0..2.0)))
                .collect(),
            10f64.powf(rng.gen_range(-3.0..3.0)),
        ),
    };
    let mut d = Vec::with_capacity(k);
    let mut acc = rng.gen_range(-1.0..1.0);
    for g in gaps {
        d.push(acc);
        acc += g;
    }
    // Unit-norm z bounded away from 0 (deflation would have removed
    // small components before the solver ever sees them).
    let mut z: Vec<f64> = (0..k)
        .map(|_| rng.gen_range(0.1..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
        .collect();
    let nrm = z.iter().map(|x| x * x).sum::<f64>().sqrt();
    for x in &mut z {
        *x /= nrm;
    }
    (d, z, rho)
}

/// Bit patterns of a float slice, for NaN-safe exact-equality checks.
fn bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Width of the bracketing interval for root `j` (the secular roots
/// interlace the poles; the last root lives in `(d_{k-1}, d_{k-1} + ρ‖z‖²]`).
fn bracket_width(j: usize, d: &[f64], rho: f64) -> f64 {
    if j + 1 < d.len() {
        d[j + 1] - d[j]
    } else {
        rho // ‖z‖ = 1
    }
}

/// Solve all roots of one problem, dispatched and scalar, and fill the two
/// column-major delta buffers. Returns `(lam_simd, lam_scalar)`;
/// `None` entries mean both paths failed identically.
#[allow(clippy::type_complexity)]
fn solve_both(
    d: &[f64],
    z: &[f64],
    rho: f64,
    da: &mut [f64],
    db: &mut [f64],
) -> Result<(Vec<Option<f64>>, Vec<Option<f64>>), TestCaseError> {
    let k = d.len();
    let mut la = vec![None; k];
    let mut lb = vec![None; k];
    for j in 0..k {
        let ra = solve_secular_root(j, d, z, rho, &mut da[j * k..(j + 1) * k]);
        let rb = solve_secular_root_scalar(j, d, z, rho, &mut db[j * k..(j + 1) * k]);
        prop_assert_eq!(
            ra.is_ok(),
            rb.is_ok(),
            "root {} convergence differs: simd {:?} vs scalar {:?}",
            j,
            ra,
            rb
        );
        la[j] = ra.ok();
        lb[j] = rb.ok();
    }
    Ok((la, lb))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The dispatched LAED4 agrees with the scalar oracle: same
    /// convergence outcome, interlaced roots, and pole distances matching
    /// to far better than the secular stopping tolerance.
    #[test]
    fn laed4_matches_scalar_oracle(
        ki in 0usize..K_SET.len(),
        regime in 0usize..REGIMES,
        seed in 0u64..1 << 32,
    ) {
        let k = K_SET[ki];
        let (d, z, rho) = gen_problem(k, regime, seed);
        let mut da = vec![0.0f64; k * k];
        let mut db = vec![0.0f64; k * k];
        let (la, lb) = solve_both(&d, &z, rho, &mut da, &mut db)?;
        for j in 0..k {
            let (Some(lam_a), Some(lam_b)) = (la[j], lb[j]) else {
                continue;
            };
            let width = bracket_width(j, &d, rho);
            // Interlacing: both roots sit strictly above their pole and
            // within the bracket (tiny slack for the last rounding).
            for (tag, lam) in [("simd", lam_a), ("scalar", lam_b)] {
                prop_assert!(
                    lam >= d[j] && lam <= d[j] + width * (1.0 + 1e-12) + 1e-300,
                    "{} root {} escapes its bracket: lam={:e} d[j]={:e} width={:e}",
                    tag, j, lam, d[j], width
                );
            }
            // Pole distances: delta columns differ by at most the root
            // difference, which both solvers pin far below the bracket.
            let tol = 1e-8 * width + 1e-13 * lam_b.abs() + 1e-300;
            for i in 0..k {
                let (a, b) = (da[j * k + i], db[j * k + i]);
                if !a.is_finite() && !b.is_finite() {
                    continue; // both paths overflowed the same way
                }
                prop_assert!(
                    (a - b).abs() <= tol,
                    "delta[{}] of root {} differs: simd {:e} scalar {:e} tol {:e} (k={}, regime={})",
                    i, j, a, b, tol, k, regime
                );
            }
        }
    }

    /// The SIMD local-W kernel performs the identical element-wise
    /// operations as the scalar body, so the Gu–Eisenstat partial
    /// products are bit-identical — for the full range and for panels
    /// handed in as offset column slices.
    #[test]
    fn local_w_bit_identical(
        ki in 0usize..K_SET.len(),
        regime in 0usize..REGIMES,
        seed in 0u64..1 << 32,
    ) {
        let k = K_SET[ki];
        let (d, z, rho) = gen_problem(k, regime, seed);
        let mut deltas = vec![0.0f64; k * k];
        let mut db = vec![0.0f64; k * k];
        solve_both(&d, &z, rho, &mut deltas, &mut db)?;
        let full_simd = local_w_products(&d, &deltas, k, 0, 0..k);
        let full_scalar = local_w_products_scalar(&d, &deltas, k, 0, 0..k);
        prop_assert_eq!(bits(&full_simd), bits(&full_scalar));
        // Panel split with a column-offset buffer, as the task flow does.
        let h = k / 2;
        if h > 0 {
            let lo = local_w_products(&d, &deltas[..h * k], k, 0, 0..h);
            let lo_ref = local_w_products_scalar(&d, &deltas[..h * k], k, 0, 0..h);
            prop_assert_eq!(bits(&lo), bits(&lo_ref));
            let hi = local_w_products(&d, &deltas[h * k..], k, h, h..k);
            let hi_ref = local_w_products_scalar(&d, &deltas[h * k..], k, h, h..k);
            prop_assert_eq!(bits(&hi), bits(&hi_ref));
        }
    }

    /// Assembled eigenvector columns match the scalar oracle to a few
    /// ulps (the SIMD norm reduction reassociates the sum) and stay unit
    /// norm, under an arbitrary slot permutation.
    #[test]
    fn assemble_matches_scalar_oracle(
        ki in 0usize..K_SET.len(),
        regime in 0usize..REGIMES,
        seed in 0u64..1 << 32,
    ) {
        let k = K_SET[ki];
        let (d, z, rho) = gen_problem(k, regime, seed);
        let mut deltas = vec![0.0f64; k * k];
        let mut db = vec![0.0f64; k * k];
        let (la, _) = solve_both(&d, &z, rho, &mut deltas, &mut db)?;
        if la.iter().any(|l| l.is_none()) {
            return Ok(()); // both solvers gave up on this configuration
        }
        let partials = vec![local_w_products(&d, &deltas, k, 0, 0..k)];
        let zhat = reduce_w(&z, &partials);
        // Random slot permutation (Fisher–Yates).
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xa55a);
        let mut sec_to_slot: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            sec_to_slot.swap(i, rng.gen_range(0..i + 1));
        }
        let mut cols_simd = deltas.clone();
        let mut cols_scalar = deltas.clone();
        assemble_vectors(&zhat, &mut cols_simd, k, 0, 0..k, &sec_to_slot);
        assemble_vectors_scalar(&zhat, &mut cols_scalar, k, 0, 0..k, &sec_to_slot);
        for j in 0..k {
            let mut nrm2 = 0.0;
            let mut finite = true;
            for i in 0..k {
                let (a, b) = (cols_simd[j * k + i], cols_scalar[j * k + i]);
                if !a.is_finite() && !b.is_finite() {
                    finite = false; // both paths overflowed the same way
                    continue;
                }
                prop_assert!(
                    (a - b).abs() <= 1e-12 * b.abs() + 1e-300,
                    "column {} row {} differs: simd {:e} scalar {:e} (k={}, regime={})",
                    j, i, a, b, k, regime
                );
                nrm2 += a * a;
            }
            prop_assert!(
                !finite || (nrm2.sqrt() - 1.0).abs() < 1e-12,
                "column {} not unit norm: {:e}",
                j,
                nrm2.sqrt()
            );
        }
    }

    /// The vectorized max-|x| reduction is exact — including over
    /// denormals, signed zeros and huge magnitudes.
    #[test]
    fn max_abs_matches_scalar_exactly(
        len in 0usize..600,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x: Vec<f64> = (0..len)
            .map(|_| {
                let m = rng.gen_range(-1.0..1.0);
                match rng.gen_range(0usize..5) {
                    0 => m * 1e-310,           // denormal
                    1 => m * f64::MAX * 0.5,   // near-overflow
                    2 => 0.0 * m.signum(),     // signed zero
                    3 => m * 1e-160,
                    _ => m,
                }
            })
            .collect();
        prop_assert_eq!(max_abs(&x), max_abs_scalar(&x));
    }
}

/// Deterministic spot-check: every k in the dispatch edge set gets at
/// least one exercised case per regime regardless of how the proptest rng
/// samples, so a lane/tail bug cannot hide behind sampling luck.
#[test]
fn every_k_and_regime_covered() {
    for (ki, &k) in K_SET.iter().enumerate() {
        for regime in 0..REGIMES {
            let (d, z, rho) = gen_problem(k, regime, (ki * REGIMES + regime) as u64);
            let mut da = vec![0.0f64; k * k];
            let mut db = vec![0.0f64; k * k];
            for j in 0..k {
                let ra = solve_secular_root(j, &d, &z, rho, &mut da[j * k..(j + 1) * k]);
                let rb = solve_secular_root_scalar(j, &d, &z, rho, &mut db[j * k..(j + 1) * k]);
                assert_eq!(ra.is_ok(), rb.is_ok(), "k={k} regime={regime} root {j}");
            }
            assert_eq!(
                bits(&local_w_products(&d, &da, k, 0, 0..k)),
                bits(&local_w_products_scalar(&d, &da, k, 0, 0..k)),
                "k={k} regime={regime}"
            );
        }
    }
}
