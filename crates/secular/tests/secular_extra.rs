//! Secular-kernel edge coverage: extreme ρ, near-coincident poles,
//! deflation group bookkeeping, Givens algebra.

use dcst_secular::*;

#[test]
fn huge_rho_pushes_last_root_far() {
    let d = [0.0, 1.0];
    let z = [std::f64::consts::FRAC_1_SQRT_2; 2];
    let rho = 1e8;
    let mut delta = [0.0; 2];
    let last = solve_secular_root(1, &d, &z, rho, &mut delta).unwrap();
    // λ_max ≈ trace correction: d̄ + ρ‖z‖² dominates.
    assert!(last > 0.9 * rho * 1.0 && last < 1.1 * (rho + 1.0), "{last}");
    let first = solve_secular_root(0, &d, &z, rho, &mut delta).unwrap();
    assert!(first > 0.0 && first < 1.0);
    // Trace identity.
    assert!((first + last - (1.0 + rho)).abs() < 1e-8 * rho);
}

#[test]
fn tiny_rho_keeps_roots_near_poles() {
    let d = [0.0, 1.0, 2.0];
    let z = [0.6, 0.5, 0.6244997998398398];
    let rho = 1e-13;
    let mut delta = [0.0; 3];
    for j in 0..3 {
        let lam = solve_secular_root(j, &d, &z, rho, &mut delta).unwrap();
        assert!(lam - d[j] < 1e-12, "root {j} stays glued: {}", lam - d[j]);
        assert!(lam > d[j], "but strictly above its pole");
    }
}

#[test]
fn secular_function_sign_structure() {
    let d = [0.0, 1.0, 2.0];
    let z = [0.5, 0.5, 0.5];
    let rho = 2.0;
    // f is negative just above each pole, positive just below the next.
    for j in 0..2 {
        assert!(secular_function(&d, &z, rho, d[j] + 1e-9) < 0.0);
        assert!(secular_function(&d, &z, rho, d[j + 1] - 1e-9) > 0.0);
    }
    assert!(secular_function(&d, &z, rho, d[2] + 1e-9) < 0.0);
    assert!(secular_function(&d, &z, rho, d[2] + 100.0) > 0.0);
}

#[test]
fn deflation_all_z_aligned_one_survivor_per_value() {
    // Many exact ties: after pairwise Givens deflation at most one
    // survivor per distinct value remains.
    let n = 12;
    let d: Vec<f64> = (0..n).map(|i| (i / 4) as f64).collect(); // values 0,1,2 ×4
    let z = vec![(1.0 / n as f64).sqrt(); n];
    let idxq: Vec<usize> = {
        let mut v: Vec<usize> = (0..n / 2).collect();
        v.extend(n / 2..n);
        v
    };
    let out = deflate(&DeflationInput {
        d: &d,
        z: &z,
        beta: 1.0,
        n1: n / 2,
        idxq: &idxq,
    });
    assert_eq!(out.k, 3, "one survivor per distinct diagonal value");
    assert_eq!(out.givens.len(), n - 3);
    // The survivors collect the whole weight: Σw² = ‖z‖² = 1.
    let wsum: f64 = out.w.iter().map(|x| x * x).sum();
    assert!((wsum - 1.0).abs() < 1e-12, "{wsum}");
}

#[test]
fn givens_rotations_preserve_z_norm() {
    let n = 8;
    let d: Vec<f64> = (0..n).map(|i| (i / 2) as f64).collect();
    let mut z = vec![0.0f64; n];
    for (i, x) in z.iter_mut().enumerate() {
        *x = 0.1 + 0.05 * i as f64;
    }
    let nrm: f64 = z.iter().map(|x| x * x).sum::<f64>().sqrt();
    z.iter_mut().for_each(|x| *x /= nrm);
    let idxq: Vec<usize> = {
        let mut v: Vec<usize> = (0..n / 2).collect();
        v.extend(n / 2..n);
        v
    };
    let out = deflate(&DeflationInput {
        d: &d,
        z: &z,
        beta: 0.5,
        n1: n / 2,
        idxq: &idxq,
    });
    let surviving: f64 = out.w.iter().map(|x| x * x).sum();
    assert!(
        (surviving - 1.0).abs() < 1e-12,
        "deflated components carry no weight"
    );
}

#[test]
fn slot_groups_are_contiguous_in_storage() {
    let d = [0.0, 2.0, 1.0, 3.0, 0.5, 2.5];
    let z = [0.4, 0.4, 0.4, 0.4, 0.4, 0.42];
    let idxq = [0usize, 1, 2, 3, 4, 5];
    let out = deflate(&DeflationInput {
        d: &d,
        z: &z,
        beta: 0.5,
        n1: 2,
        idxq: &idxq,
    });
    // slot_type must be sorted as Top* Full* Bottom* Deflated*.
    let order = |t: SlotType| t as usize;
    let kinds: Vec<usize> = out.slot_type.iter().map(|&t| order(t)).collect();
    assert!(kinds.windows(2).all(|w| w[0] <= w[1]), "{kinds:?}");
}

#[test]
fn reduce_w_with_no_partials_is_signless_zero() {
    // k = 0 merge: reduce over an empty set behaves.
    let zhat = reduce_w(&[], &[]);
    assert!(zhat.is_empty());
}

#[test]
fn assemble_unit_vector_for_k1() {
    let zhat = [0.7];
    let mut deltas = vec![-0.3];
    assemble_vectors(&zhat, &mut deltas, 1, 0, 0..1, &[0]);
    assert!((deltas[0].abs() - 1.0).abs() < 1e-15, "normalized 1-vector");
}

#[test]
fn delta_columns_reusable_for_rayleigh_check() {
    // The delta output of the root solver supports computing f(λ) ≈ 0
    // directly: 1 + ρ Σ z²/δ must be ~0 at the root.
    let d = [0.1, 0.4, 0.9, 1.6];
    let z = [0.5, 0.5, 0.5, 0.5];
    let rho = 1.3;
    let mut delta = [0.0; 4];
    for j in 0..4 {
        solve_secular_root(j, &d, &z, rho, &mut delta).unwrap();
        let f: f64 = 1.0
            + rho
                * z.iter()
                    .zip(&delta)
                    .map(|(zi, de)| zi * zi / de)
                    .sum::<f64>();
        assert!(f.abs() < 1e-10, "root {j}: f = {f}");
    }
}
