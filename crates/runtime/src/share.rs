//! Shared mutable buffers for task closures.
//!
//! An STF runtime cannot express its aliasing discipline in the borrow
//! checker: which task may mutate which region is decided *dynamically* by
//! the dependency analysis. [`SharedData`] is the small, explicitly-unsafe
//! escape hatch the solver crates use: a reference-counted buffer whose
//! accessors hand out slices of **caller-chosen ranges**, derived from a
//! raw pointer so that references to *disjoint* ranges created by
//! different tasks never alias (the same reasoning as `split_at_mut`).
//!
//! # Safety contract
//!
//! * [`SharedData::range_mut`] requires that, for the lifetime of the
//!   returned slice, no other live reference (shared or mutable) overlaps
//!   the requested range.
//! * [`SharedData::range`] requires that no live *mutable* reference
//!   overlaps the range.
//!
//! In this workspace both are guaranteed by construction: every task
//! declares its accesses (`Read`/`Write`/…/GatherV-with-disjoint-ranges)
//! and the runtime never schedules two tasks with conflicting declared
//! accesses concurrently. Declaring accesses that do not match what the
//! closure touches is a bug in the *submitting* code, exactly as in
//! QUARK, StarPU, or OpenMP `depend` clauses.

use std::ops::Range;
use std::sync::Arc;

struct Inner<T> {
    ptr: *mut T,
    len: usize,
    /// Shadow state for the `access-check` feature; set once by
    /// [`SharedData::bind_keys`], shared by all clones of the handle.
    #[cfg(feature = "access-check")]
    tracker: std::sync::OnceLock<std::sync::Arc<crate::check::BufferTracker>>,
}

// SAFETY: access is only possible through `unsafe fn`s whose contract
// (module docs) forbids concurrent conflicting use.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from Box::into_raw of a boxed slice and are
        // only reconstituted once, here.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.ptr, self.len,
            )));
        }
    }
}

/// A shared, runtime-disciplined buffer. Cloning is cheap (Arc bump).
pub struct SharedData<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for SharedData<T> {
    fn clone(&self) -> Self {
        SharedData {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send> SharedData<T> {
    /// Wrap a buffer for shared use by tasks.
    pub fn new(data: Vec<T>) -> Self {
        let boxed = data.into_boxed_slice();
        let len = boxed.len();
        let ptr = Box::into_raw(boxed) as *mut T;
        SharedData {
            inner: Arc::new(Inner {
                ptr,
                len,
                #[cfg(feature = "access-check")]
                tracker: std::sync::OnceLock::new(),
            }),
        }
    }

    /// Bind this buffer to the [`DataKey`](crate::DataKey)s tasks use when
    /// declaring accesses to it. With the `access-check` feature enabled,
    /// every subsequent task borrow of this buffer is validated against the
    /// executing task's declared accesses and all concurrently live
    /// borrows; without the feature this is a no-op. Binding twice keeps
    /// the first key set.
    #[cfg(feature = "access-check")]
    pub fn bind_keys(&self, keys: &[crate::DataKey]) {
        let _ = self.inner.tracker.set(crate::check::new_tracker(keys));
    }

    /// No-op without the `access-check` feature (see the gated variant).
    #[cfg(not(feature = "access-check"))]
    #[inline(always)]
    pub fn bind_keys(&self, _keys: &[crate::DataKey]) {}

    /// Number of elements (fixed at construction).
    pub fn len(&self) -> usize {
        self.inner.len
    }

    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Shared view of `range`.
    ///
    /// # Safety
    /// No live mutable reference may overlap `range` (module contract).
    pub unsafe fn range(&self, range: Range<usize>) -> &[T] {
        assert!(
            range.start <= range.end && range.end <= self.inner.len,
            "SharedData::range {}..{} out of bounds (len {})",
            range.start,
            range.end,
            self.inner.len
        );
        #[cfg(feature = "access-check")]
        if let Some(tracker) = self.inner.tracker.get() {
            crate::check::on_borrow(tracker, range.start, range.end, false);
        }
        std::slice::from_raw_parts(self.inner.ptr.add(range.start), range.len())
    }

    /// Exclusive view of `range`.
    ///
    /// # Safety
    /// No other live reference (shared or mutable) may overlap `range`
    /// (module contract). Disjoint ranges may be borrowed mutably by
    /// different tasks simultaneously — that is the GatherV pattern.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, range: Range<usize>) -> &mut [T] {
        assert!(
            range.start <= range.end && range.end <= self.inner.len,
            "SharedData::range_mut {}..{} out of bounds (len {})",
            range.start,
            range.end,
            self.inner.len
        );
        #[cfg(feature = "access-check")]
        if let Some(tracker) = self.inner.tracker.get() {
            crate::check::on_borrow(tracker, range.start, range.end, true);
        }
        std::slice::from_raw_parts_mut(self.inner.ptr.add(range.start), range.len())
    }

    /// Shared view of the whole buffer.
    ///
    /// # Safety
    /// As [`SharedData::range`] over `0..len`.
    pub unsafe fn slice(&self) -> &[T] {
        self.range(0..self.inner.len)
    }

    /// Exclusive view of the whole buffer.
    ///
    /// # Safety
    /// As [`SharedData::range_mut`] over `0..len`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        self.range_mut(0..self.inner.len)
    }

    /// Recover the buffer once no other handle exists. Call after
    /// [`Runtime::wait`](crate::Runtime::wait) has retired every task that
    /// captured a clone.
    pub fn try_unwrap(self) -> Result<Vec<T>, SharedData<T>> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                // SAFETY: unique ownership; reconstitute the box exactly
                // once and suppress Inner's Drop.
                let inner = std::mem::ManuallyDrop::new(inner);
                let boxed = unsafe {
                    Box::from_raw(std::ptr::slice_from_raw_parts_mut(inner.ptr, inner.len))
                };
                Ok(boxed.into_vec())
            }
            Err(arc) => Err(SharedData { inner: arc }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_shared() {
        let s = SharedData::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        let s2 = s.clone();
        // SAFETY: single-threaded test, no overlapping borrows held.
        unsafe {
            s2.range_mut(1..2)[0] = 20.0;
        }
        drop(s2);
        let v = s.try_unwrap().unwrap_or_else(|_| panic!("unique"));
        assert_eq!(v, vec![1.0, 20.0, 3.0]);
    }

    #[test]
    fn try_unwrap_fails_while_shared() {
        let s = SharedData::new(vec![1u8]);
        let s2 = s.clone();
        let s = s.try_unwrap().unwrap_err();
        drop(s2);
        assert!(s.try_unwrap().is_ok());
    }

    #[test]
    fn empty_buffer() {
        let s = SharedData::new(Vec::<f64>::new());
        assert!(s.is_empty());
        assert!(s.try_unwrap().unwrap_or_else(|_| panic!()).is_empty());
    }

    #[test]
    fn disjoint_writes_from_tasks() {
        use crate::{DataKey, Runtime};
        let rt = Runtime::new(2);
        let buf = SharedData::new(vec![0usize; 100]);
        let k = DataKey::new(0, 0);
        for chunk in 0..10 {
            let buf = buf.clone();
            rt.task("fill").gatherv(k).spawn(move || {
                // SAFETY: each task borrows a distinct 10-element range and
                // the GatherV group is joined before anyone reads.
                let s = unsafe { buf.range_mut(chunk * 10..(chunk + 1) * 10) };
                for (off, x) in s.iter_mut().enumerate() {
                    *x = chunk * 10 + off;
                }
            });
        }
        rt.wait().unwrap();
        let v = buf.try_unwrap().unwrap_or_else(|_| panic!("unique"));
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }
}
