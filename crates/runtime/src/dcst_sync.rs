//! Sync-primitive alias layer for the pool.
//!
//! The pool imports every synchronization primitive it uses — mutexes,
//! condvars, atomics, work-stealing deques, thread spawning — from this
//! module instead of naming `parking_lot` / `std::sync` /
//! `crossbeam_deque` directly (`cargo run -p xtask -- lint` enforces
//! this). In a normal build the aliases are zero-cost re-exports; under
//! `RUSTFLAGS="--cfg dcst_model_check"` they resolve to `loom-lite`'s
//! instrumented equivalents, so the model checker can serialize the pool's
//! every synchronization step and explore interleavings
//! (see `crates/runtime/tests/model.rs`).

#[cfg(not(dcst_model_check))]
mod imp {
    pub use parking_lot::{Condvar, Mutex};

    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    }

    pub mod deque {
        pub use crossbeam_deque::{Injector, Steal, Stealer, Worker};
    }

    pub type WorkerHandle = std::thread::JoinHandle<()>;

    pub fn spawn_worker(name: String, f: impl FnOnce() + Send + 'static) -> WorkerHandle {
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("failed to spawn worker thread")
    }
}

#[cfg(dcst_model_check)]
mod imp {
    pub use loom_lite::sync::{Condvar, Mutex};

    pub mod atomic {
        pub use loom_lite::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    }

    pub mod deque {
        // Since PR 7 the lock-free Chase–Lev deque and segment-list
        // injector route their own atomics through loom-lite when built
        // under this cfg (vendor/crossbeam-deque/src/sys.rs), so the model
        // explores the REAL protocol — CAS races, growth, block handoff —
        // rather than loom-lite's mutex-based deque mirror (which remains
        // only in loom-lite's self-tests).
        pub use crossbeam_deque::{Injector, Steal, Stealer, Worker};
    }

    pub type WorkerHandle = loom_lite::thread::JoinHandle;

    pub fn spawn_worker(_name: String, f: impl FnOnce() + Send + 'static) -> WorkerHandle {
        loom_lite::thread::spawn(f)
    }
}

pub(crate) use imp::*;
