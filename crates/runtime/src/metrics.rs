//! Per-worker scheduler counters behind the `metrics` feature.
//!
//! Every worker owns one cache-line-aligned block of `AtomicU64` cells
//! ([`PoolCounters`]), so the hot-path increments (task retired, steal
//! sweep, priority-lane hit, park) are uncontended `Relaxed` RMWs on a
//! line no other worker writes. The only pool-wide cells are the ready
//! -queue depth gauge and its high-water mark, bumped once per task push
//! and pop.
//!
//! [`RuntimeMetrics`] / [`WorkerMetrics`] are plain data and always
//! present, so downstream code can consume snapshots without `cfg`; when
//! the `metrics` feature is off, [`PoolCounters`] is a zero-sized no-op
//! and snapshots are all zeros.
//!
//! Counter semantics (fixed, tests rely on them):
//! - `executed` counts tasks *retired* through the pool's execute path,
//!   including bodies skipped by cancellation — it always equals the
//!   number of trace records an enabled trace would collect.
//! - `steals_attempted` counts sweeps over the sibling deques (entered
//!   only after both injectors came up empty); `steals_succeeded` counts
//!   sweeps that yielded a task, so `succeeded ≤ attempted` and
//!   `succeeded ≤ executed` per worker.
//! - `steal_retries` counts lock-free CAS contention observed while
//!   acquiring work: `Steal::Retry` outcomes from the priority lane, the
//!   injector batch-pop, and the sibling sweep. A retry means some *other*
//!   worker won the contended index — it measures contention, not loss.
//! - `priority_hits` counts tasks taken from the priority lane.
//! - `parks` counts actual condvar waits (not idle-loop passes).
//! - `deque_grows` counts buffer doublings of the worker's Chase–Lev
//!   deque. Tracked inside the deque itself (one relaxed RMW per grow,
//!   amortized over `cap` pushes) and folded into snapshots by
//!   `Runtime::runtime_metrics`.
//! - `max_queue_depth` is the high-water mark of tasks pushed ready but
//!   not yet started, across the whole pool.

/// Scheduler counters for one worker, as captured by a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Tasks retired through the execute path (includes cancelled skips).
    pub executed: u64,
    /// Sweeps over the sibling deques looking for work to steal.
    pub steals_attempted: u64,
    /// Steal sweeps that yielded a task.
    pub steals_succeeded: u64,
    /// `Steal::Retry` outcomes (lost CAS races) across all work sources.
    pub steal_retries: u64,
    /// Tasks taken from the priority lane.
    pub priority_hits: u64,
    /// Times the worker parked on the idle condvar.
    pub parks: u64,
    /// Buffer doublings of this worker's Chase–Lev deque.
    pub deque_grows: u64,
}

/// Pool-wide scheduler-counter snapshot ([`Runtime::runtime_metrics`]).
///
/// [`Runtime::runtime_metrics`]: crate::Runtime::runtime_metrics
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeMetrics {
    /// One entry per worker, indexed by worker id.
    pub workers: Vec<WorkerMetrics>,
    /// High-water mark of ready-but-not-started tasks across the pool.
    pub max_queue_depth: u64,
}

impl RuntimeMetrics {
    /// Total tasks retired across all workers.
    pub fn tasks_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Total steal sweeps attempted across all workers.
    pub fn steals_attempted(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_attempted).sum()
    }

    /// Total successful steal sweeps across all workers.
    pub fn steals_succeeded(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_succeeded).sum()
    }

    /// Total lost CAS races (`Steal::Retry`) across all workers.
    pub fn steal_retries(&self) -> u64 {
        self.workers.iter().map(|w| w.steal_retries).sum()
    }

    /// Total deque buffer doublings across all workers.
    pub fn deque_grows(&self) -> u64 {
        self.workers.iter().map(|w| w.deque_grows).sum()
    }

    /// Total priority-lane hits across all workers.
    pub fn priority_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.priority_hits).sum()
    }

    /// Total condvar parks across all workers.
    pub fn parks(&self) -> u64 {
        self.workers.iter().map(|w| w.parks).sum()
    }

    /// Human-readable multi-line report (one row per worker plus totals).
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}",
            "worker",
            "executed",
            "steal-try",
            "steal-ok",
            "steal-rty",
            "prio-hit",
            "parks",
            "grows"
        )
        .unwrap();
        for (i, w) in self.workers.iter().enumerate() {
            writeln!(
                out,
                "{i:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}",
                w.executed,
                w.steals_attempted,
                w.steals_succeeded,
                w.steal_retries,
                w.priority_hits,
                w.parks,
                w.deque_grows
            )
            .unwrap();
        }
        writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}",
            "total",
            self.tasks_executed(),
            self.steals_attempted(),
            self.steals_succeeded(),
            self.steal_retries(),
            self.priority_hits(),
            self.parks(),
            self.deque_grows()
        )
        .unwrap();
        write!(out, "max ready-queue depth: {}", self.max_queue_depth).unwrap();
        out
    }
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{RuntimeMetrics, WorkerMetrics};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// One worker's counters, padded to a cache line so neighbouring
    /// workers' increments never false-share.
    #[repr(align(64))]
    #[derive(Default)]
    struct WorkerCells {
        executed: AtomicU64,
        steals_attempted: AtomicU64,
        steals_succeeded: AtomicU64,
        steal_retries: AtomicU64,
        priority_hits: AtomicU64,
        parks: AtomicU64,
    }

    /// Live counter cells owned by the pool (`Shared.metrics`).
    pub struct PoolCounters {
        workers: Box<[WorkerCells]>,
        depth: AtomicU64,
        max_depth: AtomicU64,
    }

    impl PoolCounters {
        pub fn new(num_workers: usize) -> Self {
            PoolCounters {
                workers: (0..num_workers).map(|_| WorkerCells::default()).collect(),
                depth: AtomicU64::new(0),
                max_depth: AtomicU64::new(0),
            }
        }

        #[inline]
        pub fn executed(&self, worker: usize) {
            self.workers[worker]
                .executed
                .fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn steal_attempt(&self, worker: usize) {
            self.workers[worker]
                .steals_attempted
                .fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn steal_success(&self, worker: usize) {
            self.workers[worker]
                .steals_succeeded
                .fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn steal_retry(&self, worker: usize) {
            self.workers[worker]
                .steal_retries
                .fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn priority_hit(&self, worker: usize) {
            self.workers[worker]
                .priority_hits
                .fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn park(&self, worker: usize) {
            self.workers[worker].parks.fetch_add(1, Ordering::Relaxed);
        }

        /// A task became ready: raise the depth gauge and fold it into the
        /// high-water mark.
        #[inline]
        pub fn depth_inc(&self) {
            let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
            self.max_depth.fetch_max(d, Ordering::Relaxed);
        }

        /// A ready task started executing: lower the depth gauge.
        #[inline]
        pub fn depth_dec(&self) {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }

        /// Current ready-queue depth gauge (tasks ready but not started) —
        /// the load signal a server's admission control keys off.
        pub fn depth(&self) -> u64 {
            self.depth.load(Ordering::Relaxed)
        }

        /// Copy every counter into a plain-data snapshot.
        pub fn snapshot(&self) -> RuntimeMetrics {
            RuntimeMetrics {
                workers: self
                    .workers
                    .iter()
                    .map(|w| WorkerMetrics {
                        executed: w.executed.load(Ordering::Relaxed),
                        steals_attempted: w.steals_attempted.load(Ordering::Relaxed),
                        steals_succeeded: w.steals_succeeded.load(Ordering::Relaxed),
                        steal_retries: w.steal_retries.load(Ordering::Relaxed),
                        priority_hits: w.priority_hits.load(Ordering::Relaxed),
                        parks: w.parks.load(Ordering::Relaxed),
                        // Filled from the deques by Runtime::runtime_metrics.
                        deque_grows: 0,
                    })
                    .collect(),
                max_queue_depth: self.max_depth.load(Ordering::Relaxed),
            }
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    //! Zero-sized no-op stand-in: every increment inlines to nothing and a
    //! snapshot is all zeros.
    use super::{RuntimeMetrics, WorkerMetrics};

    pub struct PoolCounters {
        num_workers: usize,
    }

    impl PoolCounters {
        #[inline]
        pub fn new(num_workers: usize) -> Self {
            PoolCounters { num_workers }
        }

        #[inline(always)]
        pub fn executed(&self, _worker: usize) {}

        #[inline(always)]
        pub fn steal_attempt(&self, _worker: usize) {}

        #[inline(always)]
        pub fn steal_success(&self, _worker: usize) {}

        #[inline(always)]
        pub fn steal_retry(&self, _worker: usize) {}

        #[inline(always)]
        pub fn priority_hit(&self, _worker: usize) {}

        #[inline(always)]
        pub fn park(&self, _worker: usize) {}

        #[inline(always)]
        pub fn depth_inc(&self) {}

        #[inline(always)]
        pub fn depth_dec(&self) {}

        pub fn depth(&self) -> u64 {
            0
        }

        pub fn snapshot(&self) -> RuntimeMetrics {
            RuntimeMetrics {
                workers: vec![WorkerMetrics::default(); self.num_workers],
                max_queue_depth: 0,
            }
        }
    }
}

pub(crate) use imp::PoolCounters;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_workers() {
        let m = RuntimeMetrics {
            workers: vec![
                WorkerMetrics {
                    executed: 3,
                    steals_attempted: 5,
                    steals_succeeded: 2,
                    steal_retries: 6,
                    priority_hits: 1,
                    parks: 4,
                    deque_grows: 1,
                },
                WorkerMetrics {
                    executed: 7,
                    steals_attempted: 1,
                    steals_succeeded: 1,
                    steal_retries: 2,
                    priority_hits: 0,
                    parks: 2,
                    deque_grows: 0,
                },
            ],
            max_queue_depth: 9,
        };
        assert_eq!(m.tasks_executed(), 10);
        assert_eq!(m.steals_attempted(), 6);
        assert_eq!(m.steals_succeeded(), 3);
        assert_eq!(m.steal_retries(), 8);
        assert_eq!(m.priority_hits(), 1);
        assert_eq!(m.parks(), 6);
        assert_eq!(m.deque_grows(), 1);
        let rep = m.report();
        assert!(rep.contains("max ready-queue depth: 9"));
        assert!(rep.contains("steal-rty") && rep.contains("grows"));
        assert_eq!(rep.lines().count(), 1 + 2 + 1 + 1);
    }

    #[test]
    fn pool_counters_snapshot_shape() {
        let c = PoolCounters::new(3);
        c.executed(0);
        c.executed(0);
        c.steal_attempt(1);
        c.steal_success(1);
        c.steal_retry(1);
        c.steal_retry(1);
        c.steal_retry(1);
        c.priority_hit(2);
        c.park(2);
        c.depth_inc();
        c.depth_inc();
        c.depth_dec();
        let snap = c.snapshot();
        assert_eq!(snap.workers.len(), 3);
        if cfg!(feature = "metrics") {
            assert_eq!(snap.workers[0].executed, 2);
            assert_eq!(snap.workers[1].steals_attempted, 1);
            assert_eq!(snap.workers[1].steals_succeeded, 1);
            assert_eq!(snap.workers[1].steal_retries, 3);
            assert_eq!(snap.workers[2].priority_hits, 1);
            assert_eq!(snap.workers[2].parks, 1);
            assert_eq!(snap.max_queue_depth, 2);
        } else {
            assert_eq!(
                snap,
                RuntimeMetrics {
                    workers: vec![WorkerMetrics::default(); 3],
                    max_queue_depth: 0,
                }
            );
        }
    }
}
