//! The `access-check` shadow tracker: dynamic validation of the safety
//! contract `SharedData` otherwise takes on faith.
//!
//! The STF discipline says a task may only touch buffer regions covered by
//! its declared accesses, and GatherV writers to one key must touch
//! disjoint ranges. Nothing enforces that — a misdeclared access compiles,
//! runs, and corrupts results silently on a rare schedule. With this
//! feature enabled, the pool installs a thread-local task context (id,
//! name, declared accesses) around every task body, every
//! [`SharedData`](crate::SharedData) borrow of a key-bound buffer is
//! checked against:
//!
//! 1. **The declared footprint** — a mutable borrow requires a declared
//!    `Write`/`ReadWrite`/`GatherV` on one of the buffer's bound keys; a
//!    shared borrow requires any declared access. Violations are
//!    deterministic: they panic on every run, independent of scheduling.
//! 2. **The live-interval table** — each buffer keeps the set of borrows
//!    currently held by running tasks; a new borrow overlapping a
//!    *different* task's live borrow (either side mutable) panics with
//!    both task names. This is what catches overlapping GatherV ranges,
//!    which are declaration-correct but disjointness-wrong.
//!
//! Borrows are considered live until their task finishes (the pool clears
//! the context, and with it the task's interval entries, before releasing
//! successors). Borrows from threads with no task context (e.g. the
//! submitting thread between phases) and buffers never bound via
//! [`SharedData::bind_keys`](crate::SharedData::bind_keys) are not
//! tracked. Same-task overlapping borrows are also not flagged: tasks
//! routinely re-slice a region sequentially, and those aliases never run
//! concurrently with themselves.

use crate::deps::{Access, AccessMode, DataKey};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// Per-buffer shadow state: the keys the buffer is bound to plus the
/// currently live borrows of running tasks.
pub(crate) struct BufferTracker {
    keys: Vec<DataKey>,
    live: Mutex<Vec<LiveBorrow>>,
}

struct LiveBorrow {
    start: usize,
    end: usize,
    mutable: bool,
    task_id: usize,
    task_name: &'static str,
}

struct TaskCtx {
    id: usize,
    name: &'static str,
    accesses: Vec<Access>,
    /// Trackers this task borrowed from, for O(borrowed buffers) cleanup.
    touched: Vec<Arc<BufferTracker>>,
}

thread_local! {
    static CURRENT: RefCell<Option<TaskCtx>> = const { RefCell::new(None) };
}

pub(crate) fn new_tracker(keys: &[DataKey]) -> Arc<BufferTracker> {
    Arc::new(BufferTracker {
        keys: keys.to_vec(),
        live: Mutex::new(Vec::new()),
    })
}

/// Called by the pool on the executing worker, before the task closure.
pub(crate) fn install_task_ctx(id: usize, name: &'static str, accesses: Vec<Access>) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(TaskCtx {
            id,
            name,
            accesses,
            touched: Vec::new(),
        })
    });
}

/// Called by the pool after the closure returns or panics, before
/// successors are released: retires every live borrow the task held.
pub(crate) fn clear_task_ctx() {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow_mut().take() {
            for tracker in &ctx.touched {
                tracker
                    .live
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .retain(|b| b.task_id != ctx.id);
            }
        }
    });
}

fn mode_allows(mode: AccessMode, mutable: bool) -> bool {
    if mutable {
        matches!(
            mode,
            AccessMode::Write | AccessMode::ReadWrite | AccessMode::GatherV
        )
    } else {
        true
    }
}

/// Validate one `SharedData::range`/`range_mut` call against the current
/// task's declaration and the buffer's live borrows, then record it.
pub(crate) fn on_borrow(tracker: &Arc<BufferTracker>, start: usize, end: usize, mutable: bool) {
    CURRENT.with(|c| {
        let mut cell = c.borrow_mut();
        let Some(ctx) = cell.as_mut() else {
            // Not inside a task (e.g. the master thread reading results
            // after `wait`): the runtime makes no scheduling promise here,
            // so there is nothing to check against.
            return;
        };
        let declared = ctx
            .accesses
            .iter()
            .any(|a| tracker.keys.contains(&a.key) && mode_allows(a.mode, mutable));
        if !declared {
            panic!(
                "access-check: task '{}' took a {} borrow of {}..{} on a buffer bound to {:?}, \
                 but declared no matching access (declared: {:?})",
                ctx.name,
                if mutable { "mutable" } else { "shared" },
                start,
                end,
                tracker.keys,
                ctx.accesses
            );
        }
        let mut live = tracker.live.lock().unwrap_or_else(|e| e.into_inner());
        for b in live.iter() {
            if b.task_id != ctx.id && b.end > start && end > b.start && (mutable || b.mutable) {
                panic!(
                    "access-check: overlapping concurrent borrows of a buffer bound to {:?}: \
                     task '{}' holds {}..{} ({}) while task '{}' takes {}..{} ({}); \
                     GatherV writers must touch disjoint ranges",
                    tracker.keys,
                    b.task_name,
                    b.start,
                    b.end,
                    if b.mutable { "mutable" } else { "shared" },
                    ctx.name,
                    start,
                    end,
                    if mutable { "mutable" } else { "shared" },
                );
            }
        }
        live.push(LiveBorrow {
            start,
            end,
            mutable,
            task_id: ctx.id,
            task_name: ctx.name,
        });
        drop(live);
        if !ctx.touched.iter().any(|t| Arc::ptr_eq(t, tracker)) {
            ctx.touched.push(tracker.clone());
        }
    });
}
