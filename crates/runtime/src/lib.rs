//! A QUARK-like sequential-task-flow (STF) runtime.
//!
//! The IPDPS'15 divide-and-conquer eigensolver is expressed as a *sequential
//! flow of tasks*: a master thread submits tasks in program order, each task
//! declaring how it accesses named data regions ([`DataKey`]s) — `INPUT`,
//! `OUTPUT`, `INOUT`, or the paper's `GATHERV` extension. The runtime infers
//! inter-task dependencies from those declarations (sequential-consistency
//! semantics) and executes tasks out of order on a work-stealing worker pool
//! as soon as their dependencies are satisfied.
//!
//! `GATHERV` is the qualifier the paper added to QUARK: several concurrent
//! writers to the *same* key that the programmer guarantees touch disjoint
//! parts of it. GatherV accesses commute with each other (no mutual
//! dependencies) but act as writers against everything before and after the
//! group, so a panel fan-out followed by a join needs only a constant number
//! of declared dependencies per task.
//!
//! ```
//! use dcst_runtime::{DataKey, Runtime};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(2);
//! let k = DataKey::new(0, 0);
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..4 {
//!     let hits = hits.clone();
//!     // Four commuting partial writers...
//!     rt.task("partial").gatherv(k).spawn(move || {
//!         hits.fetch_add(1, Ordering::SeqCst);
//!     });
//! }
//! let hits2 = hits.clone();
//! // ...joined by one reader that sees all of them.
//! rt.task("join").read(k).spawn(move || {
//!     assert_eq!(hits2.load(Ordering::SeqCst), 4);
//! });
//! rt.wait().unwrap();
//! ```

#[cfg(feature = "access-check")]
mod check;
mod dag;
mod dcst_sync;
mod deps;
pub mod jsonv;
mod metrics;
mod pool;
mod share;
mod trace;

pub use dag::DagRecorder;
pub use deps::{Access, AccessMode, DataKey};
pub use metrics::{RuntimeMetrics, WorkerMetrics};
pub use pool::{
    set_task_trace_name, BoxError, CancelHandle, FailureKind, Runtime, RuntimeError, Scope,
    TaskBuilder,
};
pub use share::SharedData;
pub use trace::{KernelStat, TaskRecord, Trace, WorkerTimeline};
