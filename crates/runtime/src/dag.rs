//! DAG recording and DOT export (the paper's Figure 2).

/// Records task names and dependency edges at submission time.
#[derive(Default, Clone, Debug)]
pub struct DagRecorder {
    nodes: Vec<(usize, &'static str)>,
    edges: Vec<(usize, usize)>,
}

impl DagRecorder {
    pub(crate) fn record(&mut self, id: usize, name: &'static str, deps: &[usize]) {
        self.nodes.push((id, name));
        self.edges.extend(deps.iter().map(|&d| (d, id)));
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edges as `(from, to)` task-id pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Node `(id, name)` pairs in submission order.
    pub fn nodes(&self) -> &[(usize, &'static str)] {
        &self.nodes
    }

    /// Depth of the DAG (longest path, in tasks). Submission order is a
    /// topological order, so one forward sweep suffices.
    pub fn critical_path_len(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let maxid = self.nodes.iter().map(|&(id, _)| id).max().unwrap();
        let mut depth = vec![0usize; maxid + 1];
        for &(id, _) in &self.nodes {
            depth[id] = 1;
        }
        for &(from, to) in &self.edges {
            if depth[to] < depth[from] + 1 {
                depth[to] = depth[from] + 1;
            }
        }
        // Edges are recorded grouped by destination in submission order, so
        // a single pass is not sufficient in general; iterate to fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for &(from, to) in &self.edges {
                if depth[to] < depth[from] + 1 {
                    depth[to] = depth[from] + 1;
                    changed = true;
                }
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Render the DAG in Graphviz DOT, colored per kernel name.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let palette = [
            "lightblue",
            "salmon",
            "palegreen",
            "gold",
            "plum",
            "khaki",
            "lightcyan",
            "orange",
            "lightpink",
            "lightgray",
        ];
        let mut colors: std::collections::HashMap<&'static str, &'static str> = Default::default();
        let mut next = 0usize;
        let mut s =
            String::from("digraph dcst {\n  rankdir=TB;\n  node [style=filled, shape=box];\n");
        for &(id, name) in &self.nodes {
            let color = *colors.entry(name).or_insert_with(|| {
                let c = palette[next % palette.len()];
                next += 1;
                c
            });
            writeln!(s, "  t{id} [label=\"{name}\", fillcolor={color}];").unwrap();
        }
        for &(from, to) in &self.edges {
            writeln!(s, "  t{from} -> t{to};").unwrap();
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_nodes_and_edges() {
        let mut d = DagRecorder::default();
        d.record(0, "a", &[]);
        d.record(1, "b", &[0]);
        d.record(2, "c", &[0, 1]);
        assert_eq!(d.num_nodes(), 3);
        assert_eq!(d.num_edges(), 3);
        assert_eq!(d.critical_path_len(), 3);
    }

    #[test]
    fn dot_output_has_all_nodes() {
        let mut d = DagRecorder::default();
        d.record(0, "Scale", &[]);
        d.record(1, "STEDC", &[0]);
        let dot = d.to_dot();
        assert!(dot.contains("t0 [label=\"Scale\""));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn parallel_tasks_do_not_extend_critical_path() {
        let mut d = DagRecorder::default();
        d.record(0, "root", &[]);
        for i in 1..=10 {
            d.record(i, "leaf", &[0]);
        }
        d.record(11, "join", &(1..=10).collect::<Vec<_>>());
        assert_eq!(d.critical_path_len(), 3);
    }
}
