//! Minimal hand-rolled JSON parser for validating trace exports.
//!
//! The workspace has no serde (external crates resolve to offline
//! stand-ins), but the Chrome-trace exporter and the CLI's `--json`
//! outputs still need round-trip validation in tests and a reader in the
//! bench baseline-comparison path. This is a strict recursive-descent
//! parser over the full JSON grammar (RFC 8259): objects, arrays,
//! strings with `\uXXXX` escapes (surrogate pairs included), numbers,
//! booleans, null. It rejects trailing garbage and guards recursion with
//! a fixed depth limit. Not a performance path — traces are a few MB at
//! most.

/// A parsed JSON value. Object members keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers map to `f64` (the exporter only writes integers
    /// that fit exactly).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first match), or `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, or `None` when not an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, or `None` when not a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, or `None` when not a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse error: a message plus the byte offset it was raised at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

/// Parse `input` as a single JSON document (trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow to form one code point.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("bad \\u code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("0").unwrap(), Json::Num(0.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": false}}"#).unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse(r#""line\nquote\" slash\\ u\u0041""#).unwrap();
        assert_eq!(doc.as_str(), Some("line\nquote\" slash\\ uA"));
        // Surrogate pair: U+1F600.
        let doc = parse(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(doc.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]",
            "{\"a\" 1}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "tru",
            "[1] trailing",
            "\"\\uD83D\"",
            "\"\\q\"",
            "{'a': 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting too deep"));
    }

    #[test]
    fn object_keeps_member_order_and_duplicates() {
        let doc = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        // `get` returns the first member, matching exporter intent.
        assert_eq!(doc.get("k").unwrap().as_num(), Some(1.0));
    }
}
