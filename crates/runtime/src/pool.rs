//! Out-of-order task execution on a work-stealing worker pool.
//!
//! The master thread submits tasks ([`Runtime::task`]); dependencies are
//! inferred by [`DepTracker`](crate::deps) and encoded as edges between
//! nodes. A node becomes *ready* when its last unfinished predecessor
//! completes, at which point it is pushed to a crossbeam injector that the
//! worker threads drain (local LIFO deque first, then the priority
//! injector, then the regular injector, then stealing).
//!
//! The scheduler is critical-path-aware: tasks marked
//! [`TaskBuilder::high_priority`] (the merge phase's serial spine —
//! deflation, the ReduceW join, leaf STEDC) land in a dedicated priority
//! lane that every worker polls ahead of the commuting panel tasks, so a
//! ready join never queues behind a wall of panel work. Local deques pop
//! LIFO to keep a worker on the cache-hot chain it just unlocked; stealers
//! still take the oldest task, preserving breadth for load balance.

use crate::dag::DagRecorder;
use crate::dcst_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::dcst_sync::deque::{Injector, Steal, Stealer, Worker as WorkerDeque};
use crate::dcst_sync::{spawn_worker, Condvar, Mutex, WorkerHandle};
use crate::deps::{Access, AccessMode, DataKey, DepTracker};
use crate::metrics::{PoolCounters, RuntimeMetrics};
use crate::trace::{TaskRecord, Trace};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Boxed error type carried through the runtime's failure channel.
pub type BoxError = Box<dyn std::error::Error + Send + Sync + 'static>;

std::thread_local! {
    /// Trace-name override for the task currently executing on this
    /// worker; consumed (and cleared) when its record is written.
    static TRACE_NAME_OVERRIDE: std::cell::Cell<Option<&'static str>> =
        const { std::cell::Cell::new(None) };
}

/// Rename the currently executing task in the execution trace.
///
/// Task names are fixed at submission time, but some task bodies choose a
/// variant at run time (e.g. `UpdateVect` picking the rank-structured
/// multiply); calling this from inside the body relabels this execution's
/// trace record so profiles show the variants distinctly. A no-op outside
/// a task or with tracing disabled; the override never leaks to the next
/// task on the worker.
pub fn set_task_trace_name(name: &'static str) {
    TRACE_NAME_OVERRIDE.with(|c| c.set(Some(name)));
}

type TaskFn = Box<dyn FnOnce() -> Result<(), BoxError> + Send + 'static>;

/// How a task failed: a caught panic, a typed error returned from a
/// [`TaskBuilder::spawn_try`] body, or an explicit [`Scope::cancel`].
#[derive(Debug)]
pub enum FailureKind {
    /// The task body panicked; the payload is rendered as text.
    Panicked(String),
    /// The task body returned a typed error.
    Failed(BoxError),
    /// The scope was cancelled before its tasks completed.
    Cancelled,
}

/// Error returned by [`Runtime::wait`] / [`Scope::wait`]: the first task
/// failure (typed error, panic, or cancellation) of the waited phase, with
/// the losing task's name.
#[derive(Debug)]
pub struct RuntimeError {
    /// Name of the first task that failed (`"<scope>"` for an explicit
    /// [`Scope::cancel`], which is not attributable to any one task).
    pub task: String,
    /// What happened inside that task.
    pub kind: FailureKind,
}

impl RuntimeError {
    /// The failure rendered as text (panic payload or error `Display`).
    pub fn message(&self) -> String {
        match &self.kind {
            FailureKind::Panicked(m) => m.clone(),
            FailureKind::Failed(e) => e.to_string(),
            FailureKind::Cancelled => "cancelled".to_string(),
        }
    }

    /// True when the task panicked (as opposed to returning a typed error).
    pub fn is_panic(&self) -> bool {
        matches!(self.kind, FailureKind::Panicked(_))
    }

    /// True when the scope was cancelled rather than failing on its own.
    pub fn is_cancelled(&self) -> bool {
        matches!(self.kind, FailureKind::Cancelled)
    }

    /// Recover the typed error a `spawn_try` body returned, together with
    /// the failing task's name. Panics and foreign error types are handed
    /// back unchanged in `Err`.
    pub fn downcast<T>(self) -> Result<(String, T), Self>
    where
        T: std::error::Error + Send + Sync + 'static,
    {
        match self.kind {
            FailureKind::Failed(b) => match b.downcast::<T>() {
                Ok(t) => Ok((self.task, *t)),
                Err(b) => Err(RuntimeError {
                    task: self.task,
                    kind: FailureKind::Failed(b),
                }),
            },
            kind => Err(RuntimeError {
                task: self.task,
                kind,
            }),
        }
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Panicked(m) => write!(f, "task '{}' panicked: {m}", self.task),
            FailureKind::Failed(e) => write!(f, "task '{}' failed: {e}", self.task),
            FailureKind::Cancelled => write!(f, "'{}' cancelled", self.task),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            FailureKind::Failed(e) => Some(&**e),
            FailureKind::Panicked(_) | FailureKind::Cancelled => None,
        }
    }
}

struct NodeBody {
    /// Taken by the executing worker.
    closure: Option<TaskFn>,
    /// Tasks waiting on this one; edges registered at submission time.
    successors: Vec<Arc<Node>>,
    finished: bool,
}

struct Node {
    id: usize,
    name: &'static str,
    /// Critical-path task: scheduled through the priority lane.
    high: bool,
    pending: AtomicUsize,
    body: Mutex<NodeBody>,
    /// The submission scope this task belongs to: its failure/cancellation
    /// domain and completion counter.
    scope: Arc<ScopeState>,
    /// Declared accesses, kept past submission so the executing worker can
    /// install the shadow tracker's task context.
    #[cfg(feature = "access-check")]
    accesses: Vec<Access>,
}

/// Per-scope failure/cancellation domain. Every task belongs to exactly
/// one scope ([`Runtime::task`] uses the runtime's default scope,
/// [`Scope::task`] an explicit one); a failure or cancel latches *only* its
/// own scope, so concurrent submissions — e.g. independent solve requests
/// multiplexed over one pool — can never abort or mis-attribute each
/// other's tasks.
struct ScopeState {
    id: usize,
    /// Tasks of this scope submitted but not yet finished.
    outstanding: AtomicUsize,
    /// First task failure (typed error or panic) of the scope's current
    /// phase, or the cancellation marker.
    failure: Mutex<Option<RuntimeError>>,
    /// Latched by the scope's first failure or an explicit cancel; bodies
    /// of this scope's not-yet-started tasks are skipped while set.
    /// Cleared by `wait()` so the scope is reusable.
    cancelled: AtomicBool,
    /// Route every task of this scope through the priority injector lane
    /// (a whole-request priority class, on top of per-task
    /// [`TaskBuilder::high_priority`]).
    boost: bool,
}

impl ScopeState {
    fn new(id: usize, boost: bool) -> Self {
        ScopeState {
            id,
            outstanding: AtomicUsize::new(0),
            failure: Mutex::new(None),
            cancelled: AtomicBool::new(false),
            boost,
        }
    }

    /// Record the first failure of the scope's phase and latch its
    /// cancellation. The latch is raised *before* the failing task's
    /// successors are released (the caller runs the release loop after
    /// `execute`'s body section), so a successor made ready by a failing
    /// task never runs its body.
    fn record_failure(&self, task: &str, kind: FailureKind) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(RuntimeError {
                task: task.to_string(),
                kind,
            });
        }
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Latch cancellation: queued-but-unstarted bodies of this scope are
    /// skipped, and `wait` reports [`FailureKind::Cancelled`] unless a real
    /// failure latched first (first entry wins, so cancelling an
    /// already-failed scope preserves the failure's attribution).
    fn cancel(&self) {
        self.record_failure("<scope>", FailureKind::Cancelled);
    }
}

struct Shared {
    injector: Injector<Arc<Node>>,
    /// Priority lane polled ahead of `injector` by every worker.
    hi_injector: Injector<Arc<Node>>,
    stealers: Vec<Stealer<Arc<Node>>>,
    /// Tasks submitted but not yet finished.
    outstanding: AtomicUsize,
    /// Workers currently parked on `idle_cv` (incremented under
    /// `idle_lock` before the final queue re-check, so a pusher that reads
    /// 0 is guaranteed the worker will still see its push).
    idle_workers: AtomicUsize,
    /// Signals workers to exit.
    stop: AtomicBool,
    /// True while a trace buffer is installed (cheap pre-check).
    tracing: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// One lock/condvar pair serves every waiter: `Runtime::wait`,
    /// `Scope::wait`, and the drop-time global drain all sleep on `done_cv`
    /// and re-check their own counter. Scope completions are rare (one per
    /// request), so the shared notify_all costs nothing measurable and
    /// avoids a dynamically growing set of condvars.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// Trace records tagged with the executing task's scope id, so
    /// `take_scope_trace` can split one shared pool's trace per request.
    trace: Mutex<Vec<(TaskRecord, usize)>>,
    /// Dependency edges observed at submission while tracing is enabled,
    /// tagged with the successor's scope id.
    trace_edges: Mutex<Vec<(usize, usize, usize)>>,
    /// Per-worker scheduler counters (no-op unless the `metrics` feature
    /// is on; see `crate::metrics` for the exact counter semantics).
    metrics: PoolCounters,
    epoch: Instant,
}

impl Shared {
    fn push_ready(&self, node: Arc<Node>) {
        self.metrics.depth_inc();
        if node.high {
            self.hi_injector.push(node);
        } else {
            self.injector.push(node);
        }
        // Skip the notify syscall when nobody is parked (the common case
        // while the pool is saturated). The counter is raised under
        // `idle_lock` before the parking worker's final emptiness check, so
        // reading 0 here means that worker will observe this push.
        if self.idle_workers.load(Ordering::SeqCst) > 0 {
            let _g = self.idle_lock.lock();
            self.idle_cv.notify_one();
        }
    }

    fn execute(&self, node: Arc<Node>, worker_id: usize) {
        // Counted unconditionally — cancelled skips included — so the
        // executed counter always matches an enabled trace's record count.
        self.metrics.depth_dec();
        self.metrics.executed(worker_id);
        let closure = node.body.lock().closure.take();
        let start = self.epoch.elapsed();
        // After the task's own scope latches (failure or explicit cancel),
        // drop remaining bodies of THAT scope without running them; other
        // scopes' tasks are untouched. The successor bookkeeping below
        // still runs so the counters reach zero and the waits terminate.
        let skip = node.scope.cancelled.load(Ordering::SeqCst);
        if let Some(f) = closure {
            if skip {
                drop(f);
            } else {
                // The task context must be installed before the closure's
                // first SharedData borrow and cleared (even on panic) before
                // successors are released, so a successor's borrows are never
                // checked against this task's already-retired ones.
                #[cfg(feature = "access-check")]
                crate::check::install_task_ctx(node.id, node.name, node.accesses.clone());
                let result = catch_unwind(AssertUnwindSafe(f));
                #[cfg(feature = "access-check")]
                crate::check::clear_task_ctx();
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => node
                        .scope
                        .record_failure(node.name, FailureKind::Failed(err)),
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        node.scope
                            .record_failure(node.name, FailureKind::Panicked(message));
                    }
                }
            }
        }
        // Always drained, traced or not, so an override set by this body
        // can never label a later task on the same worker.
        let renamed = TRACE_NAME_OVERRIDE.with(|c| c.take());
        if self.tracing.load(Ordering::Relaxed) {
            let end = self.epoch.elapsed();
            self.trace.lock().push((
                TaskRecord {
                    id: node.id,
                    name: renamed.unwrap_or(node.name),
                    worker: worker_id,
                    start_us: start.as_micros() as u64,
                    end_us: end.as_micros() as u64,
                },
                node.scope.id,
            ));
        }
        // Release successors.
        let successors = {
            let mut body = node.body.lock();
            body.finished = true;
            std::mem::take(&mut body.successors)
        };
        for s in successors {
            if s.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.push_ready(s);
            }
        }
        // Scope counter first, global counter second: when the global count
        // hits zero every scope count already has, so the drop-time drain
        // can never observe a stale non-zero scope.
        let scope_done = node.scope.outstanding.fetch_sub(1, Ordering::AcqRel) == 1;
        let all_done = self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1;
        if scope_done || all_done {
            let _g = self.done_lock.lock();
            self.done_cv.notify_all();
        }
    }
}

fn find_task(
    shared: &Shared,
    local: &WorkerDeque<Arc<Node>>,
    worker_id: usize,
) -> Option<Arc<Node>> {
    if let Some(node) = local.pop() {
        return Some(node);
    }
    loop {
        // Priority lane first: a ready critical-path task (deflation,
        // ReduceW, STEDC) must not queue behind commuting panel tasks.
        // These are popped singly — they are rare and serial by nature, so
        // batching them into one worker's local deque would only delay a
        // sibling's chance to pick one up.
        match shared.hi_injector.steal() {
            Steal::Success(node) => {
                shared.metrics.priority_hit(worker_id);
                return Some(node);
            }
            Steal::Retry => {
                shared.metrics.steal_retry(worker_id);
                continue;
            }
            Steal::Empty => {}
        }
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(node) => return Some(node),
            Steal::Retry => {
                shared.metrics.steal_retry(worker_id);
                continue;
            }
            Steal::Empty => {}
        }
        // Both injectors empty: sweep the sibling deques. One sweep is one
        // steal attempt for the metrics, successful or not.
        shared.metrics.steal_attempt(worker_id);
        match shared.stealers.iter().map(|s| s.steal()).collect() {
            Steal::Success(node) => {
                shared.metrics.steal_success(worker_id);
                return Some(node);
            }
            Steal::Empty => return None,
            Steal::Retry => {
                shared.metrics.steal_retry(worker_id);
                continue;
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, local: WorkerDeque<Arc<Node>>, worker_id: usize) {
    loop {
        match find_task(&shared, &local, worker_id) {
            Some(node) => shared.execute(node, worker_id),
            None => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                let mut guard = shared.idle_lock.lock();
                // Publish idleness, then re-check under the lock. The
                // argument has two halves, stated against the atomic deque:
                //
                // * Injectors (correctness): every newly *released* task
                //   lands in an injector via `push_ready`, whose pusher
                //   either sees the raised idle counter (and notifies under
                //   this same lock, which we hold until the wait releases
                //   it) or pushed early enough for the `is_empty` re-check
                //   below to observe the push — the injector's push CAS on
                //   the tail index is ordered before `is_empty`'s SeqCst
                //   index loads. Either way no wakeup is lost.
                //
                // * Sibling deques (latency only): work can also sit in
                //   another worker's local deque — batched there by
                //   `steal_batch_and_pop` after our sweep looked, never
                //   notified because only `push_ready` notifies. The owner
                //   is awake and will drain it, so parking here is *safe*;
                //   it just forfeits parallelism until the next release.
                //   `Stealer::is_empty` is a racy hint (top/bottom loads,
                //   no CAS), which is exactly enough for a heuristic
                //   re-check: a false "empty" restores the status quo ante
                //   (owner drains it), a false "non-empty" costs one more
                //   find_task sweep. The 1 s `wait_for` backstop below
                //   stays as insurance against bugs, not as part of either
                //   argument — the model suite runs with untimed waits.
                shared.idle_workers.fetch_add(1, Ordering::SeqCst);
                if shared.hi_injector.is_empty()
                    && shared.injector.is_empty()
                    && shared.stealers.iter().all(|s| s.is_empty())
                    && !shared.stop.load(Ordering::Acquire)
                {
                    shared.metrics.park(worker_id);
                    shared
                        .idle_cv
                        .wait_for(&mut guard, std::time::Duration::from_secs(1));
                }
                shared.idle_workers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

struct SubmitState {
    tracker: DepTracker,
    next_id: usize,
    next_scope_id: usize,
    /// Unfinished (or not yet GC'd) nodes by id, for edge wiring.
    nodes: HashMap<usize, Arc<Node>>,
    /// Data keys each live scope's tasks have declared, so a scope's wait
    /// can retire its keys from the dependency tracker — without this the
    /// tracker grows without bound over a daemon's lifetime.
    scope_keys: HashMap<usize, HashSet<DataKey>>,
    dag: Option<DagRecorder>,
}

/// The sequential-task-flow runtime. See the crate docs for the model.
pub struct Runtime {
    shared: Arc<Shared>,
    threads: Vec<WorkerHandle>,
    submit: Mutex<SubmitState>,
    /// Failure/cancellation domain of tasks submitted via [`Runtime::task`]
    /// (the single-caller API predating [`Runtime::scope`]).
    default_scope: Arc<ScopeState>,
    num_threads: usize,
    /// Model-check only: reintroduce the pre-sentinel successor-wiring
    /// race so the model checker can demonstrate it catches the bug.
    #[cfg(dcst_model_check)]
    buggy_wiring: bool,
}

impl Runtime {
    /// Spawn a pool of `num_threads` workers (at least 1).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        // LIFO locals: of the batch a worker pulls from the injector it
        // runs the most recently released task first (the one whose inputs
        // are most likely still in cache), while stealers take from the
        // opposite (oldest) end to preserve breadth.
        let deques: Vec<_> = (0..num_threads).map(|_| WorkerDeque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            hi_injector: Injector::new(),
            stealers,
            outstanding: AtomicUsize::new(0),
            idle_workers: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            tracing: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            trace: Mutex::new(Vec::new()),
            trace_edges: Mutex::new(Vec::new()),
            metrics: PoolCounters::new(num_threads),
            epoch: Instant::now(),
        });
        let threads = deques
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let sh = shared.clone();
                spawn_worker(format!("dcst-worker-{i}"), move || worker_loop(sh, d, i))
            })
            .collect();
        Runtime {
            shared,
            threads,
            submit: Mutex::new(SubmitState {
                tracker: DepTracker::default(),
                next_id: 0,
                next_scope_id: 1,
                nodes: HashMap::new(),
                scope_keys: HashMap::new(),
                dag: None,
            }),
            default_scope: Arc::new(ScopeState::new(0, false)),
            num_threads,
            #[cfg(dcst_model_check)]
            buggy_wiring: false,
        }
    }

    /// Model-check only: a runtime whose successor wiring re-creates the
    /// unsynchronized finished-check/push window the +1 pending sentinel
    /// fixed. Exists so `tests/model.rs` can prove the checker detects
    /// that bug class (a lost successor release deadlocks the model).
    #[cfg(dcst_model_check)]
    pub fn new_with_buggy_wiring(num_threads: usize) -> Self {
        let mut rt = Self::new(num_threads);
        rt.buggy_wiring = true;
        rt
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Begin building a task named `name` (names label traces and DAG
    /// dumps) in the runtime's default scope.
    pub fn task(&self, name: &'static str) -> TaskBuilder<'_> {
        TaskBuilder {
            rt: self,
            scope: self.default_scope.clone(),
            name,
            accesses: Vec::new(),
            high: false,
        }
    }

    /// Open a fresh submission scope: an isolated failure/cancellation
    /// domain over the shared pool. Tasks submitted through the scope
    /// ([`Scope::task`]) run on the same workers as everything else, but a
    /// failure (or [`Scope::cancel`]) latches only this scope — concurrent
    /// scopes keep running — and [`Scope::wait`] observes only this scope's
    /// completion and first failure.
    pub fn scope(&self) -> Scope<'_> {
        self.new_scope(false)
    }

    /// [`scope`](Self::scope), but every task submitted through it enters
    /// the priority injector lane: the whole-request priority class a
    /// server maps high-priority requests onto.
    pub fn priority_scope(&self) -> Scope<'_> {
        self.new_scope(true)
    }

    fn new_scope(&self, boost: bool) -> Scope<'_> {
        let id = {
            let mut st = self.submit.lock();
            let id = st.next_scope_id;
            st.next_scope_id += 1;
            id
        };
        Scope {
            rt: self,
            state: Arc::new(ScopeState::new(id, boost)),
        }
    }

    /// Start recording per-task timing and dependency edges. Any previous
    /// trace is discarded.
    pub fn enable_tracing(&self) {
        *self.shared.trace.lock() = Vec::new();
        *self.shared.trace_edges.lock() = Vec::new();
        self.shared.tracing.store(true, Ordering::Relaxed);
    }

    /// Stop tracing and return the records and edges collected so far
    /// (all scopes).
    pub fn take_trace(&self) -> Trace {
        self.shared.tracing.store(false, Ordering::Relaxed);
        Trace {
            records: std::mem::take(&mut *self.shared.trace.lock())
                .into_iter()
                .map(|(r, _)| r)
                .collect(),
            edges: std::mem::take(&mut *self.shared.trace_edges.lock())
                .into_iter()
                .map(|(from, to, _)| (from, to))
                .collect(),
            num_workers: self.num_threads,
        }
    }

    /// Drain the trace records and edges belonging to one scope, leaving
    /// other scopes' records in place and tracing ENABLED — the
    /// per-request trace path of a long-lived server, where one shared
    /// pool interleaves many requests and each response carries only its
    /// own timeline. Call after the scope's `wait` so the records are
    /// complete.
    pub fn take_scope_trace(&self, scope: &Scope<'_>) -> Trace {
        let sid = scope.state.id;
        let mut records = Vec::new();
        {
            let mut all = self.shared.trace.lock();
            let mut keep = Vec::with_capacity(all.len());
            for (r, s) in all.drain(..) {
                if s == sid {
                    records.push(r);
                } else {
                    keep.push((r, s));
                }
            }
            *all = keep;
        }
        let mut edges = Vec::new();
        {
            let mut all = self.shared.trace_edges.lock();
            let mut keep = Vec::with_capacity(all.len());
            for (from, to, s) in all.drain(..) {
                if s == sid {
                    edges.push((from, to));
                } else {
                    keep.push((from, to, s));
                }
            }
            *all = keep;
        }
        Trace {
            records,
            edges,
            num_workers: self.num_threads,
        }
    }

    /// Snapshot the scheduler counters accumulated since the pool started
    /// (all zeros unless built with the `metrics` feature). Counters are
    /// cumulative across phases; diff two snapshots to isolate one phase.
    pub fn runtime_metrics(&self) -> RuntimeMetrics {
        let snap = self.shared.metrics.snapshot();
        // Growth is counted inside each deque (the owner bumps a plain
        // relaxed counter per doubling); fold it in here rather than in
        // PoolCounters so the hot push path carries no extra probe. Gated
        // like every other counter to keep the feature-off snapshot
        // all-zeros.
        #[cfg(feature = "metrics")]
        let snap = {
            let mut snap = snap;
            for (w, s) in snap.workers.iter_mut().zip(self.shared.stealers.iter()) {
                w.deque_grows = s.grow_count();
            }
            snap
        };
        snap
    }

    /// Current ready-queue depth: tasks released to the injectors or local
    /// deques but not yet started. Always 0 without the `metrics` feature.
    /// A server's admission control reads this gauge to shed load when the
    /// pool's backlog saturates.
    pub fn ready_queue_depth(&self) -> u64 {
        self.shared.metrics.depth()
    }

    /// Start recording the task DAG (names + dependency edges).
    pub fn enable_dag_recording(&self) {
        self.submit.lock().dag = Some(DagRecorder::default());
    }

    /// Stop DAG recording and return the recorder (None if never enabled).
    pub fn take_dag(&self) -> Option<DagRecorder> {
        self.submit.lock().dag.take()
    }

    fn submit_task(
        &self,
        scope: &Arc<ScopeState>,
        name: &'static str,
        accesses: Vec<Access>,
        high: bool,
        f: TaskFn,
    ) {
        // A scope-wide priority class boosts every one of its tasks into
        // the priority lane, on top of per-task high_priority.
        let high = high || scope.boost;
        // Under the submission lock: allocate the id, infer dependencies,
        // and resolve predecessor ids to live nodes. The per-predecessor
        // edge wiring (which takes each predecessor's body lock and can
        // contend with finishing workers) happens after the lock drops, so
        // a long dependency list no longer serializes other submitters.
        let mut st = self.submit.lock();
        let id = st.next_id;
        st.next_id += 1;
        let deps = st.tracker.submit(id, &accesses);
        if !accesses.is_empty() {
            st.scope_keys
                .entry(scope.id)
                .or_default()
                .extend(accesses.iter().map(|a| a.key));
        }
        if let Some(dag) = st.dag.as_mut() {
            dag.record(id, name, &deps);
        }
        if !deps.is_empty() && self.shared.tracing.load(Ordering::Relaxed) {
            let mut edges = self.shared.trace_edges.lock();
            edges.extend(deps.iter().map(|&d| (d, id, scope.id)));
        }
        // The +1 sentinel keeps the task from firing while edges are wired.
        let node = Arc::new(Node {
            id,
            name,
            high,
            pending: AtomicUsize::new(1),
            body: Mutex::new(NodeBody {
                closure: Some(f),
                successors: Vec::new(),
                finished: false,
            }),
            scope: scope.clone(),
            #[cfg(feature = "access-check")]
            accesses,
        });
        scope.outstanding.fetch_add(1, Ordering::AcqRel);
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        let preds: Vec<Arc<Node>> = deps
            .iter()
            .filter_map(|d| st.nodes.get(d).cloned())
            .collect();
        st.nodes.insert(node.id, node.clone());
        drop(st);
        #[cfg(dcst_model_check)]
        if self.buggy_wiring {
            // The pre-sentinel bug under model test: the finished check and
            // the successor push happen under two separate body locks, so a
            // predecessor finishing in the window drains its successor list
            // without this node in it — `pending` never reaches zero.
            for pred in &preds {
                let finished = pred.body.lock().finished;
                if !finished {
                    node.pending.fetch_add(1, Ordering::AcqRel);
                    pred.body.lock().successors.push(node.clone());
                }
            }
            if node.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.push_ready(node);
            }
            return;
        }
        // The Arc clones keep predecessors alive across `wait`'s GC; each
        // body lock decides finished-vs-pending race per predecessor.
        for pred in preds {
            let mut body = pred.body.lock();
            if !body.finished {
                node.pending.fetch_add(1, Ordering::AcqRel);
                body.successors.push(node.clone());
            }
        }
        if node.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.push_ready(node);
        }
    }

    /// Block until every task of the *default scope* (those submitted via
    /// [`Runtime::task`]) has finished or been skipped. Returns the first
    /// task failure of the phase — a typed error from a
    /// [`TaskBuilder::spawn_try`] body or a caught panic — then clears the
    /// failure slot and the cancellation latch so the runtime is reusable.
    /// Explicit [`Scope`]s are waited independently via [`Scope::wait`].
    pub fn wait(&self) -> Result<(), RuntimeError> {
        let scope = self.default_scope.clone();
        self.wait_scope(&scope)
    }

    fn wait_scope(&self, scope: &Arc<ScopeState>) -> Result<(), RuntimeError> {
        let mut guard = self.shared.done_lock.lock();
        // The finishing worker notifies `done_cv` under `done_lock` when a
        // scope's (or the global) outstanding count reaches zero, and this
        // re-check holds the same lock, so the wakeup cannot be missed; the
        // timeout is a safety backstop, not a polling interval.
        while scope.outstanding.load(Ordering::Acquire) != 0 {
            self.shared
                .done_cv
                .wait_for(&mut guard, std::time::Duration::from_secs(1));
        }
        drop(guard);
        self.gc_after_wait(scope.id);
        let failure = scope.failure.lock().take();
        // Reset the latch only after the slot is drained: every task of the
        // failed phase has finished (outstanding hit zero), so nothing can
        // re-latch between these two lines for the *old* phase.
        scope.cancelled.store(false, Ordering::SeqCst);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Post-wait bookkeeping GC: completed nodes are no longer needed for
    /// edge wiring, and the waited scope's data keys are retired from the
    /// dependency tracker unless a still-live task (necessarily of another
    /// scope — this scope is quiescent) references them. Keeps both maps
    /// bounded by the *in-flight* working set over a daemon's lifetime.
    fn gc_after_wait(&self, scope_id: usize) {
        let mut st = self.submit.lock();
        st.nodes.retain(|_, n| !n.body.lock().finished);
        if let Some(keys) = st.scope_keys.remove(&scope_id) {
            let SubmitState { tracker, nodes, .. } = &mut *st;
            tracker.forget_keys(&keys, |id| nodes.contains_key(&id));
        }
    }

    /// Number of data keys the dependency tracker currently retains — an
    /// observability probe for tests that bound bookkeeping growth across
    /// many scopes (a long-lived server must not accumulate key state).
    pub fn tracked_keys(&self) -> usize {
        self.submit.lock().tracker.len()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // A forgotten `wait()` must never make a failure vanish silently.
        if let Err(err) = self.wait() {
            eprintln!("dcst-runtime: runtime dropped with unobserved task failure: {err}");
        }
        // Scoped tasks can still be in flight (a `Scope` dropped without
        // waiting); drain the GLOBAL count before stopping the workers so
        // no task body is abandoned in a queue.
        {
            let mut guard = self.shared.done_lock.lock();
            while self.shared.outstanding.load(Ordering::Acquire) != 0 {
                self.shared
                    .done_cv
                    .wait_for(&mut guard, std::time::Duration::from_secs(1));
            }
        }
        self.shared.stop.store(true, Ordering::Release);
        {
            let _g = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// An isolated failure/cancellation domain over the shared pool, opened by
/// [`Runtime::scope`] / [`Runtime::priority_scope`].
///
/// A long-lived runtime multiplexing independent submissions (the serve
/// daemon's concurrent solve requests) gives each its own scope: tasks of
/// every scope interleave freely on the same workers, but a typed failure,
/// panic, or [`cancel`](Scope::cancel) latches only the owning scope —
/// its queued bodies are skipped, its [`wait`](Scope::wait) reports the
/// first failure, and every other scope is untouched. After a successful
/// `wait` the scope is reusable for another phase.
///
/// Scopes should not share [`DataKey`]s: dependency inference spans scopes
/// (keys are global), which would order one request's tasks behind
/// another's and defeat the isolation the scope provides. Derive keys from
/// a per-scope object-id base instead.
pub struct Scope<'rt> {
    rt: &'rt Runtime,
    state: Arc<ScopeState>,
}

impl<'rt> Scope<'rt> {
    /// Begin building a task in this scope.
    pub fn task(&self, name: &'static str) -> TaskBuilder<'rt> {
        TaskBuilder {
            rt: self.rt,
            scope: self.state.clone(),
            name,
            accesses: Vec::new(),
            high: false,
        }
    }

    /// Block until every task of this scope has finished or been skipped,
    /// returning the scope's first failure (typed error, panic, or
    /// [`Cancelled`](FailureKind::Cancelled)), then reset the scope for
    /// reuse. Only this scope's tasks are observed.
    pub fn wait(&self) -> Result<(), RuntimeError> {
        self.rt.wait_scope(&self.state)
    }

    /// Latch this scope's cancellation: bodies of its not-yet-started
    /// tasks are skipped (already-running bodies complete), and `wait`
    /// reports [`FailureKind::Cancelled`] unless a real failure latched
    /// first. Idempotent; other scopes are unaffected.
    pub fn cancel(&self) {
        self.state.cancel();
    }

    /// An owner-independent handle that can cancel this scope from another
    /// thread (e.g. a server's control connection while an executor thread
    /// owns the `Scope` and blocks in [`wait`](Scope::wait)).
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            state: self.state.clone(),
        }
    }

    /// True once a failure or cancel has latched this scope's current phase.
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// Scope id (unique per runtime; tags this scope's trace records).
    pub fn id(&self) -> usize {
        self.state.id
    }

    /// The runtime this scope submits into.
    pub fn runtime(&self) -> &'rt Runtime {
        self.rt
    }
}

impl Drop for Scope<'_> {
    fn drop(&mut self) {
        // Non-blocking: if the scope is already quiescent, retire its
        // bookkeeping and report a failure nobody waited for (deliberate
        // cancellation is not noise-worthy). In-flight tasks stay owned by
        // the pool and are drained by `Runtime::drop`'s global drain.
        if self.state.outstanding.load(Ordering::Acquire) == 0 {
            self.rt.gc_after_wait(self.state.id);
            if let Some(err) = self.state.failure.lock().take() {
                if !err.is_cancelled() {
                    eprintln!("dcst-runtime: scope dropped with unobserved task failure: {err}");
                }
            }
        }
    }
}

/// Cancels a [`Scope`] from outside its owning thread; see
/// [`Scope::cancel_handle`]. Clones share the same scope.
#[derive(Clone)]
pub struct CancelHandle {
    state: Arc<ScopeState>,
}

impl CancelHandle {
    /// Latch the scope's cancellation (same semantics as [`Scope::cancel`]).
    pub fn cancel(&self) {
        self.state.cancel();
    }

    /// True once a failure or cancel has latched the scope.
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }
}

/// Builder for one task: declare accesses, then [`spawn`](Self::spawn).
pub struct TaskBuilder<'rt> {
    rt: &'rt Runtime,
    scope: Arc<ScopeState>,
    name: &'static str,
    accesses: Vec<Access>,
    high: bool,
}

impl TaskBuilder<'_> {
    /// Mark this task as critical-path: when ready it enters the priority
    /// lane and is scheduled ahead of any queued normal-priority task.
    pub fn high_priority(mut self) -> Self {
        self.high = true;
        self
    }

    /// Declare an `INPUT` access.
    pub fn read(mut self, key: DataKey) -> Self {
        self.accesses.push(Access {
            key,
            mode: AccessMode::Read,
        });
        self
    }

    /// Declare an `OUTPUT` access.
    pub fn write(mut self, key: DataKey) -> Self {
        self.accesses.push(Access {
            key,
            mode: AccessMode::Write,
        });
        self
    }

    /// Declare an `INOUT` access.
    pub fn read_write(mut self, key: DataKey) -> Self {
        self.accesses.push(Access {
            key,
            mode: AccessMode::ReadWrite,
        });
        self
    }

    /// Declare a `GATHERV` access (commuting disjoint writer).
    pub fn gatherv(mut self, key: DataKey) -> Self {
        self.accesses.push(Access {
            key,
            mode: AccessMode::GatherV,
        });
        self
    }

    /// Submit the task. It runs as soon as its dependencies are satisfied.
    pub fn spawn(self, f: impl FnOnce() + Send + 'static) {
        self.rt.submit_task(
            &self.scope,
            self.name,
            self.accesses,
            self.high,
            Box::new(move || {
                f();
                Ok(())
            }),
        );
    }

    /// Submit a fallible task. An `Err` return is recorded as the owning
    /// scope's failure (first one wins), latches that scope's cancellation
    /// so its not-yet-started bodies are skipped, and is surfaced — typed —
    /// by the scope's wait with this task's name attached.
    pub fn spawn_try<E>(self, f: impl FnOnce() -> Result<(), E> + Send + 'static)
    where
        E: std::error::Error + Send + Sync + 'static,
    {
        self.rt.submit_task(
            &self.scope,
            self.name,
            self.accesses,
            self.high,
            Box::new(move || f().map_err(|e| Box::new(e) as BoxError)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // Test bookkeeping only, never a pool primitive; the model checker
    // does not need to instrument it. xtask-lint: allow(pool-sync)
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_a_single_task() {
        let rt = Runtime::new(2);
        let hit = Arc::new(AtomicBool::new(false));
        let h = hit.clone();
        rt.task("t").spawn(move || h.store(true, Ordering::SeqCst));
        rt.wait().unwrap();
        assert!(hit.load(Ordering::SeqCst));
    }

    #[test]
    fn respects_write_read_ordering() {
        // A long chain through one key must execute in submission order.
        let rt = Runtime::new(4);
        let k = DataKey::new(0, 0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..64usize {
            let log = log.clone();
            rt.task("chain")
                .read_write(k)
                .spawn(move || log.lock().push(i));
        }
        rt.wait().unwrap();
        let got = log.lock().clone();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_can_overlap() {
        // Two tasks on different keys, each waiting for the other to start:
        // deadlocks unless they run concurrently.
        let rt = Runtime::new(2);
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        let (a1, b1) = (a.clone(), b.clone());
        rt.task("x").write(DataKey::new(0, 1)).spawn(move || {
            a1.store(true, Ordering::SeqCst);
            while !b1.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
        let (a2, b2) = (a, b);
        rt.task("y").write(DataKey::new(0, 2)).spawn(move || {
            b2.store(true, Ordering::SeqCst);
            while !a2.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
        rt.wait().unwrap();
    }

    #[test]
    fn gatherv_fanout_joins_correctly() {
        let rt = Runtime::new(3);
        let k = DataKey::new(1, 0);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=10u64 {
            let sum = sum.clone();
            rt.task("part").gatherv(k).spawn(move || {
                sum.fetch_add(i, Ordering::SeqCst);
            });
        }
        let observed = Arc::new(AtomicU64::new(0));
        let (s, o) = (sum.clone(), observed.clone());
        rt.task("join").read_write(k).spawn(move || {
            o.store(s.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        rt.wait().unwrap();
        assert_eq!(observed.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn panic_is_reported_not_propagated() {
        let rt = Runtime::new(2);
        rt.task("boom").spawn(|| panic!("injected failure"));
        let err = rt.wait().unwrap_err();
        assert_eq!(err.task, "boom");
        assert!(err.is_panic());
        assert!(err.message().contains("injected failure"));
        // The runtime is reusable afterwards.
        rt.task("ok").spawn(|| {});
        rt.wait().unwrap();
    }

    #[test]
    fn spawn_try_error_is_typed_and_downcastable() {
        let rt = Runtime::new(2);
        rt.task("flaky")
            .spawn_try(|| Err::<(), _>(std::io::Error::other("disk on fire")));
        let err = rt.wait().unwrap_err();
        assert_eq!(err.task, "flaky");
        assert!(!err.is_panic());
        assert!(err.to_string().contains("failed: disk on fire"));
        let (task, io) = err.downcast::<std::io::Error>().expect("typed recovery");
        assert_eq!(task, "flaky");
        assert_eq!(io.to_string(), "disk on fire");
        // Reusable after a typed failure too.
        rt.task("ok").spawn(|| {});
        rt.wait().unwrap();
    }

    #[test]
    fn failure_cancels_not_yet_started_successors() {
        // Single worker: the chain behind the failing task is fully ordered,
        // so every successor body must be skipped once the failure latches.
        let rt = Runtime::new(1);
        let k = DataKey::new(0, 7);
        rt.task("fail")
            .read_write(k)
            .spawn_try(|| Err::<(), _>(std::io::Error::other("first")));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = ran.clone();
            rt.task("after").read_write(k).spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        let err = rt.wait().unwrap_err();
        assert_eq!(err.task, "fail");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "no task body may start after cancellation latches"
        );
        // The latch is cleared by wait(): the next phase runs normally.
        let hit = Arc::new(AtomicBool::new(false));
        let h = hit.clone();
        rt.task("next-phase")
            .spawn(move || h.store(true, Ordering::SeqCst));
        rt.wait().unwrap();
        assert!(hit.load(Ordering::SeqCst));
    }

    #[test]
    fn first_failure_wins_over_later_ones() {
        // One worker serializes the chain; the first submitted failure is
        // the one reported, later failing bodies are skipped entirely.
        let rt = Runtime::new(1);
        let k = DataKey::new(0, 8);
        rt.task("first")
            .read_write(k)
            .spawn_try(|| Err::<(), _>(std::io::Error::other("one")));
        rt.task("second")
            .read_write(k)
            .spawn_try(|| Err::<(), _>(std::io::Error::other("two")));
        let err = rt.wait().unwrap_err();
        assert_eq!(err.task, "first");
        assert_eq!(err.message(), "one");
    }

    #[test]
    fn wait_is_reusable_across_phases() {
        let rt = Runtime::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        for phase in 0..3 {
            for _ in 0..10 {
                let c = count.clone();
                rt.task("p").spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            rt.wait().unwrap();
            assert_eq!(count.load(Ordering::SeqCst), (phase + 1) * 10);
        }
    }

    #[test]
    fn trace_records_every_task() {
        let rt = Runtime::new(2);
        rt.enable_tracing();
        for _ in 0..5 {
            rt.task("traced").spawn(|| {});
        }
        rt.wait().unwrap();
        let trace = rt.take_trace();
        assert_eq!(trace.records.len(), 5);
        assert!(trace
            .records
            .iter()
            .all(|r| r.name == "traced" && r.end_us >= r.start_us));
    }

    #[test]
    fn priority_tasks_overtake_queued_work() {
        // One worker, held busy by a gate task while panel tasks queue up
        // in the injector; a high-priority join submitted last must still
        // run before every queued panel task.
        let rt = Runtime::new(1);
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let (s, r, log) = (started.clone(), release.clone(), log.clone());
            rt.task("gate").spawn(move || {
                s.store(true, Ordering::SeqCst);
                while !r.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                log.lock().push("gate");
            });
        }
        // Ensure the worker is inside the gate (so the panels below stay
        // in the injector rather than being batched into its local deque).
        while !started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        for _ in 0..8 {
            let log = log.clone();
            rt.task("panel").spawn(move || log.lock().push("panel"));
        }
        let l = log.clone();
        rt.task("join")
            .high_priority()
            .spawn(move || l.lock().push("join"));
        release.store(true, Ordering::SeqCst);
        rt.wait().unwrap();
        let got = log.lock().clone();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0], "gate");
        assert_eq!(
            got[1], "join",
            "priority task must overtake queued panels: {got:?}"
        );
    }

    #[test]
    fn logical_clock_never_violates_dependencies() {
        // Random DAG via random key accesses; a logical clock per key checks
        // that any reader observes the value the last writer published.
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let rt = Runtime::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let nkeys = 6usize;
        let cells: Vec<Arc<AtomicU64>> = (0..nkeys).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut expected = vec![0u64; nkeys];
        let violations = Arc::new(AtomicUsize::new(0));
        for t in 0..300u64 {
            let ki = rng.gen_range(0..nkeys);
            let key = DataKey::new(9, ki as u64);
            let cell = cells[ki].clone();
            if rng.gen_bool(0.5) {
                // Writer: bump the clock to a known value.
                let newv = t + 1;
                let oldv = expected[ki];
                let viol = violations.clone();
                rt.task("w").read_write(key).spawn(move || {
                    if cell.load(Ordering::SeqCst) != oldv {
                        viol.fetch_add(1, Ordering::SeqCst);
                    }
                    cell.store(newv, Ordering::SeqCst);
                });
                expected[ki] = newv;
            } else {
                let want = expected[ki];
                let viol = violations.clone();
                rt.task("r").read(key).spawn(move || {
                    if cell.load(Ordering::SeqCst) != want {
                        viol.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        }
        rt.wait().unwrap();
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }
}
