//! Execution traces: one record per executed task (Figures 3 and 4).
//!
//! A [`Trace`] is the flat record list plus the dependency edges observed
//! at submission time, with exporters for the paper-style SVG timeline,
//! an ASCII stand-in, a plain JSON dump, and the Chrome trace-event
//! format ([`Trace::to_chrome_json`]) that `chrome://tracing` and
//! Perfetto load directly — tasks as complete events on one lane per
//! worker, dependency edges as flow arrows.

/// Timing record for one executed task.
#[derive(Clone, Copy, Debug)]
pub struct TaskRecord {
    /// Submission id of the task (matches [`Trace::edges`] endpoints).
    pub id: usize,
    /// Kernel name as given at submission (`LAED4`, `UpdateVect`, ...).
    pub name: &'static str,
    /// Worker thread that executed the task.
    pub worker: usize,
    /// Start time in microseconds since the runtime epoch.
    pub start_us: u64,
    /// End time in microseconds since the runtime epoch.
    pub end_us: u64,
}

/// A collected execution trace.
#[derive(Clone, Debug)]
pub struct Trace {
    pub records: Vec<TaskRecord>,
    /// Dependency edges `(predecessor id, successor id)` inferred at
    /// submission while tracing was enabled.
    pub edges: Vec<(usize, usize)>,
    pub num_workers: usize,
}

/// Per-kernel aggregate used in textual trace summaries.
#[derive(Clone, Debug)]
pub struct KernelStat {
    pub name: &'static str,
    pub count: usize,
    pub total_us: u64,
}

/// One worker's activity profile inside the traced span
/// ([`Trace::worker_timelines`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerTimeline {
    /// Worker id (lane index).
    pub worker: usize,
    /// Tasks this worker executed.
    pub tasks: usize,
    /// Time spent inside task bodies, in microseconds.
    pub busy_us: u64,
    /// Idle time inside the traced span (makespan − busy), in microseconds.
    pub idle_us: u64,
    /// Idle gaps: before the first task, between tasks, after the last.
    pub gaps: usize,
    /// Longest single idle gap, in microseconds.
    pub largest_gap_us: u64,
}

impl Trace {
    /// Wall-clock span covered by the trace, in microseconds.
    pub fn makespan_us(&self) -> u64 {
        let start = self.records.iter().map(|r| r.start_us).min().unwrap_or(0);
        let end = self.records.iter().map(|r| r.end_us).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Total busy time across all workers, in microseconds.
    pub fn busy_us(&self) -> u64 {
        self.records.iter().map(|r| r.end_us - r.start_us).sum()
    }

    /// Fraction of worker time spent idle inside the traced span, clamped
    /// to [0, 1]: microsecond rounding of `start_us`/`end_us` can push the
    /// summed busy time past `makespan × workers`, which would otherwise
    /// surface as a (nonsense) negative idle fraction.
    pub fn idle_fraction(&self) -> f64 {
        let span = self.makespan_us() * self.num_workers as u64;
        if span == 0 {
            return 0.0;
        }
        (1.0 - self.busy_us() as f64 / span as f64).clamp(0.0, 1.0)
    }

    /// Per-kernel totals, sorted by descending total time.
    pub fn kernel_stats(&self) -> Vec<KernelStat> {
        let mut map: std::collections::HashMap<&'static str, (usize, u64)> = Default::default();
        for r in &self.records {
            let e = map.entry(r.name).or_default();
            e.0 += 1;
            e.1 += r.end_us - r.start_us;
        }
        let mut out: Vec<KernelStat> = map
            .into_iter()
            .map(|(name, (count, total_us))| KernelStat {
                name,
                count,
                total_us,
            })
            .collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        out
    }

    /// Per-worker busy/idle profile over the traced span: task count, busy
    /// and idle totals, and the idle gaps (leading, between-task, and
    /// trailing) with the largest one called out — the "where does the 35%
    /// idle time live" question Figures 3–4 answer visually.
    pub fn worker_timelines(&self) -> Vec<WorkerTimeline> {
        let t0 = self.records.iter().map(|r| r.start_us).min().unwrap_or(0);
        let t1 = self.records.iter().map(|r| r.end_us).max().unwrap_or(0);
        let mut lanes: Vec<Vec<&TaskRecord>> = vec![Vec::new(); self.num_workers];
        for r in &self.records {
            if r.worker < lanes.len() {
                lanes[r.worker].push(r);
            }
        }
        lanes
            .iter_mut()
            .enumerate()
            .map(|(worker, lane)| {
                lane.sort_by_key(|r| (r.start_us, r.end_us));
                let busy_us: u64 = lane.iter().map(|r| r.end_us - r.start_us).sum();
                let mut gaps = 0usize;
                let mut largest_gap_us = 0u64;
                // `cursor` walks the lane; each jump forward is an idle gap.
                let mut cursor = t0;
                for r in lane.iter() {
                    if r.start_us > cursor {
                        gaps += 1;
                        largest_gap_us = largest_gap_us.max(r.start_us - cursor);
                    }
                    cursor = cursor.max(r.end_us);
                }
                if t1 > cursor {
                    gaps += 1;
                    largest_gap_us = largest_gap_us.max(t1 - cursor);
                }
                WorkerTimeline {
                    worker,
                    tasks: lane.len(),
                    busy_us,
                    idle_us: (t1 - t0).saturating_sub(busy_us),
                    gaps,
                    largest_gap_us,
                }
            })
            .collect()
    }

    /// Serialize the full trace to JSON (one object; `records` and `edges`
    /// arrays inside), pretty-printed with two-space indentation. Task
    /// names are static identifiers, so no string escaping is required.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            write!(
                out,
                "\n    {{\n      \"id\": {},\n      \"name\": \"{}\",\n      \"worker\": {},\n      \
                 \"start_us\": {},\n      \"end_us\": {}\n    }}{sep}",
                r.id, r.name, r.worker, r.start_us, r.end_us
            )
            .unwrap();
        }
        if self.records.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"edges\": [");
        for (i, (from, to)) in self.edges.iter().enumerate() {
            let sep = if i + 1 < self.edges.len() { "," } else { "" };
            write!(out, "[{from}, {to}]{sep}").unwrap();
        }
        out.push_str("],\n");
        write!(out, "  \"num_workers\": {}\n}}", self.num_workers).unwrap();
        out
    }

    /// Export in the Chrome trace-event format (the `{"traceEvents": [...]}`
    /// object form) consumed by `chrome://tracing` and Perfetto: one
    /// metadata event naming each worker lane, one "X" (complete) event per
    /// task with its submission id in `args`, and an "s"/"f" flow-event
    /// pair per dependency edge whose two endpoints both executed, drawn
    /// from the predecessor's end to the successor's start. Timestamps are
    /// the trace's native microseconds.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with_metrics(None)
    }

    /// [`to_chrome_json`](Self::to_chrome_json) plus, when scheduler
    /// metrics are supplied, one `dcst_sched_counters` metadata event per
    /// worker lane carrying that worker's counters (tasks executed, steal
    /// attempts/hits/retries, priority-lane hits, parks, deque growths)
    /// and one pool-level `dcst_sched_pool` event with the peak ready-queue
    /// depth, so a trace viewed in Perfetto carries the contention story
    /// alongside the timeline.
    pub fn to_chrome_json_with_metrics(&self, metrics: Option<&crate::RuntimeMetrics>) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, event: std::fmt::Arguments<'_>| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n  ");
            out.write_fmt(event).unwrap();
        };
        for worker in 0..self.num_workers {
            push(
                &mut out,
                format_args!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{worker},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"worker-{worker}\"}}}}"
                ),
            );
        }
        if let Some(rm) = metrics {
            for (worker, w) in rm.workers.iter().enumerate() {
                push(
                    &mut out,
                    format_args!(
                        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{worker},\
                         \"name\":\"dcst_sched_counters\",\"args\":{{\
                         \"executed\":{},\"steals_attempted\":{},\
                         \"steals_succeeded\":{},\"steal_retries\":{},\
                         \"priority_hits\":{},\"parks\":{},\"deque_grows\":{}}}}}",
                        w.executed,
                        w.steals_attempted,
                        w.steals_succeeded,
                        w.steal_retries,
                        w.priority_hits,
                        w.parks,
                        w.deque_grows
                    ),
                );
            }
            push(
                &mut out,
                format_args!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"dcst_sched_pool\",\
                     \"args\":{{\"max_queue_depth\":{}}}}}",
                    rm.max_queue_depth
                ),
            );
        }
        for r in &self.records {
            push(
                &mut out,
                format_args!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"cat\":\"task\",\"args\":{{\"id\":{}}}}}",
                    r.worker,
                    r.start_us,
                    r.end_us - r.start_us,
                    r.name,
                    r.id
                ),
            );
        }
        let by_id: std::collections::HashMap<usize, &TaskRecord> =
            self.records.iter().map(|r| (r.id, r)).collect();
        for (i, (from, to)) in self.edges.iter().enumerate() {
            let (Some(src), Some(dst)) = (by_id.get(from), by_id.get(to)) else {
                continue;
            };
            push(
                &mut out,
                format_args!(
                    "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{i},\
                     \"name\":\"dep\",\"cat\":\"dep\"}}",
                    src.worker, src.end_us
                ),
            );
            // bp:"e" binds the arrow head to the enclosing slice rather
            // than the next event on the lane.
            push(
                &mut out,
                format_args!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{i},\
                     \"name\":\"dep\",\"cat\":\"dep\"}}",
                    dst.worker,
                    dst.start_us.max(src.end_us)
                ),
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Render the trace as an SVG timeline — one lane per worker, one
    /// colored rectangle per task, kernel colors assigned in order of
    /// first appearance (the paper's Figures 3 and 4 are exactly this
    /// visualization). Returns a standalone SVG document.
    pub fn to_svg(&self, width: u32, lane_height: u32) -> String {
        use std::fmt::Write;
        const PALETTE: [&str; 12] = [
            "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
            "#9c755f", "#bab0ac", "#1b9e77", "#d95f02",
        ];
        let t0 = self.records.iter().map(|r| r.start_us).min().unwrap_or(0);
        let t1 = self
            .records
            .iter()
            .map(|r| r.end_us)
            .max()
            .unwrap_or(1)
            .max(t0 + 1);
        let scale = width as f64 / (t1 - t0) as f64;
        let legend_h = 18;
        let height = self.num_workers as u32 * (lane_height + 4) + legend_h + 8;
        let mut colors: Vec<(&'static str, &'static str)> = Vec::new();
        let mut svg = String::new();
        write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             font-family=\"monospace\" font-size=\"10\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
        )
        .unwrap();
        for r in &self.records {
            let color = match colors.iter().find(|(n, _)| *n == r.name) {
                Some((_, c)) => *c,
                None => {
                    let c = PALETTE[colors.len() % PALETTE.len()];
                    colors.push((r.name, c));
                    c
                }
            };
            let x = (r.start_us - t0) as f64 * scale;
            let w = (((r.end_us - r.start_us) as f64) * scale).max(0.5);
            let y = legend_h as f64 + r.worker as f64 * (lane_height + 4) as f64;
            writeln!(
                svg,
                "<rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{lane_height}\" \
                 fill=\"{color}\"><title>{} [w{}] {}us</title></rect>",
                r.name,
                r.worker,
                r.end_us - r.start_us
            )
            .unwrap();
        }
        // Legend.
        let mut x = 2.0f64;
        for (name, color) in &colors {
            writeln!(
                svg,
                "<rect x=\"{x:.1}\" y=\"2\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
                 <text x=\"{:.1}\" y=\"11\">{name}</text>",
                x + 13.0
            )
            .unwrap();
            x += 13.0 + 7.0 * (name.len() as f64 + 2.0);
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Render an ASCII timeline: one row per worker, time binned into
    /// `width` columns, each cell showing the initial of the kernel that
    /// was running (or '.' for idle). A compact stand-in for the paper's
    /// colored trace figures.
    pub fn ascii_timeline(&self, width: usize) -> String {
        if self.records.is_empty() {
            return String::new();
        }
        let t0 = self.records.iter().map(|r| r.start_us).min().unwrap();
        let t1 = self
            .records
            .iter()
            .map(|r| r.end_us)
            .max()
            .unwrap()
            .max(t0 + 1);
        let scale = width as f64 / (t1 - t0) as f64;
        let mut rows = vec![vec!['.'; width]; self.num_workers];
        for r in &self.records {
            let c = r.name.chars().next().unwrap_or('?');
            let a = ((r.start_us - t0) as f64 * scale) as usize;
            let b = (((r.end_us - t0) as f64 * scale) as usize).min(width - 1);
            if r.worker < rows.len() {
                for cell in &mut rows[r.worker][a..=b.max(a)] {
                    *cell = c;
                }
            }
        }
        rows.iter()
            .enumerate()
            .map(|(w, row)| format!("w{w:02} |{}|", row.iter().collect::<String>()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv;

    fn sample() -> Trace {
        Trace {
            records: vec![
                TaskRecord {
                    id: 0,
                    name: "LAED4",
                    worker: 0,
                    start_us: 0,
                    end_us: 10,
                },
                TaskRecord {
                    id: 1,
                    name: "LAED4",
                    worker: 1,
                    start_us: 0,
                    end_us: 10,
                },
                TaskRecord {
                    id: 2,
                    name: "UpdateVect",
                    worker: 0,
                    start_us: 10,
                    end_us: 35,
                },
            ],
            edges: vec![(0, 2), (1, 2)],
            num_workers: 2,
        }
    }

    #[test]
    fn makespan_and_busy() {
        let t = sample();
        assert_eq!(t.makespan_us(), 35);
        assert_eq!(t.busy_us(), 45);
        let idle = t.idle_fraction();
        assert!((idle - (1.0 - 45.0 / 70.0)).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_clamps_rounding_overshoot() {
        // Microsecond rounding can make per-record durations sum past the
        // makespan (start rounded down, end rounded up): busy 12us over a
        // 10us span on one worker used to yield idle_fraction == -0.2.
        let t = Trace {
            records: vec![
                TaskRecord {
                    id: 0,
                    name: "A",
                    worker: 0,
                    start_us: 0,
                    end_us: 6,
                },
                TaskRecord {
                    id: 1,
                    name: "B",
                    worker: 0,
                    start_us: 4,
                    end_us: 10,
                },
            ],
            edges: vec![],
            num_workers: 1,
        };
        assert!(t.busy_us() > t.makespan_us() * t.num_workers as u64);
        assert_eq!(t.idle_fraction(), 0.0);
        let full = sample().idle_fraction();
        assert!((0.0..=1.0).contains(&full));
    }

    #[test]
    fn kernel_stats_sorted_by_time() {
        let t = sample();
        let stats = t.kernel_stats();
        assert_eq!(stats[0].name, "UpdateVect");
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[1].name, "LAED4");
        assert_eq!(stats[1].count, 2);
        assert_eq!(stats[1].total_us, 20);
        assert_eq!(stats[0].total_us, 25);
    }

    #[test]
    fn json_roundtrips_names() {
        let t = sample();
        let json = t.to_json();
        assert!(json.contains("UpdateVect"));
        assert!(json.contains("\"num_workers\": 2"));
        let doc = jsonv::parse(&json).expect("to_json output must parse");
        assert_eq!(doc.get("records").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("edges").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn chrome_export_structure() {
        let t = sample();
        let doc = jsonv::parse(&t.to_chrome_json()).expect("chrome export must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some(p))
                .count()
        };
        assert_eq!(ph("M"), 2, "one thread_name metadata event per worker");
        assert_eq!(ph("X"), 3, "one complete event per record");
        assert_eq!(ph("s"), 2, "one flow start per edge");
        assert_eq!(ph("f"), 2, "one flow finish per edge");
        // The UpdateVect slice carries its submission id and lane.
        let x = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("UpdateVect"))
            .unwrap();
        assert_eq!(x.get("tid").unwrap().as_num(), Some(0.0));
        assert_eq!(x.get("dur").unwrap().as_num(), Some(25.0));
        assert_eq!(
            x.get("args").unwrap().get("id").unwrap().as_num(),
            Some(2.0)
        );
    }

    #[test]
    fn chrome_export_with_metrics_adds_counter_metadata() {
        let t = sample();
        let rm = crate::RuntimeMetrics {
            workers: vec![
                crate::WorkerMetrics {
                    executed: 5,
                    steals_attempted: 3,
                    steals_succeeded: 2,
                    steal_retries: 1,
                    priority_hits: 4,
                    parks: 6,
                    deque_grows: 1,
                },
                crate::WorkerMetrics::default(),
            ],
            max_queue_depth: 9,
        };
        let doc = jsonv::parse(&t.to_chrome_json_with_metrics(Some(&rm)))
            .expect("chrome export with metrics must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("dcst_sched_counters"))
            .collect();
        assert_eq!(counters.len(), 2, "one counter event per worker");
        let args = counters[0].get("args").unwrap();
        assert_eq!(args.get("executed").unwrap().as_num(), Some(5.0));
        assert_eq!(args.get("steal_retries").unwrap().as_num(), Some(1.0));
        assert_eq!(args.get("deque_grows").unwrap().as_num(), Some(1.0));
        let pool = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("dcst_sched_pool"))
            .expect("pool-level metadata event");
        assert_eq!(
            pool.get("args")
                .unwrap()
                .get("max_queue_depth")
                .unwrap()
                .as_num(),
            Some(9.0)
        );
        // The plain export stays metrics-free so viewers and the mirror
        // tests above see the same event set as before.
        let plain = jsonv::parse(&t.to_chrome_json()).unwrap();
        assert!(!plain
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("dcst_sched_counters")));
    }

    #[test]
    fn chrome_export_skips_edges_without_records() {
        let mut t = sample();
        t.edges.push((0, 99)); // successor never executed (e.g. cancelled)
        let doc = jsonv::parse(&t.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let flows = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(|v| v.as_str()), Some("s" | "f")))
            .count();
        assert_eq!(flows, 4, "dangling edge must not emit flow events");
    }

    #[test]
    fn worker_timelines_account_gaps() {
        let t = sample();
        let lanes = t.worker_timelines();
        assert_eq!(lanes.len(), 2);
        // Worker 0: LAED4 0-10, UpdateVect 10-35 — fully busy, no gaps.
        assert_eq!(lanes[0].tasks, 2);
        assert_eq!(lanes[0].busy_us, 35);
        assert_eq!(lanes[0].idle_us, 0);
        assert_eq!(lanes[0].gaps, 0);
        // Worker 1: LAED4 0-10, then idle until 35.
        assert_eq!(lanes[1].tasks, 1);
        assert_eq!(lanes[1].busy_us, 10);
        assert_eq!(lanes[1].idle_us, 25);
        assert_eq!(lanes[1].gaps, 1);
        assert_eq!(lanes[1].largest_gap_us, 25);
    }

    #[test]
    fn ascii_timeline_shapes() {
        let t = sample();
        let art = t.ascii_timeline(30);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('L'));
        assert!(lines[0].contains('U'));
        assert!(lines[1].contains('L'));
    }

    #[test]
    fn svg_contains_lanes_and_legend() {
        let t = sample();
        let svg = t.to_svg(400, 14);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // One rect per record plus background plus 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 3 + 2);
        assert!(svg.contains(">LAED4</text>"));
        assert!(svg.contains(">UpdateVect</text>"));
    }

    #[test]
    fn svg_of_empty_trace_is_valid() {
        let t = Trace {
            records: vec![],
            edges: vec![],
            num_workers: 2,
        };
        let svg = t.to_svg(100, 10);
        assert!(svg.starts_with("<svg") && svg.contains("</svg>"));
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace {
            records: vec![],
            edges: vec![],
            num_workers: 4,
        };
        assert_eq!(t.makespan_us(), 0);
        assert_eq!(t.idle_fraction(), 0.0);
        assert!(t.ascii_timeline(10).is_empty());
        assert!(jsonv::parse(&t.to_json()).is_ok());
        assert!(jsonv::parse(&t.to_chrome_json()).is_ok());
        assert_eq!(t.worker_timelines().len(), 4);
    }
}
