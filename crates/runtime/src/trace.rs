//! Execution traces: one record per executed task (Figures 3 and 4).

/// Timing record for one executed task.
#[derive(Clone, Copy, Debug)]
pub struct TaskRecord {
    /// Kernel name as given at submission (`LAED4`, `UpdateVect`, ...).
    pub name: &'static str,
    /// Worker thread that executed the task.
    pub worker: usize,
    /// Start time in microseconds since the runtime epoch.
    pub start_us: u64,
    /// End time in microseconds since the runtime epoch.
    pub end_us: u64,
}

/// A collected execution trace.
#[derive(Clone, Debug)]
pub struct Trace {
    pub records: Vec<TaskRecord>,
    pub num_workers: usize,
}

/// Per-kernel aggregate used in textual trace summaries.
#[derive(Clone, Debug)]
pub struct KernelStat {
    pub name: &'static str,
    pub count: usize,
    pub total_us: u64,
}

impl Trace {
    /// Wall-clock span covered by the trace, in microseconds.
    pub fn makespan_us(&self) -> u64 {
        let start = self.records.iter().map(|r| r.start_us).min().unwrap_or(0);
        let end = self.records.iter().map(|r| r.end_us).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Total busy time across all workers, in microseconds.
    pub fn busy_us(&self) -> u64 {
        self.records.iter().map(|r| r.end_us - r.start_us).sum()
    }

    /// Fraction of worker time spent idle inside the traced span, in [0, 1].
    pub fn idle_fraction(&self) -> f64 {
        let span = self.makespan_us() * self.num_workers as u64;
        if span == 0 {
            return 0.0;
        }
        1.0 - self.busy_us() as f64 / span as f64
    }

    /// Per-kernel totals, sorted by descending total time.
    pub fn kernel_stats(&self) -> Vec<KernelStat> {
        let mut map: std::collections::HashMap<&'static str, (usize, u64)> = Default::default();
        for r in &self.records {
            let e = map.entry(r.name).or_default();
            e.0 += 1;
            e.1 += r.end_us - r.start_us;
        }
        let mut out: Vec<KernelStat> = map
            .into_iter()
            .map(|(name, (count, total_us))| KernelStat {
                name,
                count,
                total_us,
            })
            .collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        out
    }

    /// Serialize the full trace to JSON (one object; `records` array
    /// inside), pretty-printed with two-space indentation. Task names are
    /// static identifiers, so no string escaping is required.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            write!(
                out,
                "\n    {{\n      \"name\": \"{}\",\n      \"worker\": {},\n      \
                 \"start_us\": {},\n      \"end_us\": {}\n    }}{sep}",
                r.name, r.worker, r.start_us, r.end_us
            )
            .unwrap();
        }
        if self.records.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        write!(out, "  \"num_workers\": {}\n}}", self.num_workers).unwrap();
        out
    }

    /// Render the trace as an SVG timeline — one lane per worker, one
    /// colored rectangle per task, kernel colors assigned in order of
    /// first appearance (the paper's Figures 3 and 4 are exactly this
    /// visualization). Returns a standalone SVG document.
    pub fn to_svg(&self, width: u32, lane_height: u32) -> String {
        use std::fmt::Write;
        const PALETTE: [&str; 12] = [
            "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
            "#9c755f", "#bab0ac", "#1b9e77", "#d95f02",
        ];
        let t0 = self.records.iter().map(|r| r.start_us).min().unwrap_or(0);
        let t1 = self
            .records
            .iter()
            .map(|r| r.end_us)
            .max()
            .unwrap_or(1)
            .max(t0 + 1);
        let scale = width as f64 / (t1 - t0) as f64;
        let legend_h = 18;
        let height = self.num_workers as u32 * (lane_height + 4) + legend_h + 8;
        let mut colors: Vec<(&'static str, &'static str)> = Vec::new();
        let mut svg = String::new();
        write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             font-family=\"monospace\" font-size=\"10\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
        )
        .unwrap();
        for r in &self.records {
            let color = match colors.iter().find(|(n, _)| *n == r.name) {
                Some((_, c)) => *c,
                None => {
                    let c = PALETTE[colors.len() % PALETTE.len()];
                    colors.push((r.name, c));
                    c
                }
            };
            let x = (r.start_us - t0) as f64 * scale;
            let w = (((r.end_us - r.start_us) as f64) * scale).max(0.5);
            let y = legend_h as f64 + r.worker as f64 * (lane_height + 4) as f64;
            writeln!(
                svg,
                "<rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{lane_height}\" \
                 fill=\"{color}\"><title>{} [w{}] {}us</title></rect>",
                r.name,
                r.worker,
                r.end_us - r.start_us
            )
            .unwrap();
        }
        // Legend.
        let mut x = 2.0f64;
        for (name, color) in &colors {
            writeln!(
                svg,
                "<rect x=\"{x:.1}\" y=\"2\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
                 <text x=\"{:.1}\" y=\"11\">{name}</text>",
                x + 13.0
            )
            .unwrap();
            x += 13.0 + 7.0 * (name.len() as f64 + 2.0);
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Render an ASCII timeline: one row per worker, time binned into
    /// `width` columns, each cell showing the initial of the kernel that
    /// was running (or '.' for idle). A compact stand-in for the paper's
    /// colored trace figures.
    pub fn ascii_timeline(&self, width: usize) -> String {
        if self.records.is_empty() {
            return String::new();
        }
        let t0 = self.records.iter().map(|r| r.start_us).min().unwrap();
        let t1 = self
            .records
            .iter()
            .map(|r| r.end_us)
            .max()
            .unwrap()
            .max(t0 + 1);
        let scale = width as f64 / (t1 - t0) as f64;
        let mut rows = vec![vec!['.'; width]; self.num_workers];
        for r in &self.records {
            let c = r.name.chars().next().unwrap_or('?');
            let a = ((r.start_us - t0) as f64 * scale) as usize;
            let b = (((r.end_us - t0) as f64 * scale) as usize).min(width - 1);
            if r.worker < rows.len() {
                for cell in &mut rows[r.worker][a..=b.max(a)] {
                    *cell = c;
                }
            }
        }
        rows.iter()
            .enumerate()
            .map(|(w, row)| format!("w{w:02} |{}|", row.iter().collect::<String>()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            records: vec![
                TaskRecord {
                    name: "LAED4",
                    worker: 0,
                    start_us: 0,
                    end_us: 10,
                },
                TaskRecord {
                    name: "LAED4",
                    worker: 1,
                    start_us: 0,
                    end_us: 10,
                },
                TaskRecord {
                    name: "UpdateVect",
                    worker: 0,
                    start_us: 10,
                    end_us: 35,
                },
            ],
            num_workers: 2,
        }
    }

    #[test]
    fn makespan_and_busy() {
        let t = sample();
        assert_eq!(t.makespan_us(), 35);
        assert_eq!(t.busy_us(), 45);
        let idle = t.idle_fraction();
        assert!((idle - (1.0 - 45.0 / 70.0)).abs() < 1e-12);
    }

    #[test]
    fn kernel_stats_sorted_by_time() {
        let t = sample();
        let stats = t.kernel_stats();
        assert_eq!(stats[0].name, "UpdateVect");
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[1].name, "LAED4");
        assert_eq!(stats[1].count, 2);
        assert_eq!(stats[1].total_us, 20);
        assert_eq!(stats[0].total_us, 25);
    }

    #[test]
    fn json_roundtrips_names() {
        let t = sample();
        let json = t.to_json();
        assert!(json.contains("UpdateVect"));
        assert!(json.contains("\"num_workers\": 2"));
    }

    #[test]
    fn ascii_timeline_shapes() {
        let t = sample();
        let art = t.ascii_timeline(30);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('L'));
        assert!(lines[0].contains('U'));
        assert!(lines[1].contains('L'));
    }

    #[test]
    fn svg_contains_lanes_and_legend() {
        let t = sample();
        let svg = t.to_svg(400, 14);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // One rect per record plus background plus 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 3 + 2);
        assert!(svg.contains(">LAED4</text>"));
        assert!(svg.contains(">UpdateVect</text>"));
    }

    #[test]
    fn svg_of_empty_trace_is_valid() {
        let t = Trace {
            records: vec![],
            num_workers: 2,
        };
        let svg = t.to_svg(100, 10);
        assert!(svg.starts_with("<svg") && svg.contains("</svg>"));
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace {
            records: vec![],
            num_workers: 4,
        };
        assert_eq!(t.makespan_us(), 0);
        assert_eq!(t.idle_fraction(), 0.0);
        assert!(t.ascii_timeline(10).is_empty());
    }
}
