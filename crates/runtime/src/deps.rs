//! Data keys, access modes, and the per-key dependency state machine.

use std::collections::HashMap;

/// Identifies a logical data region tasks declare accesses against.
///
/// The runtime never touches the data itself — a key is just a name. The
/// eigensolver derives keys from `(object id, panel index)` pairs so a
/// matrix panel, a whole matrix, or a scalar flag can each be a region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DataKey(pub u64);

impl DataKey {
    /// Compose a key from an object id and an index within the object
    /// (e.g. a panel number). 2^24 indices per object; 2^40 objects.
    ///
    /// Out-of-range components would silently alias another region's key
    /// and corrupt the inferred DAG, so overflow is a hard error in every
    /// build profile — a miscomputed dependency graph is a data race, not
    /// a performance bug.
    pub const fn new(object: u64, index: u64) -> Self {
        assert!(
            index <= 0xff_ffff,
            "DataKey index exceeds 24 bits and would collide with another panel"
        );
        assert!(
            object <= 0xff_ffff_ffff,
            "DataKey object id exceeds 40 bits and would collide with another object"
        );
        DataKey((object << 24) | (index & 0xff_ffff))
    }
}

/// How a task accesses a data region (QUARK qualifiers).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessMode {
    /// `INPUT`: read-only. Concurrent reads commute.
    Read,
    /// `OUTPUT`: write; the previous contents are not read.
    Write,
    /// `INOUT`: read-modify-write.
    ReadWrite,
    /// The paper's `GATHERV`: a write that commutes with other GatherV
    /// writes to the same key (the programmer guarantees disjointness),
    /// but orders against every non-GatherV access.
    GatherV,
}

/// One declared access of a task.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    pub key: DataKey,
    pub mode: AccessMode,
}

/// Per-key history used to infer dependencies at submission time.
#[derive(Default)]
struct KeyState {
    /// The current "writer epoch": either one exclusive writer or an open
    /// group of commuting GatherV writers.
    writers: Vec<usize>,
    /// True when `writers` is an open GatherV group new GatherV accesses
    /// may join without ordering against its members.
    gather_open: bool,
    /// Readers since the last writer epoch ended.
    readers: Vec<usize>,
    /// Dependencies every member of the open GatherV group must carry
    /// (the pre-group writers and readers).
    group_preds: Vec<usize>,
}

/// Sequential-consistency dependency tracker. Lives behind the runtime's
/// submission lock; task ids are the submission order.
#[derive(Default)]
pub(crate) struct DepTracker {
    keys: HashMap<DataKey, KeyState>,
}

impl DepTracker {
    /// Record task `id`'s accesses and return the (deduplicated) set of
    /// earlier task ids it must wait for.
    pub fn submit(&mut self, id: usize, accesses: &[Access]) -> Vec<usize> {
        let mut deps: Vec<usize> = Vec::new();
        for acc in accesses {
            let st = self.keys.entry(acc.key).or_default();
            match acc.mode {
                AccessMode::Read => {
                    deps.extend_from_slice(&st.writers);
                    st.gather_open = false;
                    st.readers.push(id);
                }
                AccessMode::Write | AccessMode::ReadWrite => {
                    deps.extend_from_slice(&st.writers);
                    deps.extend_from_slice(&st.readers);
                    st.writers.clear();
                    st.writers.push(id);
                    st.gather_open = false;
                    st.readers.clear();
                    st.group_preds.clear();
                }
                AccessMode::GatherV => {
                    if st.gather_open {
                        // Join the open group: commute with its members,
                        // inherit the group's predecessors.
                        deps.extend_from_slice(&st.group_preds);
                    } else {
                        // Open a new group ordered after the current epoch.
                        let mut preds = Vec::new();
                        preds.extend_from_slice(&st.writers);
                        preds.extend_from_slice(&st.readers);
                        deps.extend_from_slice(&preds);
                        st.group_preds = preds;
                        st.writers.clear();
                        st.readers.clear();
                        st.gather_open = true;
                    }
                    st.writers.push(id);
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Retire keys whose entire access history has completed: each key in
    /// `keys` is dropped unless some task id it references is still live
    /// (per `is_live`). Dropping a fully-completed key is semantically
    /// neutral — a future task on it would have inferred only dependencies
    /// on finished tasks, which release immediately — but without this a
    /// long-lived runtime's key map grows with every submission ever made.
    pub fn forget_keys<F>(&mut self, keys: &std::collections::HashSet<DataKey>, is_live: F)
    where
        F: Fn(usize) -> bool,
    {
        for k in keys {
            if let Some(st) = self.keys.get(k) {
                let live = st
                    .writers
                    .iter()
                    .chain(st.readers.iter())
                    .chain(st.group_preds.iter())
                    .any(|&id| is_live(id));
                if !live {
                    self.keys.remove(k);
                }
            }
        }
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(key: u64, mode: AccessMode) -> Access {
        Access {
            key: DataKey(key),
            mode,
        }
    }

    #[test]
    fn read_after_write_depends_on_writer() {
        let mut t = DepTracker::default();
        assert!(t.submit(0, &[acc(1, AccessMode::Write)]).is_empty());
        assert_eq!(t.submit(1, &[acc(1, AccessMode::Read)]), vec![0]);
    }

    #[test]
    fn reads_commute() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write)]);
        assert_eq!(t.submit(1, &[acc(1, AccessMode::Read)]), vec![0]);
        assert_eq!(t.submit(2, &[acc(1, AccessMode::Read)]), vec![0]);
    }

    #[test]
    fn write_after_reads_depends_on_all_readers() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write)]);
        t.submit(1, &[acc(1, AccessMode::Read)]);
        t.submit(2, &[acc(1, AccessMode::Read)]);
        assert_eq!(t.submit(3, &[acc(1, AccessMode::ReadWrite)]), vec![0, 1, 2]);
    }

    #[test]
    fn consecutive_writers_chain() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write)]);
        assert_eq!(t.submit(1, &[acc(1, AccessMode::Write)]), vec![0]);
        assert_eq!(t.submit(2, &[acc(1, AccessMode::ReadWrite)]), vec![1]);
    }

    #[test]
    fn gatherv_members_commute_but_join_waits_for_all() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write)]);
        // Three GatherV writers: each depends only on task 0.
        assert_eq!(t.submit(1, &[acc(1, AccessMode::GatherV)]), vec![0]);
        assert_eq!(t.submit(2, &[acc(1, AccessMode::GatherV)]), vec![0]);
        assert_eq!(t.submit(3, &[acc(1, AccessMode::GatherV)]), vec![0]);
        // The join (INOUT) waits for the whole group.
        assert_eq!(t.submit(4, &[acc(1, AccessMode::ReadWrite)]), vec![1, 2, 3]);
    }

    #[test]
    fn gatherv_after_readers_orders_against_them() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write)]);
        t.submit(1, &[acc(1, AccessMode::Read)]);
        assert_eq!(t.submit(2, &[acc(1, AccessMode::GatherV)]), vec![0, 1]);
        assert_eq!(t.submit(3, &[acc(1, AccessMode::GatherV)]), vec![0, 1]);
    }

    #[test]
    fn read_closes_gatherv_group() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::GatherV)]);
        t.submit(1, &[acc(1, AccessMode::GatherV)]);
        assert_eq!(t.submit(2, &[acc(1, AccessMode::Read)]), vec![0, 1]);
        // A GatherV after the read starts a NEW group ordered after the read
        // (and after the previous group, which is still the writer epoch).
        assert_eq!(t.submit(3, &[acc(1, AccessMode::GatherV)]), vec![0, 1, 2]);
    }

    #[test]
    fn independent_keys_are_independent() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write)]);
        assert!(t.submit(1, &[acc(2, AccessMode::Write)]).is_empty());
    }

    #[test]
    fn multi_access_task_dedups_deps() {
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write), acc(2, AccessMode::Write)]);
        let deps = t.submit(
            1,
            &[acc(1, AccessMode::Read), acc(2, AccessMode::ReadWrite)],
        );
        assert_eq!(deps, vec![0]);
    }

    #[test]
    fn datakey_compose() {
        let a = DataKey::new(3, 7);
        let b = DataKey::new(3, 8);
        let c = DataKey::new(4, 7);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, DataKey::new(3, 7));
        // The full 24-bit index range stays collision-free.
        assert_ne!(DataKey::new(3, 0xff_ffff), DataKey::new(4, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds 24 bits")]
    fn datakey_index_overflow_panics() {
        let _ = DataKey::new(3, 1 << 24);
    }

    #[test]
    #[should_panic(expected = "exceeds 40 bits")]
    fn datakey_object_overflow_panics() {
        let _ = DataKey::new(1 << 40, 0);
    }

    #[test]
    fn gatherv_chains_reopen_after_read() {
        // W(0) → R(1) → {G(2), G(3)} → R(4) → {G(5), G(6)} → RW(7):
        // each GatherV group commutes internally, orders against the
        // preceding epoch (writers + readers), and a Read between groups
        // splits them into separately-ordered epochs.
        let mut t = DepTracker::default();
        t.submit(0, &[acc(1, AccessMode::Write)]);
        assert_eq!(t.submit(1, &[acc(1, AccessMode::Read)]), vec![0]);
        assert_eq!(t.submit(2, &[acc(1, AccessMode::GatherV)]), vec![0, 1]);
        assert_eq!(t.submit(3, &[acc(1, AccessMode::GatherV)]), vec![0, 1]);
        assert_eq!(t.submit(4, &[acc(1, AccessMode::Read)]), vec![2, 3]);
        // The second group orders against the first group AND the read.
        assert_eq!(t.submit(5, &[acc(1, AccessMode::GatherV)]), vec![2, 3, 4]);
        assert_eq!(t.submit(6, &[acc(1, AccessMode::GatherV)]), vec![2, 3, 4]);
        // The join waits only for the second (current) group.
        assert_eq!(t.submit(7, &[acc(1, AccessMode::ReadWrite)]), vec![5, 6]);
    }

    #[test]
    fn read_between_gatherv_writers_splits_groups() {
        // A Read landing in the middle of what the submitter thinks of as
        // one scatter phase MUST split it: later GatherV writers order
        // after both the earlier writers and the read.
        let mut t = DepTracker::default();
        assert!(t.submit(0, &[acc(1, AccessMode::GatherV)]).is_empty());
        assert_eq!(t.submit(1, &[acc(1, AccessMode::Read)]), vec![0]);
        assert_eq!(t.submit(2, &[acc(1, AccessMode::GatherV)]), vec![0, 1]);
        assert_eq!(t.submit(3, &[acc(1, AccessMode::GatherV)]), vec![0, 1]);
        // A second read sees only the post-split group as the writer epoch.
        assert_eq!(t.submit(4, &[acc(1, AccessMode::Read)]), vec![2, 3]);
    }
}
