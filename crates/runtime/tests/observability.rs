//! Observability invariants under random task DAGs (proptest): trace
//! records, timeline analysis, the Chrome trace-event export, and the
//! scheduler counters must stay mutually consistent no matter how the
//! work-stealing pool interleaves execution.

use dcst_runtime::{jsonv, DataKey, Runtime};
use proptest::prelude::*;

/// One submitted task: which key it touches, how, and whether it goes to
/// the priority lane.
#[derive(Clone, Debug)]
struct Spec {
    key: usize,
    mode: u32, // 0 = read, 1 = write, 2 = gatherv
    hi: bool,
    spin: u32,
}

fn arb_dag() -> impl Strategy<Value = (usize, Vec<Spec>)> {
    let spec = (0usize..5, 0u32..3, 0u32..2, 0u32..200).prop_map(|(key, mode, hi, spin)| Spec {
        key,
        mode,
        hi: hi == 1,
        spin,
    });
    (1usize..5, proptest::collection::vec(spec, 1..40))
}

/// Run a DAG with tracing on; return the trace and the counter snapshot.
fn run(workers: usize, specs: &[Spec]) -> (dcst_runtime::Trace, dcst_runtime::RuntimeMetrics) {
    let rt = Runtime::new(workers);
    rt.enable_tracing();
    for s in specs {
        let key = DataKey::new(7, s.key as u64);
        let mut b = rt.task("t");
        b = match s.mode {
            0 => b.read(key),
            1 => b.write(key),
            _ => b.gatherv(key),
        };
        if s.hi {
            b = b.high_priority();
        }
        let spin = s.spin;
        b.spawn(move || {
            // A little real work so records have nonzero extent sometimes.
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
        });
    }
    rt.wait().unwrap();
    (rt.take_trace(), rt.runtime_metrics())
}

fn count_ph(events: &[jsonv::Json], ph: &str) -> usize {
    events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Per-worker lanes are serial: records on one worker never overlap,
    /// total busy time fits in `makespan × workers`, and the idle fraction
    /// is a fraction.
    #[test]
    fn timelines_are_serial_and_bounded((workers, specs) in arb_dag()) {
        let (trace, _) = run(workers, &specs);
        prop_assert_eq!(trace.records.len(), specs.len());
        prop_assert_eq!(trace.num_workers, workers);

        for w in 0..workers {
            let mut lane: Vec<_> = trace
                .records
                .iter()
                .filter(|r| r.worker == w)
                .collect();
            lane.sort_by_key(|r| (r.start_us, r.end_us));
            for pair in lane.windows(2) {
                prop_assert!(
                    pair[0].end_us <= pair[1].start_us,
                    "worker {w}: [{},{}] overlaps [{},{}]",
                    pair[0].start_us, pair[0].end_us, pair[1].start_us, pair[1].end_us
                );
            }
        }

        prop_assert!(trace.busy_us() <= trace.makespan_us() * workers as u64);
        let idle = trace.idle_fraction();
        prop_assert!((0.0..=1.0).contains(&idle), "idle fraction {idle}");

        let lanes = trace.worker_timelines();
        prop_assert_eq!(lanes.len(), workers);
        let tasks: usize = lanes.iter().map(|l| l.tasks).sum();
        prop_assert_eq!(tasks, trace.records.len());
        for l in &lanes {
            prop_assert!(l.busy_us <= trace.makespan_us());
            prop_assert!(l.largest_gap_us <= l.idle_us);
        }
    }

    /// The Chrome export round-trips as valid JSON whose event counts
    /// mirror the trace: one "X" per record, one "M" lane per worker, one
    /// "s"/"f" flow pair per dependency edge (every edge has both endpoint
    /// records here, so none are skipped).
    #[test]
    fn chrome_export_mirrors_the_trace((workers, specs) in arb_dag()) {
        let (trace, _) = run(workers, &specs);
        let doc = jsonv::parse(&trace.to_chrome_json()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        prop_assert_eq!(count_ph(events, "X"), trace.records.len());
        prop_assert_eq!(count_ph(events, "M"), workers);
        prop_assert_eq!(count_ph(events, "s"), trace.edges.len());
        prop_assert_eq!(count_ph(events, "f"), trace.edges.len());
        // Edges reference real task ids.
        let max_id = trace.records.iter().map(|r| r.id).max().unwrap_or(0);
        for &(from, to) in &trace.edges {
            prop_assert!(from <= max_id && to <= max_id);
            prop_assert!(from != to, "self-edge {from}");
        }
        // The plain JSON export parses too.
        prop_assert!(jsonv::parse(&trace.to_json()).is_ok());
    }

    /// Scheduler counters reconcile with the trace: executed tasks equal
    /// record count, steal successes never exceed attempts or executions,
    /// and the ready-queue high-water mark covers at least one task.
    #[test]
    fn counters_reconcile_with_the_trace((workers, specs) in arb_dag()) {
        let (trace, rm) = run(workers, &specs);
        prop_assert_eq!(rm.workers.len(), workers);
        if cfg!(feature = "metrics") {
            prop_assert_eq!(rm.tasks_executed(), trace.records.len() as u64);
            prop_assert!(rm.max_queue_depth >= 1);
            for w in &rm.workers {
                prop_assert!(w.steals_succeeded <= w.steals_attempted);
                prop_assert!(w.steals_succeeded <= rm.tasks_executed());
                prop_assert!(w.priority_hits <= rm.tasks_executed());
            }
        } else {
            prop_assert_eq!(rm.tasks_executed(), 0);
            prop_assert_eq!(rm.max_queue_depth, 0);
        }
        let report = rm.report();
        prop_assert!(report.contains("max ready-queue depth"));
    }
}

/// High-priority tasks land in the priority lane: with the metrics feature
/// on, a burst of high-priority submissions must register priority-lane
/// hits (every such task is either a priority-lane steal or, rarely, a
/// local pop after a batch steal — so assert on a generous margin).
#[cfg(feature = "metrics")]
#[test]
fn priority_lane_hits_are_counted() {
    let rt = Runtime::new(2);
    for _ in 0..64 {
        rt.task("hi").high_priority().spawn(|| {});
    }
    rt.wait().unwrap();
    let rm = rt.runtime_metrics();
    assert_eq!(rm.tasks_executed(), 64);
    assert!(
        rm.priority_hits() >= 32,
        "expected most of 64 high-priority tasks via the priority lane, got {}",
        rm.priority_hits()
    );
}

/// Counters accumulate across phases on one runtime; two equal batches
/// must double the executed count (diffing snapshots isolates a phase).
#[cfg(feature = "metrics")]
#[test]
fn metrics_accumulate_across_phases() {
    let rt = Runtime::new(2);
    for _ in 0..10 {
        rt.task("a").spawn(|| {});
    }
    rt.wait().unwrap();
    let first = rt.runtime_metrics();
    assert_eq!(first.tasks_executed(), 10);
    for _ in 0..10 {
        rt.task("b").spawn(|| {});
    }
    rt.wait().unwrap();
    let second = rt.runtime_metrics();
    assert_eq!(second.tasks_executed(), 20);
    assert!(second.max_queue_depth >= first.max_queue_depth);
}
