//! Model-checked interleaving tests for the worker pool.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS="--cfg
//! dcst_model_check"`: the `dcst_sync` alias layer then resolves the
//! pool's every mutex, condvar, atomic, deque and thread-spawn to
//! `loom-lite`'s instrumented equivalents, and each test below re-runs a
//! small pool scenario under `loom_lite::Builder` — bounded-exhaustive
//! DFS over schedule choices first, seeded random schedules after. A
//! deadlock (all threads blocked), livelock (schedule-point budget
//! exhausted) or panic in *any* explored interleaving fails the test with
//! the offending schedule trace.
//!
//! Ground rules for scenario bodies, which run once per interleaving:
//!
//! * Bookkeeping (hit counters, logs) uses **plain `std` atomics and
//!   mutexes**, never the instrumented ones: they must not add schedule
//!   points, and an uninstrumented lock is only held for straight-line
//!   code, never across an instrumented operation.
//! * **No spin-waiting.** An uninstrumented spin loop monopolizes the
//!   single active model thread forever; rendezvous must come from task
//!   dependencies instead.
//! * Scenarios stay tiny (1–2 workers, ≤4 tasks): the schedule tree grows
//!   exponentially and the DFS budget is what makes small spaces
//!   *exhaustive* (`report.exhausted`) rather than sampled.
//!
//! The per-test execution floors asserted below sum to well over 10 000
//! explored interleavings per suite run.

#![cfg(dcst_model_check)]

use dcst_runtime::{DataKey, Runtime};
use loom_lite::Builder;
// Test bookkeeping only, never a pool primitive. xtask-lint: allow(pool-sync)
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
// xtask-lint: allow(pool-sync)
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

/// A scenario must either run its whole exploration budget or prove the
/// space smaller than it (`exhausted`); anything else means the budget
/// silently shrank and the coverage claim with it.
fn assert_explored(report: &loom_lite::Report, floor: usize) {
    assert!(
        report.failure.is_none(),
        "failing interleaving: {}",
        report.failure.as_deref().unwrap_or_default()
    );
    assert!(
        report.exhausted || report.executions >= floor,
        "explored only {} interleavings (floor {}, not exhausted)",
        report.executions,
        floor
    );
}

#[test]
fn single_task_completes_in_every_interleaving() {
    let report = Builder {
        max_dfs_executions: 2000,
        random_iterations: 200,
        ..Builder::default()
    }
    .check(|| {
        let rt = Runtime::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        rt.task("t").spawn(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        rt.wait().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    });
    assert_explored(&report, 2200);
}

#[test]
fn priority_lane_overtakes_queued_normal_work() {
    // One worker. A's completion releases successors B (normal) and C
    // (high) from inside the worker's own execute step, so whenever both
    // were wired as successors before A finished, the worker sees both
    // queued and must take C from the priority lane first. The `*_wired`
    // flags (read after each submission returns, monotone w.r.t. the
    // wiring-time `finished` check) identify exactly those interleavings;
    // in the rest the assertion is vacuous and the DFS covers both kinds.
    let report = Builder {
        max_dfs_executions: 3000,
        random_iterations: 1000,
        ..Builder::default()
    }
    .check(|| {
        let rt = Runtime::new(1);
        let k = DataKey::new(0, 0);
        let log: Arc<StdMutex<Vec<&'static str>>> = Arc::new(StdMutex::new(Vec::new()));
        let a_done = Arc::new(AtomicBool::new(false));
        {
            let (log, a_done) = (log.clone(), a_done.clone());
            rt.task("A").write(k).spawn(move || {
                log.lock().unwrap().push("A");
                a_done.store(true, Ordering::SeqCst);
            });
        }
        {
            let log = log.clone();
            rt.task("B")
                .read(k)
                .spawn(move || log.lock().unwrap().push("B"));
        }
        let b_wired = !a_done.load(Ordering::SeqCst);
        {
            let log = log.clone();
            rt.task("C")
                .read(k)
                .high_priority()
                .spawn(move || log.lock().unwrap().push("C"));
        }
        let c_wired = !a_done.load(Ordering::SeqCst);
        rt.wait().unwrap();
        let got = log.lock().unwrap().clone();
        assert_eq!(got.len(), 3, "lost or duplicated task: {got:?}");
        assert_eq!(got[0], "A", "dependency order violated: {got:?}");
        if b_wired && c_wired {
            assert_eq!(
                got[1], "C",
                "priority task queued behind normal work: {got:?}"
            );
        }
    });
    assert_explored(&report, 4000);
}

#[test]
fn steal_and_pop_deliver_every_task_exactly_once() {
    // Two workers racing over the injector batch-pop and mutual steals:
    // each of the four independent tasks must run exactly once.
    let report = Builder {
        max_dfs_executions: 3000,
        random_iterations: 1500,
        ..Builder::default()
    }
    .check(|| {
        let rt = Runtime::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let h = hits.clone();
            rt.task("t").spawn(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        rt.wait().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    });
    assert_explored(&report, 4500);
}

#[test]
fn parked_workers_never_miss_a_wakeup() {
    // Three submit/wait phases on one worker: between phases the worker
    // parks on `idle_cv` (its `wait_for` backstop is modeled as an
    // untimed `wait`, so the eventcount protocol gets no second chance).
    // A lost wakeup leaves the task queued and the master blocked on
    // `done_cv` — every thread blocked, which the model reports as a
    // deadlock.
    let report = Builder {
        max_dfs_executions: 2500,
        random_iterations: 1000,
        ..Builder::default()
    }
    .check(|| {
        let rt = Runtime::new(1);
        let count = Arc::new(AtomicUsize::new(0));
        for phase in 1..=3 {
            let c = count.clone();
            rt.task("p").spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            rt.wait().unwrap();
            assert_eq!(count.load(Ordering::SeqCst), phase);
        }
    });
    assert_explored(&report, 3500);
}

#[test]
fn pending_sentinel_survives_submission_racing_completion() {
    // Diamond A → {B, C} → D on two workers. The master wires B, C and D
    // while A (and then B/C) may already be finishing on the workers, so
    // every path through the +1-sentinel wiring protocol — predecessor
    // already finished, finishing concurrently, still pending — is
    // explored. Dependency violations are observed through the epoch
    // counters, a lost release as a model deadlock.
    let report = Builder {
        max_dfs_executions: 3000,
        random_iterations: 1500,
        ..Builder::default()
    }
    .check(|| {
        let rt = Runtime::new(2);
        let k = DataKey::new(0, 0);
        let stage = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        {
            let stage = stage.clone();
            rt.task("A").write(k).spawn(move || {
                stage.store(1, Ordering::SeqCst);
            });
        }
        for name in ["B", "C"] {
            let (stage, violations) = (stage.clone(), violations.clone());
            rt.task(name).gatherv(k).spawn(move || {
                if stage.load(Ordering::SeqCst) != 1 {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        {
            let (stage, violations) = (stage.clone(), violations.clone());
            rt.task("D").read_write(k).spawn(move || {
                if stage.swap(2, Ordering::SeqCst) != 1 {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        rt.wait().unwrap();
        assert_eq!(stage.load(Ordering::SeqCst), 2);
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    });
    assert_explored(&report, 4500);
}

#[test]
fn reintroduced_wiring_race_is_caught_as_deadlock() {
    // The mutation proof: `new_with_buggy_wiring` re-creates the
    // pre-sentinel protocol (finished-check and successor-push under two
    // separate body locks). In the interleaving where A retires between
    // B's check and push, B's release is lost and the pool deadlocks —
    // the checker must find that schedule within budget.
    let report = Builder {
        max_dfs_executions: 4000,
        random_iterations: 4000,
        ..Builder::default()
    }
    .check(|| {
        let rt = Runtime::new_with_buggy_wiring(1);
        let k = DataKey::new(0, 0);
        rt.task("A").write(k).spawn(|| {});
        rt.task("B").read(k).spawn(|| {});
        rt.wait().unwrap();
    });
    let failure = report.failure.unwrap_or_else(|| {
        panic!(
            "model checker missed the wiring race in {} interleavings",
            report.executions
        )
    });
    assert!(
        failure.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
}
