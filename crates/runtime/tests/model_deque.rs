//! Model-checked interleaving tests for the lock-free scheduler core:
//! the Chase–Lev worker deque and the segment-list injector from
//! `vendor/crossbeam-deque`, compiled under `--cfg dcst_model_check` so
//! their every atomic access and fence routes through loom-lite and
//! becomes a schedule point.
//!
//! These scenarios state the TLA⁺ invariants of the SNIPPETS.md
//! work-stealing spec directly against the production protocol:
//!
//! * **No lost task / no double execution** (W1, W2): every pushed item is
//!   delivered to exactly one party, across pop/steal CAS races, buffer
//!   growth, and injector block handoff.
//! * **LIFO-local / FIFO-steal order** (W3): owners pop newest-first,
//!   thieves and the injector deliver oldest-first.
//! * The **mutation test** weakens the pop-side CAS to a plain store
//!   (`Worker::new_lifo_with_buggy_pop`, compiled only under this cfg) and
//!   proves the checker catches the resulting double delivery.
//!
//! Same ground rules as `model.rs` (std atomics for bookkeeping, tiny
//! scenarios), with one refinement: loops that retry on `Steal::Retry` are
//! permitted because a `Retry` is only ever returned after *another*
//! thread won the contended CAS — each retry implies someone else consumed
//! an item, so the loops are bounded by the item count, and every
//! iteration passes through instrumented (scheduling) operations.

#![cfg(dcst_model_check)]

use crossbeam_deque::{Injector, Steal, Worker};
use loom_lite::Builder;
// Test bookkeeping only, never a pool primitive. xtask-lint: allow(pool-sync)
use std::sync::atomic::{AtomicUsize, Ordering};
// xtask-lint: allow(pool-sync)
use std::sync::Arc;

/// A scenario must either run its whole exploration budget or prove the
/// space smaller than it (`exhausted`); anything else means the budget
/// silently shrank and the coverage claim with it.
fn assert_explored(report: &loom_lite::Report, floor: usize) {
    assert!(
        report.failure.is_none(),
        "failing interleaving: {}",
        report.failure.as_deref().unwrap_or_default()
    );
    assert!(
        report.exhausted || report.executions >= floor,
        "explored only {} interleavings (floor {}, not exhausted)",
        report.executions,
        floor
    );
}

/// Steal until `Empty`, accumulating into `sum`/`count`. Bounded: every
/// `Retry` means the competing owner/consumer just won an item.
fn drain_stealer(s: &crossbeam_deque::Stealer<usize>, sum: &AtomicUsize, count: &AtomicUsize) {
    loop {
        match s.steal() {
            Steal::Success(v) => {
                sum.fetch_add(v, Ordering::SeqCst);
                count.fetch_add(1, Ordering::SeqCst);
            }
            Steal::Retry => continue,
            Steal::Empty => return,
        }
    }
}

#[test]
fn steal_and_pop_deliver_each_item_exactly_once() {
    // One owner, one thief, two items: the canonical pop/steal race. The
    // single-element case forces the owner through its top CAS against the
    // thief's; exactly one of them may deliver that item.
    let report = Builder {
        max_dfs_executions: 9000,
        random_iterations: 3000,
        ..Builder::default()
    }
    .check(|| {
        let w = Worker::new_lifo();
        w.push(1usize);
        w.push(2);
        let s = w.stealer();
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let (s2, c2) = (sum.clone(), count.clone());
        let h = loom_lite::thread::spawn(move || {
            let st = s;
            drain_stealer(&st, &s2, &c2);
        });
        while let Some(v) = w.pop() {
            sum.fetch_add(v, Ordering::SeqCst);
            count.fetch_add(1, Ordering::SeqCst);
        }
        h.join().unwrap();
        // Owner stopped at None and the thief at Empty; anything still
        // undelivered would be dropped with the deque — caught here.
        assert_eq!(count.load(Ordering::SeqCst), 2, "lost or duplicated item");
        assert_eq!(sum.load(Ordering::SeqCst), 3, "wrong items delivered");
    });
    assert_explored(&report, 10_000);
}

#[test]
fn growth_under_concurrent_steal_preserves_every_item() {
    // Capacity-2 deque: the third concurrent push doubles the buffer while
    // the thief may be holding the *retired* buffer's pointer between its
    // speculative slot read and its top CAS — the epoch-free reclamation
    // window. Every item must still be delivered exactly once.
    let report = Builder {
        max_dfs_executions: 9000,
        random_iterations: 3000,
        ..Builder::default()
    }
    .check(|| {
        let w = Worker::new_lifo_with_capacity(2);
        w.push(1usize);
        w.push(2);
        let s = w.stealer();
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let (s2, c2) = (sum.clone(), count.clone());
        let h = loom_lite::thread::spawn(move || {
            let st = s;
            drain_stealer(&st, &s2, &c2);
        });
        // Concurrent with the thief: may grow (b - t hits 2) depending on
        // how many steals landed first; the DFS explores both.
        w.push(3);
        w.push(4);
        while let Some(v) = w.pop() {
            sum.fetch_add(v, Ordering::SeqCst);
            count.fetch_add(1, Ordering::SeqCst);
        }
        h.join().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 4, "lost or duplicated item");
        assert_eq!(sum.load(Ordering::SeqCst), 10, "wrong items delivered");
    });
    assert_explored(&report, 10_000);
}

#[test]
fn injector_steal_batch_vs_concurrent_stealer() {
    // The injector's batch-pop (head CAS per item, batch flushed into the
    // caller's local deque) racing a single-stealing consumer: each of the
    // three items is delivered to exactly one side, in FIFO order per side.
    let report = Builder {
        max_dfs_executions: 9000,
        random_iterations: 3000,
        ..Builder::default()
    }
    .check(|| {
        let inj = Arc::new(Injector::new());
        inj.push(1usize);
        inj.push(2);
        inj.push(3);
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let h = {
            let (inj, sum, count) = (inj.clone(), sum.clone(), count.clone());
            loom_lite::thread::spawn(move || loop {
                match inj.steal() {
                    Steal::Success(v) => {
                        sum.fetch_add(v, Ordering::SeqCst);
                        count.fetch_add(1, Ordering::SeqCst);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => return,
                }
            })
        };
        let local = Worker::new_lifo();
        loop {
            match inj.steal_batch_and_pop(&local) {
                Steal::Success(v) => {
                    sum.fetch_add(v, Ordering::SeqCst);
                    count.fetch_add(1, Ordering::SeqCst);
                    // Drain whatever the batch flushed into the local deque
                    // (owner pop: no contention possible, thief has no
                    // stealer for it).
                    while let Some(b) = local.pop() {
                        sum.fetch_add(b, Ordering::SeqCst);
                        count.fetch_add(1, Ordering::SeqCst);
                    }
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        h.join().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 3, "lost or duplicated item");
        assert_eq!(sum.load(Ordering::SeqCst), 6, "wrong items delivered");
    });
    assert_explored(&report, 10_000);
}

#[test]
fn hi_injector_drained_before_normal_injector() {
    // The pool-level drain-order guarantee, restated against the lock-free
    // injectors: a consumer that polls the priority lane before the normal
    // injector (exactly `find_task`'s order, Retry re-entering from the
    // top) must deliver a queued high item before any normal item, even
    // with a second consumer racing it for both queues.
    let report = Builder {
        max_dfs_executions: 9000,
        random_iterations: 3000,
        ..Builder::default()
    }
    .check(|| {
        let hi = Arc::new(Injector::new());
        let lo = Arc::new(Injector::new());
        hi.push(100usize);
        lo.push(1);
        lo.push(2);
        let violations = Arc::new(AtomicUsize::new(0));
        let taken = Arc::new(AtomicUsize::new(0));
        let consume = {
            let (hi, lo) = (hi.clone(), lo.clone());
            let (violations, taken) = (violations.clone(), taken.clone());
            move || loop {
                match hi.steal() {
                    Steal::Success(_) => {
                        taken.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                    Steal::Retry => continue,
                    Steal::Empty => {}
                }
                match lo.steal() {
                    Steal::Success(_) => {
                        // Nothing pushes to `hi` after setup, so its
                        // emptiness is monotone: having polled it Empty
                        // before this claim, it must still be empty now. A
                        // consumer that skipped the priority poll (or a
                        // spurious Empty from the lane) shows up here.
                        if !hi.is_empty() {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                        taken.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                    Steal::Retry => continue,
                    Steal::Empty => return,
                }
            }
        };
        let other = consume.clone();
        let h = loom_lite::thread::spawn(other);
        consume();
        h.join().unwrap();
        assert_eq!(taken.load(Ordering::SeqCst), 3, "lost or duplicated item");
        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "normal item delivered while the priority lane still held work"
        );
    });
    assert_explored(&report, 10_000);
}

#[test]
fn mutation_weakened_pop_cas_is_caught_as_double_delivery() {
    // The seeded mutation: `new_lifo_with_buggy_pop` claims the final
    // element with a plain `top` store instead of the CAS. In the
    // interleaving where the thief's CAS lands between the owner's bottom
    // decrement and its store, both sides deliver the same item — the
    // checker must find that schedule and report the assertion panic.
    let report = Builder {
        max_dfs_executions: 6000,
        random_iterations: 6000,
        ..Builder::default()
    }
    .check(|| {
        let w = Worker::new_lifo_with_buggy_pop();
        w.push(7usize);
        let s = w.stealer();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let h = loom_lite::thread::spawn(move || {
            let st = s;
            loop {
                match st.steal() {
                    Steal::Success(_) => {
                        c2.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                    Steal::Retry => continue,
                    Steal::Empty => return,
                }
            }
        });
        if w.pop().is_some() {
            count.fetch_add(1, Ordering::SeqCst);
        }
        h.join().unwrap();
        assert!(
            count.load(Ordering::SeqCst) <= 1,
            "item delivered to both owner and thief"
        );
    });
    let failure = report.failure.unwrap_or_else(|| {
        panic!(
            "model checker missed the weakened-CAS double delivery in {} interleavings",
            report.executions
        )
    });
    assert!(
        failure.contains("panic"),
        "expected the double-delivery assertion panic, got: {failure}"
    );
}
