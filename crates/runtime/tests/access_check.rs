//! Integration tests for the `access-check` shadow tracker.
//!
//! Well-declared graphs must pass untouched; every seeded misdeclaration
//! (a borrow outside the task's declared footprint, or overlapping
//! concurrent GatherV writers) must surface as a `RuntimeError` whose
//! message names the offending task.

#![cfg(feature = "access-check")]

use dcst_runtime::{DataKey, Runtime, SharedData};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const OBJ: u64 = 7;

fn key(i: usize) -> DataKey {
    DataKey::new(OBJ, i as u64)
}

#[test]
fn well_declared_fanout_join_passes() {
    let rt = Runtime::new(3);
    let buf = SharedData::new(vec![0usize; 64]);
    buf.bind_keys(&[key(0)]);
    {
        let buf = buf.clone();
        rt.task("init").write(key(0)).spawn(move || {
            // SAFETY: first writer epoch, exclusive by construction.
            let s = unsafe { buf.slice_mut() };
            s.iter_mut().for_each(|x| *x = 1);
        });
    }
    for chunk in 0..8 {
        let buf = buf.clone();
        rt.task("partial").gatherv(key(0)).spawn(move || {
            // SAFETY: disjoint 8-element ranges per GatherV writer.
            let s = unsafe { buf.range_mut(chunk * 8..(chunk + 1) * 8) };
            s.iter_mut().for_each(|x| *x += chunk);
        });
    }
    {
        let buf = buf.clone();
        rt.task("join").read(key(0)).spawn(move || {
            // SAFETY: shared read after the GatherV group closed.
            let s = unsafe { buf.slice() };
            let total: usize = s.iter().sum();
            assert_eq!(total, 64 + 8 * (0..8).sum::<usize>());
        });
    }
    rt.wait().unwrap();
}

#[test]
fn mutable_borrow_under_read_declaration_is_caught() {
    let rt = Runtime::new(2);
    let buf = SharedData::new(vec![0.0f64; 16]);
    buf.bind_keys(&[key(0)]);
    {
        let buf = buf.clone();
        rt.task("liar").read(key(0)).spawn(move || {
            // Declared INPUT, takes an exclusive borrow: footprint error.
            // SAFETY: the tracker panics before the alias is created.
            let _s = unsafe { buf.range_mut(0..4) };
        });
    }
    let err = rt.wait().unwrap_err();
    assert_eq!(err.task, "liar");
    assert!(
        err.message().contains("access-check") && err.message().contains("mutable"),
        "unexpected message: {}",
        err.message()
    );
}

#[test]
fn borrow_of_undeclared_buffer_is_caught() {
    let rt = Runtime::new(2);
    let a = SharedData::new(vec![0.0f64; 16]);
    let b = SharedData::new(vec![0.0f64; 16]);
    a.bind_keys(&[key(0)]);
    b.bind_keys(&[key(1)]);
    {
        let b = b.clone();
        rt.task("stray").write(key(0)).spawn(move || {
            // Declares only key 0, touches the buffer bound to key 1.
            // SAFETY: the tracker panics before the alias is created.
            let _s = unsafe { b.range(0..1) };
        });
    }
    let err = rt.wait().unwrap_err();
    assert_eq!(err.task, "stray");
    assert!(
        err.message().contains("declared no matching access"),
        "unexpected message: {}",
        err.message()
    );
}

#[test]
fn unbound_buffers_are_not_tracked() {
    let rt = Runtime::new(2);
    let buf = SharedData::new(vec![0.0f64; 8]);
    // No bind_keys: borrows are outside the tracker's jurisdiction.
    {
        let buf = buf.clone();
        rt.task("free").read(key(0)).spawn(move || {
            // SAFETY: only live borrow of the buffer.
            let _s = unsafe { buf.range_mut(0..8) };
        });
    }
    rt.wait().unwrap();
    // Borrows from the master thread (no task context) are also skipped.
    buf.bind_keys(&[key(0)]);
    // SAFETY: no task is running.
    let _s = unsafe { buf.range(0..8) };
}

#[test]
fn overlapping_gatherv_writers_are_caught() {
    let rt = Runtime::new(2);
    let buf = SharedData::new(vec![0.0f64; 100]);
    buf.bind_keys(&[key(0)]);
    let a_borrowed = Arc::new(AtomicBool::new(false));
    let b_attempted = Arc::new(AtomicBool::new(false));
    {
        let buf = buf.clone();
        let (a_borrowed, b_attempted) = (a_borrowed.clone(), b_attempted.clone());
        rt.task("gatherA").gatherv(key(0)).spawn(move || {
            // SAFETY: the overlapping second borrow panics in the tracker
            // before an alias to this range is created.
            let _s = unsafe { buf.range_mut(0..60) };
            a_borrowed.store(true, Ordering::SeqCst);
            // Hold the borrow live until B has tried (and failed) to take
            // an overlapping range; B flags *before* borrowing, so this
            // loop terminates even though B panics.
            while !b_attempted.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
    }
    {
        let buf = buf.clone();
        let (a_borrowed, b_attempted) = (a_borrowed.clone(), b_attempted.clone());
        rt.task("gatherB").gatherv(key(0)).spawn(move || {
            while !a_borrowed.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            b_attempted.store(true, Ordering::SeqCst);
            // Declaration-correct (GATHERV on the right key) but ranges
            // overlap 40..60: the live-interval check must fire.
            // SAFETY: the tracker panics before the alias is created.
            let _s = unsafe { buf.range_mut(40..100) };
        });
    }
    let err = rt.wait().unwrap_err();
    assert_eq!(err.task, "gatherB");
    assert!(
        err.message().contains("overlapping concurrent borrows")
            && err.message().contains("gatherA"),
        "unexpected message: {}",
        err.message()
    );
}

/// Task shape drawn by the random-DAG property test below: a buffer index
/// and a declared access mode the body honours (unless sabotaged).
const MODE_READ: usize = 0;
const MODE_WRITE: usize = 1;
const MODE_READ_WRITE: usize = 2;
const MODE_GATHERV: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_dags_accept_honest_tasks_and_reject_misdeclared(
        num_bufs in 1usize..4,
        tasks in collection::vec((0usize..4, 0usize..4), 3..12),
        sabotage in 0usize..2,
        victim_pick in 0usize..64,
    ) {
        let sabotage = sabotage == 1;
        let victim = victim_pick % tasks.len();
        let rt = Runtime::new(3);
        let bufs: Vec<SharedData<f64>> = (0..num_bufs)
            .map(|i| {
                let b = SharedData::new(vec![0.0f64; 64]);
                b.bind_keys(&[key(i)]);
                b
            })
            .collect();
        // Hands each GatherV writer of a buffer its own disjoint 4-element
        // chunk (at most 11 tasks per case, so chunks stay in bounds).
        let chunk_counters: Arc<Vec<AtomicUsize>> =
            Arc::new((0..num_bufs).map(|_| AtomicUsize::new(0)).collect());

        for (t, &(mode, buf_pick)) in tasks.iter().enumerate() {
            let bi = buf_pick % num_bufs;
            let buf = bufs[bi].clone();
            let counters = chunk_counters.clone();
            if sabotage && t == victim {
                // Misdeclared: INPUT on the right key, exclusive borrow in
                // the body. Schedule-independent; must always be caught.
                rt.task("saboteur").read(key(bi)).spawn(move || {
                    // SAFETY: the tracker panics before the alias exists.
                    let _s = unsafe { buf.range_mut(0..8) };
                });
                continue;
            }
            match mode {
                MODE_READ => {
                    rt.task("reader").read(key(bi)).spawn(move || {
                        // SAFETY: ordered after every writer epoch.
                        let s = unsafe { buf.slice() };
                        let _ = s.iter().sum::<f64>();
                    });
                }
                MODE_WRITE => {
                    rt.task("writer").write(key(bi)).spawn(move || {
                        // SAFETY: exclusive writer epoch.
                        let s = unsafe { buf.slice_mut() };
                        s.iter_mut().for_each(|x| *x += 1.0);
                    });
                }
                MODE_READ_WRITE => {
                    rt.task("updater").read_write(key(bi)).spawn(move || {
                        // SAFETY: exclusive writer epoch.
                        let s = unsafe { buf.slice_mut() };
                        s.iter_mut().for_each(|x| *x *= 2.0);
                    });
                }
                MODE_GATHERV => {
                    rt.task("gather").gatherv(key(bi)).spawn(move || {
                        let c = counters[bi].fetch_add(1, Ordering::SeqCst);
                        // SAFETY: per-writer disjoint chunk of the group.
                        let s = unsafe { buf.range_mut(c * 4..(c + 1) * 4) };
                        s.iter_mut().for_each(|x| *x += 1.0);
                    });
                }
                _ => unreachable!(),
            }
        }

        let result = rt.wait();
        if sabotage {
            let err = result.expect_err("misdeclaration went undetected");
            prop_assert_eq!(err.task.as_str(), "saboteur");
            prop_assert!(
                err.message().contains("access-check"),
                "unexpected message: {}",
                err.message()
            );
        } else {
            prop_assert!(result.is_ok(), "honest DAG rejected: {:?}", result.err());
        }
    }
}
