//! Runtime semantics under stress: ordering guarantees, panic containment,
//! GATHERV group interleavings, DAG recording, trace integrity.

use dcst_runtime::{DataKey, Runtime, SharedData};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[test]
fn deep_chain_runs_in_order_under_many_workers() {
    let rt = Runtime::new(4);
    let k = DataKey::new(1, 0);
    let log = Arc::new(Mutex::new(Vec::new()));
    for i in 0..500usize {
        let log = log.clone();
        rt.task("chain")
            .read_write(k)
            .spawn(move || log.lock().unwrap().push(i));
    }
    rt.wait().unwrap();
    assert_eq!(*log.lock().unwrap(), (0..500).collect::<Vec<_>>());
}

#[test]
fn wide_fanout_then_join_counts_everything() {
    let rt = Runtime::new(3);
    let root = DataKey::new(2, 0);
    let sum = Arc::new(AtomicUsize::new(0));
    rt.task("init").write(root).spawn(|| {});
    for i in 1..=200usize {
        let sum = sum.clone();
        rt.task("leaf").gatherv(root).spawn(move || {
            sum.fetch_add(i, Ordering::Relaxed);
        });
    }
    let observed = Arc::new(AtomicUsize::new(0));
    let (s, o) = (sum.clone(), observed.clone());
    rt.task("join").read_write(root).spawn(move || {
        o.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
    });
    rt.wait().unwrap();
    assert_eq!(observed.load(Ordering::Relaxed), 100 * 201);
}

#[test]
fn alternating_gatherv_epochs_are_separated() {
    // G G | R | G G | W : each phase must see the previous complete.
    let rt = Runtime::new(4);
    let k = DataKey::new(3, 0);
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..2 {
        let c = counter.clone();
        rt.task("g1").gatherv(k).spawn(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    let c = counter.clone();
    rt.task("r")
        .read(k)
        .spawn(move || assert_eq!(c.load(Ordering::SeqCst), 2));
    for _ in 0..2 {
        let c = counter.clone();
        rt.task("g2").gatherv(k).spawn(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    let c = counter.clone();
    rt.task("w")
        .write(k)
        .spawn(move || assert_eq!(c.load(Ordering::SeqCst), 4));
    rt.wait().unwrap();
}

#[test]
fn panicking_task_does_not_deadlock_successors() {
    // A panic latches cancellation: successor bodies are skipped, but the
    // bookkeeping still runs so wait() terminates and reports the panic.
    let rt = Runtime::new(2);
    let k = DataKey::new(4, 0);
    let ran = Arc::new(AtomicUsize::new(0));
    rt.task("boom").write(k).spawn(|| panic!("first"));
    let r = ran.clone();
    rt.task("after").read(k).spawn(move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    let err = rt.wait().unwrap_err();
    assert_eq!(err.task, "boom");
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "successor body must be skipped once the failure latches"
    );
}

#[test]
fn only_first_panic_is_reported() {
    let rt = Runtime::new(2);
    let k = DataKey::new(5, 0);
    rt.task("a").read_write(k).spawn(|| panic!("one"));
    rt.task("b").read_write(k).spawn(|| panic!("two"));
    let err = rt.wait().unwrap_err();
    let msg = err.message();
    assert!(msg == "one" || msg == "two");
    // Slot cleared afterwards.
    rt.task("ok").spawn(|| {});
    rt.wait().unwrap();
}

#[test]
fn typed_failure_cancels_dag_and_runtime_stays_usable() {
    #[derive(Debug)]
    struct Unstable(usize);
    impl std::fmt::Display for Unstable {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "kernel diverged at step {}", self.0)
        }
    }
    impl std::error::Error for Unstable {}

    let rt = Runtime::new(3);
    let k = DataKey::new(4, 1);
    let ran = Arc::new(AtomicUsize::new(0));
    rt.task("diverge")
        .write(k)
        .spawn_try(|| Err::<(), _>(Unstable(17)));
    for _ in 0..100 {
        let r = ran.clone();
        rt.task("dependent").read_write(k).spawn(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    let err = rt.wait().unwrap_err();
    assert_eq!(err.task, "diverge");
    let (_, e) = err.downcast::<Unstable>().expect("typed error survives");
    assert_eq!(e.0, 17);
    assert_eq!(ran.load(Ordering::SeqCst), 0, "all dependents skipped");
    // Next phase is clean.
    let c = ran.clone();
    rt.task("fresh").spawn(move || {
        c.fetch_add(1, Ordering::SeqCst);
    });
    rt.wait().unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}

#[test]
fn independent_tasks_submitted_before_failure_may_still_be_skipped_safely() {
    // Cancellation is a runtime-wide latch, not a reachability analysis:
    // once any task fails, every not-yet-started body is skipped, even on
    // unrelated keys. wait() must still terminate and count everything.
    let rt = Runtime::new(1);
    let gate = DataKey::new(4, 2);
    rt.task("fail-first")
        .write(gate)
        .spawn_try(|| Err::<(), _>(std::io::Error::other("latch")));
    for i in 0..64u64 {
        rt.task("unrelated")
            .write(DataKey::new(4, 10 + i))
            .spawn(|| {});
    }
    let err = rt.wait().unwrap_err();
    assert_eq!(err.task, "fail-first");
    // All 65 tasks were accounted for (wait returned), and the runtime
    // accepts new work.
    rt.task("ok").spawn(|| {});
    rt.wait().unwrap();
}

#[test]
fn independent_key_spaces_fully_overlap() {
    // 4 independent chains must finish even with 1 worker (no deadlock
    // potential), and with 4 workers the logical clocks stay consistent.
    for threads in [1, 4] {
        let rt = Runtime::new(threads);
        let cells: Vec<Arc<AtomicUsize>> = (0..4).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        #[allow(clippy::needless_range_loop)]
        for chain in 0..4usize {
            let k = DataKey::new(6, chain as u64);
            for step in 0..50usize {
                let cell = cells[chain].clone();
                rt.task("step").read_write(k).spawn(move || {
                    let prev = cell.swap(step + 1, Ordering::SeqCst);
                    assert_eq!(prev, step, "chain {chain}");
                });
            }
        }
        rt.wait().unwrap();
    }
}

#[test]
fn trace_covers_all_phases() {
    let rt = Runtime::new(2);
    rt.enable_tracing();
    for _ in 0..3 {
        rt.task("p1").spawn(|| {});
    }
    rt.wait().unwrap();
    for _ in 0..2 {
        rt.task("p2").spawn(|| {});
    }
    rt.wait().unwrap();
    let trace = rt.take_trace();
    assert_eq!(trace.records.len(), 5);
    let stats = trace.kernel_stats();
    assert_eq!(stats.iter().map(|s| s.count).sum::<usize>(), 5);
}

#[test]
fn dag_recorder_chain_and_diamond() {
    let rt = Runtime::new(2);
    rt.enable_dag_recording();
    let a = DataKey::new(7, 1);
    let b = DataKey::new(7, 2);
    rt.task("src").write(a).write(b).spawn(|| {});
    rt.task("left").read_write(a).spawn(|| {});
    rt.task("right").read_write(b).spawn(|| {});
    rt.task("sink").read(a).read(b).spawn(|| {});
    rt.wait().unwrap();
    let dag = rt.take_dag().unwrap();
    assert_eq!(dag.num_nodes(), 4);
    assert_eq!(dag.num_edges(), 4); // src→left, src→right, left→sink, right→sink
    assert_eq!(dag.critical_path_len(), 3);
    let dot = dag.to_dot();
    assert!(dot.contains("t0 -> t1;") && dot.contains("t0 -> t2;"));
}

#[test]
fn shared_data_ranges_partition_under_runtime() {
    let rt = Runtime::new(4);
    let buf = SharedData::new(vec![0u64; 64 * 16]);
    let k = DataKey::new(8, 0);
    for c in 0..64usize {
        let buf = buf.clone();
        rt.task("w").gatherv(k).spawn(move || {
            // SAFETY: disjoint 16-element ranges per task inside one
            // GatherV group.
            let s = unsafe { buf.range_mut(c * 16..(c + 1) * 16) };
            for (i, x) in s.iter_mut().enumerate() {
                *x = (c * 16 + i) as u64;
            }
        });
    }
    rt.wait().unwrap();
    let v = buf
        .try_unwrap()
        .unwrap_or_else(|_| panic!("unique after wait"));
    assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
}

#[test]
fn thousands_of_tiny_tasks_complete() {
    let rt = Runtime::new(4);
    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..5000usize {
        let d = done.clone();
        let key = DataKey::new(9, (i % 37) as u64);
        rt.task("tiny").read_write(key).spawn(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
    }
    rt.wait().unwrap();
    assert_eq!(done.load(Ordering::Relaxed), 5000);
}
