//! Per-submission-scope isolation: a failure or cancel in one scope must
//! never abort, mis-attribute, or stall another scope's tasks — the
//! property the serve daemon's concurrent requests stand on.

use dcst_runtime::{DataKey, Runtime, Scope};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-scope object-id bases so concurrent scopes never share keys.
fn key(base: u64, idx: u64) -> DataKey {
    DataKey::new(base, idx)
}

#[derive(Debug)]
struct Poison(&'static str);

impl std::fmt::Display for Poison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "poisoned: {}", self.0)
    }
}

impl std::error::Error for Poison {}

/// Submit a chain of `len` tasks on `scope`, bumping `ran` per body; task
/// `fail_at` (if any) returns a typed error instead.
fn submit_chain(
    scope: &Scope<'_>,
    base: u64,
    len: usize,
    fail_at: Option<usize>,
    ran: &Arc<AtomicUsize>,
) {
    for i in 0..len {
        let ran = ran.clone();
        let b = scope.task("link").read_write(key(base, 0));
        if fail_at == Some(i) {
            b.spawn_try(move || Err::<(), _>(Poison("chain")));
        } else {
            b.spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
    }
}

#[test]
fn two_racing_graphs_one_poisoned_other_unaffected() {
    // The satellite regression: two scopes race on the shared pool; scope A
    // is poisoned mid-chain, scope B must run every task and wait() Ok.
    let rt = Runtime::new(4);
    for round in 0..20 {
        let sa = rt.scope();
        let sb = rt.scope();
        let ran_a = Arc::new(AtomicUsize::new(0));
        let ran_b = Arc::new(AtomicUsize::new(0));
        // Interleave submissions so the graphs genuinely coexist.
        submit_chain(&sa, 100 + round, 40, Some(5), &ran_a);
        submit_chain(&sb, 200 + round, 40, None, &ran_b);
        let err = sa.wait().expect_err("poisoned scope must fail");
        assert_eq!(err.task, "link");
        assert!(!err.is_panic() && !err.is_cancelled());
        let (_task, p) = err.downcast::<Poison>().expect("typed recovery");
        assert_eq!(p.0, "chain");
        sb.wait().expect("healthy scope must not see A's failure");
        assert_eq!(
            ran_b.load(Ordering::SeqCst),
            40,
            "every task of the healthy scope must run"
        );
        // The poisoned scope ran exactly the pre-failure prefix: its chain
        // is serialized by the key, and the latch skips the rest.
        assert_eq!(ran_a.load(Ordering::SeqCst), 5);
    }
}

#[test]
fn cancel_skips_queued_tasks_and_reports_cancelled() {
    // One worker, held busy by a gate so the rest of the scope's chain is
    // still queued when cancel() lands.
    let rt = Runtime::new(1);
    let scope = rt.scope();
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    {
        let (s, r) = (started.clone(), release.clone());
        scope.task("gate").read_write(key(300, 0)).spawn(move || {
            s.store(true, Ordering::SeqCst);
            while !r.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
    }
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..30 {
        let ran = ran.clone();
        scope.task("queued").read_write(key(300, 0)).spawn(move || {
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    while !started.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }
    scope.cancel();
    release.store(true, Ordering::SeqCst);
    let err = scope.wait().expect_err("cancelled scope must report it");
    assert!(err.is_cancelled());
    assert!(!err.is_panic());
    assert_eq!(err.message(), "cancelled");
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "no queued body may start after cancel latches"
    );
    // The scope (and the runtime) stay usable.
    let hit = Arc::new(AtomicBool::new(false));
    let h = hit.clone();
    scope
        .task("next")
        .spawn(move || h.store(true, Ordering::SeqCst));
    scope.wait().unwrap();
    assert!(hit.load(Ordering::SeqCst));
}

#[test]
fn cancel_handle_works_from_another_thread() {
    let rt = Runtime::new(2);
    let scope = rt.scope();
    let release = Arc::new(AtomicBool::new(false));
    {
        let r = release.clone();
        scope.task("gate").read_write(key(310, 0)).spawn(move || {
            while !r.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
    }
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..10 {
        let ran = ran.clone();
        scope.task("queued").read_write(key(310, 0)).spawn(move || {
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    let handle = scope.cancel_handle();
    assert!(!handle.is_cancelled());
    let rel = release.clone();
    let canceller = std::thread::spawn(move || {
        handle.cancel();
        rel.store(true, Ordering::SeqCst);
    });
    let err = scope.wait().expect_err("handle cancel must latch");
    assert!(err.is_cancelled());
    assert_eq!(ran.load(Ordering::SeqCst), 0);
    canceller.join().unwrap();
}

#[test]
fn failure_beats_cancel_for_attribution() {
    // A scope that already failed keeps its typed error even if a control
    // plane cancels it afterwards — attribution must not be overwritten.
    let rt = Runtime::new(1);
    let scope = rt.scope();
    scope
        .task("boom")
        .read_write(key(320, 0))
        .spawn_try(|| Err::<(), _>(Poison("real failure")));
    // The single worker has retired "boom" once wait() would return; give
    // the failure time to latch by waiting, then cancel and re-check via a
    // second phase instead: cancel-after-failure within one phase.
    scope.cancel();
    let err = scope.wait().expect_err("must fail");
    // Either the failure latched first (typed) or cancel did (cancelled):
    // both are legal outcomes of the race, but a typed failure must never
    // be *replaced* by the cancel marker once latched. Run the
    // deterministic order too: failure strictly first.
    let scope2 = rt.scope();
    scope2
        .task("boom2")
        .read_write(key(321, 0))
        .spawn_try(|| Err::<(), _>(Poison("first")));
    let err2 = scope2.wait().expect_err("typed failure");
    assert!(!err2.is_cancelled(), "latched failure survives: {err2}");
    drop(err);
}

#[test]
fn default_scope_and_explicit_scopes_are_isolated() {
    // Runtime::task (default scope) fails; an explicit scope running
    // concurrently must stay green, and vice versa.
    let rt = Runtime::new(2);
    let scope = rt.scope();
    let ran = Arc::new(AtomicUsize::new(0));
    rt.task("default-fail")
        .spawn_try(|| Err::<(), _>(Poison("default")));
    for _ in 0..20 {
        let ran = ran.clone();
        scope.task("scoped").read_write(key(330, 0)).spawn(move || {
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    scope
        .wait()
        .expect("scoped work unaffected by default-scope failure");
    assert_eq!(ran.load(Ordering::SeqCst), 20);
    let err = rt.wait().expect_err("default scope failed");
    assert_eq!(err.task, "default-fail");
}

#[test]
fn priority_scope_tasks_overtake_normal_queue() {
    // One worker held busy; a normal scope floods the injector, then a
    // priority scope submits one task LAST — it must still run first.
    let rt = Runtime::new(1);
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let log: Arc<std::sync::Mutex<Vec<&'static str>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let (s, r) = (started.clone(), release.clone());
        rt.task("gate").spawn(move || {
            s.store(true, Ordering::SeqCst);
            while !r.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
    }
    while !started.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }
    let normal = rt.scope();
    let boosted = rt.priority_scope();
    for _ in 0..8 {
        let log = log.clone();
        normal
            .task("panel")
            .spawn(move || log.lock().unwrap().push("panel"));
    }
    {
        let log = log.clone();
        boosted
            .task("urgent")
            .spawn(move || log.lock().unwrap().push("urgent"));
    }
    release.store(true, Ordering::SeqCst);
    boosted.wait().unwrap();
    normal.wait().unwrap();
    rt.wait().unwrap();
    let got = log.lock().unwrap().clone();
    assert_eq!(got.len(), 9);
    assert_eq!(
        got[0], "urgent",
        "priority-scope task must overtake queued normal work: {got:?}"
    );
}

#[test]
fn per_scope_traces_split_cleanly() {
    let rt = Runtime::new(2);
    rt.enable_tracing();
    let sa = rt.scope();
    let sb = rt.scope();
    for _ in 0..4 {
        sa.task("alpha").read_write(key(340, 0)).spawn(|| {});
    }
    for _ in 0..7 {
        sb.task("beta").read_write(key(341, 0)).spawn(|| {});
    }
    sa.wait().unwrap();
    sb.wait().unwrap();
    let ta = rt.take_scope_trace(&sa);
    assert_eq!(ta.records.len(), 4);
    assert!(ta.records.iter().all(|r| r.name == "alpha"));
    // Chain of 4 on one key → 3 edges, none crossing into scope B.
    assert_eq!(ta.edges.len(), 3);
    // Draining A leaves B's records intact and tracing still enabled.
    let tb = rt.take_scope_trace(&sb);
    assert_eq!(tb.records.len(), 7);
    assert!(tb.records.iter().all(|r| r.name == "beta"));
    assert_eq!(tb.edges.len(), 6);
    let sc = rt.scope();
    sc.task("gamma").spawn(|| {});
    sc.wait().unwrap();
    let tc = rt.take_scope_trace(&sc);
    assert_eq!(
        tc.records.len(),
        1,
        "tracing must stay enabled after drains"
    );
    // take_trace still drains whatever is left (nothing here) and disables.
    let rest = rt.take_trace();
    assert_eq!(rest.records.len(), 0);
}

#[test]
fn tracker_keys_are_retired_when_scopes_complete() {
    // Daemon-lifetime bound: key state must not accumulate across requests.
    let rt = Runtime::new(2);
    let baseline = rt.tracked_keys();
    for round in 0u64..50 {
        let scope = rt.scope();
        for idx in 0..16 {
            scope
                .task("req")
                .read_write(key(1000 + round, idx))
                .spawn(|| {});
        }
        scope.wait().unwrap();
    }
    assert_eq!(
        rt.tracked_keys(),
        baseline,
        "completed scopes must not leave key state behind"
    );
}

#[test]
fn scope_reuse_across_phases() {
    let rt = Runtime::new(2);
    let scope = rt.scope();
    let count = Arc::new(AtomicUsize::new(0));
    for phase in 0..3 {
        for _ in 0..10 {
            let c = count.clone();
            scope.task("p").spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        scope.wait().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), (phase + 1) * 10);
    }
}

#[test]
fn many_concurrent_scopes_under_stress() {
    // 8 scopes × 30 tasks interleaved; a third of the scopes poisoned at a
    // random-ish position. Exactly the poisoned scopes fail, each with its
    // own attribution, and every healthy scope runs all tasks.
    let rt = Runtime::new(4);
    for _ in 0..10 {
        let scopes: Vec<Scope<'_>> = (0..8).map(|_| rt.scope()).collect();
        let counters: Vec<Arc<AtomicUsize>> =
            (0..8).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        for i in 0..30 {
            for (s, (scope, ran)) in scopes.iter().zip(counters.iter()).enumerate() {
                let poisoned = s % 3 == 0 && i == 7 + s;
                let ran = ran.clone();
                let b = scope.task("stress").read_write(key(2000 + s as u64, 0));
                if poisoned {
                    b.spawn_try(move || Err::<(), _>(Poison("stress")));
                } else {
                    b.spawn(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }
        }
        for (s, (scope, ran)) in scopes.iter().zip(counters.iter()).enumerate() {
            let res = scope.wait();
            if s % 3 == 0 {
                let err = res.expect_err("poisoned scope must fail");
                assert_eq!(err.task, "stress");
                // Chain serialized on one key: exactly the prefix ran.
                assert_eq!(ran.load(Ordering::SeqCst), 7 + s);
            } else {
                res.expect("healthy scope must pass");
                assert_eq!(ran.load(Ordering::SeqCst), 30);
            }
        }
    }
}
