//! Test-matrix generators: the fifteen types of the paper's Table III and
//! the "application-like" matrices of Figure 10.

mod application;
mod rkpw;

pub use application::{application_suite, glued_wilkinson, ApplicationMatrix};
pub use rkpw::jacobi_from_spectrum;

use crate::SymTridiag;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Condition-like parameter `k` from the paper's testing environment.
pub const K_PARAM: f64 = 1.0e6;

/// The paper's `ulp` (relative unit in the last place, `dlamch('P')`).
pub const ULP: f64 = f64::EPSILON;

/// The fifteen matrix types of Table III.
///
/// Types 1–9 prescribe the spectrum (built via [`jacobi_from_spectrum`]
/// with random eigenvector weights); types 10–15 are directly-defined
/// matrices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatrixType {
    /// λ₁ = 1, λᵢ = 1/k.
    Type1,
    /// λᵢ = 1 for i < n, λₙ = 1/k. (~100 % deflation in D&C.)
    Type2,
    /// λᵢ = k^{−(i−1)/(n−1)} — geometric. (~50 % deflation.)
    Type3,
    /// λᵢ = 1 − ((i−1)/(n−1))(1 − 1/k) — arithmetic. (~20 % deflation.)
    Type4,
    /// n random numbers with uniformly distributed logarithm.
    Type5,
    /// n uniform random numbers.
    Type6,
    /// λᵢ = ulp·i for i < n, λₙ = 1.
    Type7,
    /// λ₁ = ulp, λᵢ = 1 + i·√ulp, λₙ = 2.
    Type8,
    /// λ₁ = 1, λᵢ = λᵢ₋₁ + 100·ulp.
    Type9,
    /// The (1,2,1) Toeplitz matrix.
    Type10,
    /// Wilkinson matrix W⁺.
    Type11,
    /// Clement matrix.
    Type12,
    /// Legendre (Jacobi) matrix.
    Type13,
    /// Laguerre (Jacobi) matrix.
    Type14,
    /// Hermite (Jacobi) matrix.
    Type15,
}

impl MatrixType {
    /// All fifteen types in Table III order.
    pub const ALL: [MatrixType; 15] = [
        MatrixType::Type1,
        MatrixType::Type2,
        MatrixType::Type3,
        MatrixType::Type4,
        MatrixType::Type5,
        MatrixType::Type6,
        MatrixType::Type7,
        MatrixType::Type8,
        MatrixType::Type9,
        MatrixType::Type10,
        MatrixType::Type11,
        MatrixType::Type12,
        MatrixType::Type13,
        MatrixType::Type14,
        MatrixType::Type15,
    ];

    /// 1-based index used by the paper.
    pub fn index(self) -> usize {
        MatrixType::ALL.iter().position(|&t| t == self).unwrap() + 1
    }

    /// Parse from the paper's 1-based index.
    pub fn from_index(idx: usize) -> Option<MatrixType> {
        MatrixType::ALL.get(idx.checked_sub(1)?).copied()
    }

    /// One-line description matching Table III.
    pub fn description(self) -> &'static str {
        match self {
            MatrixType::Type1 => "lambda_1 = 1, lambda_i = 1/k",
            MatrixType::Type2 => "lambda_i = 1 (i < n), lambda_n = 1/k",
            MatrixType::Type3 => "lambda_i = k^{-(i-1)/(n-1)}",
            MatrixType::Type4 => "lambda_i = 1 - ((i-1)/(n-1))(1 - 1/k)",
            MatrixType::Type5 => "random, log-uniform",
            MatrixType::Type6 => "random, uniform",
            MatrixType::Type7 => "lambda_i = ulp*i (i < n), lambda_n = 1",
            MatrixType::Type8 => "lambda_1 = ulp, lambda_i = 1 + i*sqrt(ulp), lambda_n = 2",
            MatrixType::Type9 => "lambda_1 = 1, lambda_i = lambda_{i-1} + 100*ulp",
            MatrixType::Type10 => "(1,2,1) Toeplitz",
            MatrixType::Type11 => "Wilkinson W+",
            MatrixType::Type12 => "Clement",
            MatrixType::Type13 => "Legendre",
            MatrixType::Type14 => "Laguerre",
            MatrixType::Type15 => "Hermite",
        }
    }

    /// The prescribed spectrum (ascending), if this type has one
    /// (types 1–9; `None` for the directly-defined matrices 10–15).
    pub fn prescribed_spectrum(self, n: usize, seed: u64) -> Option<Vec<f64>> {
        assert!(n >= 1);
        let k = K_PARAM;
        let nf = n as f64;
        let mut lam: Vec<f64> = match self {
            MatrixType::Type1 => {
                let mut v = vec![1.0 / k; n];
                v[n - 1] = 1.0; // store ascending: the single 1 is largest
                v
            }
            MatrixType::Type2 => {
                let mut v = vec![1.0; n];
                v[0] = 1.0 / k;
                v
            }
            MatrixType::Type3 => (0..n)
                .map(|i| k.powf(-(i as f64) / ((nf - 1.0).max(1.0))))
                .rev()
                .collect(),
            MatrixType::Type4 => (0..n)
                .map(|i| 1.0 - (i as f64 / (nf - 1.0).max(1.0)) * (1.0 - 1.0 / k))
                .rev()
                .collect(),
            MatrixType::Type5 => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed_0005);
                let lnlo = (1.0 / k).ln();
                let mut v: Vec<f64> = (0..n)
                    .map(|_| (rng.gen_range(lnlo..0.0f64)).exp())
                    .collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            }
            MatrixType::Type6 => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed_0006);
                let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            }
            MatrixType::Type7 => {
                let mut v: Vec<f64> = (1..n).map(|i| ULP * i as f64).collect();
                v.push(1.0);
                v
            }
            MatrixType::Type8 => {
                let mut v = Vec::with_capacity(n);
                v.push(ULP);
                let s = ULP.sqrt();
                v.extend((2..n).map(|i| 1.0 + i as f64 * s));
                if n > 1 {
                    v.push(2.0);
                }
                v
            }
            MatrixType::Type9 => (0..n).map(|i| 1.0 + 100.0 * ULP * i as f64).collect(),
            _ => return None,
        };
        lam.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(lam)
    }

    /// Generate an `n × n` instance. `seed` controls both random spectra
    /// and the random eigenvector weights of the prescribed-spectrum types.
    pub fn generate(self, n: usize, seed: u64) -> SymTridiag {
        assert!(n >= 1, "matrix dimension must be positive");
        if let Some(lam) = self.prescribed_spectrum(n, seed) {
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed.wrapping_mul(0x9e37_79b9)
                    .wrapping_add(self.index() as u64),
            );
            // Random positive weights bounded away from zero so the
            // reconstruction stays well conditioned.
            let weights: Vec<f64> = (0..n)
                .map(|_| rng.gen_range(0.05..1.0f64))
                .map(|u| u * u)
                .collect();
            return jacobi_from_spectrum(&lam, &weights);
        }
        match self {
            MatrixType::Type10 => SymTridiag::toeplitz121(n),
            MatrixType::Type11 => wilkinson(n),
            MatrixType::Type12 => clement(n),
            MatrixType::Type13 => legendre(n),
            MatrixType::Type14 => laguerre(n),
            MatrixType::Type15 => hermite(n),
            _ => unreachable!("prescribed-spectrum types handled above"),
        }
    }
}

/// Wilkinson matrix W⁺: diagonal `|i − (n−1)/2|` descending to 0 in the
/// middle, unit off-diagonals. Famous for its pairs of nearly-equal
/// eigenvalues.
pub fn wilkinson(n: usize) -> SymTridiag {
    let m = (n as f64 - 1.0) / 2.0;
    let d = (0..n).map(|i| (i as f64 - m).abs()).collect();
    SymTridiag::new(d, vec![1.0; n.saturating_sub(1)])
}

/// Clement matrix: zero diagonal, `e_i = sqrt((i+1)(n−1−i))`. Spectrum is
/// exactly `±(n−1), ±(n−3), …` (0 included for odd n).
pub fn clement(n: usize) -> SymTridiag {
    let e = (0..n.saturating_sub(1))
        .map(|i| (((i + 1) * (n - 1 - i)) as f64).sqrt())
        .collect();
    SymTridiag::new(vec![0.0; n], e)
}

/// Jacobi matrix of the Legendre polynomials: zero diagonal,
/// `e_i = i/sqrt(4i² − 1)`. Eigenvalues are the Gauss–Legendre nodes.
pub fn legendre(n: usize) -> SymTridiag {
    let e = (1..n)
        .map(|i| {
            let i = i as f64;
            i / (4.0 * i * i - 1.0).sqrt()
        })
        .collect();
    SymTridiag::new(vec![0.0; n], e)
}

/// Jacobi matrix of the Laguerre polynomials: `d_i = 2i + 1`, `e_i = i`.
/// Eigenvalues are the (positive) Gauss–Laguerre nodes.
pub fn laguerre(n: usize) -> SymTridiag {
    let d = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
    let e = (1..n).map(|i| i as f64).collect();
    SymTridiag::new(d, e)
}

/// Jacobi matrix of the Hermite polynomials: zero diagonal,
/// `e_i = sqrt(i/2)`. Eigenvalues are the Gauss–Hermite nodes.
pub fn hermite(n: usize) -> SymTridiag {
    let e = (1..n).map(|i| (i as f64 / 2.0).sqrt()).collect();
    SymTridiag::new(vec![0.0; n], e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sturm_count;

    #[test]
    fn all_types_generate_finite_matrices() {
        for t in MatrixType::ALL {
            let m = t.generate(40, 1);
            assert_eq!(m.n(), 40, "type {}", t.index());
            assert!(!m.has_non_finite(), "type {}", t.index());
        }
    }

    #[test]
    fn index_roundtrip() {
        for t in MatrixType::ALL {
            assert_eq!(MatrixType::from_index(t.index()), Some(t));
        }
        assert_eq!(MatrixType::from_index(0), None);
        assert_eq!(MatrixType::from_index(16), None);
    }

    #[test]
    fn prescribed_types_have_their_spectrum() {
        // Sturm counts on the generated matrix must locate every
        // prescribed eigenvalue (allowing clustered types a tolerance).
        for t in [MatrixType::Type3, MatrixType::Type4, MatrixType::Type6] {
            let n = 30;
            let m = t.generate(n, 3);
            let lam = t.prescribed_spectrum(n, 3).unwrap();
            for (k, &l) in lam.iter().enumerate() {
                let tol = 1e-8 * l.abs().max(1.0);
                assert!(
                    sturm_count(&m, l - tol) <= k && sturm_count(&m, l + tol) > k,
                    "type {} eigenvalue {k} = {l}",
                    t.index()
                );
            }
        }
    }

    #[test]
    fn clement_spectrum_is_exact_integers() {
        let n = 9;
        let m = clement(n);
        // Spectrum = {-8, -6, ..., 6, 8}.
        for k in 0..n {
            let lam = -8.0 + 2.0 * k as f64;
            assert_eq!(sturm_count(&m, lam - 1e-9), k);
            assert_eq!(sturm_count(&m, lam + 1e-9), k + 1);
        }
    }

    #[test]
    fn wilkinson_is_symmetric_about_middle() {
        let m = wilkinson(21);
        assert_eq!(m.d[0], 10.0);
        assert_eq!(m.d[10], 0.0);
        assert_eq!(m.d[20], 10.0);
        assert!(m.e.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn legendre_nodes_lie_in_unit_interval() {
        let m = legendre(16);
        let (lo, hi) = m.gershgorin_bounds();
        assert!(lo >= -1.1 && hi <= 1.1);
        assert_eq!(sturm_count(&m, 1.0), 16);
        assert_eq!(sturm_count(&m, -1.0), 0);
    }

    #[test]
    fn laguerre_nodes_are_positive() {
        let m = laguerre(12);
        assert_eq!(sturm_count(&m, 0.0), 0);
    }

    #[test]
    fn type2_clusters_force_tiny_offdiagonals() {
        let m = MatrixType::Type2.generate(50, 9);
        let tiny = m.e.iter().filter(|x| x.abs() < 1e-6).count();
        assert!(
            tiny > 30,
            "expected massive near-reducibility, got {tiny} tiny entries"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = MatrixType::Type6.generate(20, 5);
        let b = MatrixType::Type6.generate(20, 5);
        let c = MatrixType::Type6.generate(20, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
