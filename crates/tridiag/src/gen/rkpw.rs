//! Jacobi-matrix reconstruction from spectral data.
//!
//! Given nodes `λ` and positive weights `w`, the RKPW algorithm
//! (Rutishauser–Kahan–Pal–Walker, as stabilized by Gragg & Harrod 1984 and
//! popularized by Gautschi's OPQ `lanczos.m`) reconstructs in O(n²) the
//! unique symmetric tridiagonal (Jacobi) matrix whose eigenvalues are `λ`
//! and whose eigenvector first components squared are `w / Σw`.
//!
//! This is how the prescribed-spectrum test matrices of the paper's
//! Table III (types 1–9) are built: the spectrum is exact by construction
//! and the random weights randomize the eigenvector structure, at O(n²)
//! cost instead of the O(n³) dense `dlatms` route (which exists in
//! [`crate::dense_with_spectrum`] and is used to cross-validate this one).

use crate::SymTridiag;

/// Reconstruct the Jacobi matrix with eigenvalues `nodes` and first-row
/// eigenvector weights proportional to `weights`.
///
/// Panics if lengths differ, if fewer than one node is given, or if any
/// weight is non-positive.
pub fn jacobi_from_spectrum(nodes: &[f64], weights: &[f64]) -> SymTridiag {
    let n = nodes.len();
    assert_eq!(n, weights.len(), "nodes/weights length mismatch");
    assert!(n >= 1, "need at least one node");
    assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");

    // p0 holds the evolving diagonal (initialized with the nodes);
    // p1 holds [total weight, β₁, β₂, …] with β the *squared*
    // off-diagonals. One node/weight pair is absorbed per outer step.
    let mut p0: Vec<f64> = nodes.to_vec();
    let mut p1: Vec<f64> = vec![0.0; n];
    p1[0] = weights[0];

    for k in 0..n - 1 {
        let mut pn = weights[k + 1];
        let xlam = nodes[k + 1];
        let mut gam = 1.0f64;
        let mut sig = 0.0f64;
        let mut t = 0.0f64;
        for j in 0..=k + 1 {
            let rho = p1[j] + pn;
            let tmp = gam * rho;
            let tsig = sig;
            if rho <= 0.0 {
                gam = 1.0;
                sig = 0.0;
            } else {
                gam = p1[j] / rho;
                sig = pn / rho;
            }
            let tk = sig * (p0[j] - xlam) - gam * t;
            p0[j] -= tk - t;
            t = tk;
            pn = if sig <= 0.0 {
                tsig * p1[j]
            } else {
                (t * t) / sig
            };
            p1[j] = tmp;
        }
    }

    let d = p0;
    // p1[0] is the total weight; β_i = p1[i] for i ≥ 1 are squared
    // off-diagonals (non-negative up to rounding).
    let e: Vec<f64> = p1[1..].iter().map(|&b| b.max(0.0).sqrt()).collect();
    SymTridiag::new(d, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Eigen-decomposition of the (1,2,1) Toeplitz matrix in closed form:
    /// λ_k = 2 − 2cos(kπ/(n+1)), v_k(0) ∝ sin(kπ/(n+1)).
    fn toeplitz_spectral_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let nodes = (1..=n).map(|k| 2.0 - 2.0 * (k as f64 * h).cos()).collect();
        // First eigenvector components: sqrt(2/(n+1)) sin(k h); weights are
        // their squares.
        let weights = (1..=n)
            .map(|k| 2.0 / (n as f64 + 1.0) * (k as f64 * h).sin().powi(2))
            .collect();
        (nodes, weights)
    }

    #[test]
    fn recovers_the_toeplitz_matrix() {
        for n in [1usize, 2, 3, 8, 25] {
            let (nodes, weights) = toeplitz_spectral_data(n);
            let t = jacobi_from_spectrum(&nodes, &weights);
            for i in 0..n {
                assert!((t.d[i] - 2.0).abs() < 1e-10, "n={n} d[{i}]={}", t.d[i]);
            }
            for i in 0..n - 1 {
                assert!(
                    (t.e[i].abs() - 1.0).abs() < 1e-10,
                    "n={n} e[{i}]={}",
                    t.e[i]
                );
            }
        }
    }

    #[test]
    fn trace_matches_node_sum() {
        let nodes = vec![0.1, 0.5, 2.0, 7.0];
        let weights = vec![0.2, 0.3, 0.4, 0.1];
        let t = jacobi_from_spectrum(&nodes, &weights);
        let trace: f64 = t.d.iter().sum();
        assert!((trace - 9.6).abs() < 1e-12);
    }

    #[test]
    fn frobenius_matches_node_square_sum() {
        let nodes = vec![-1.0, 0.25, 1.5];
        let weights = vec![1.0, 2.0, 3.0];
        let t = jacobi_from_spectrum(&nodes, &weights);
        let fro2: f64 =
            t.d.iter().map(|x| x * x).sum::<f64>() + 2.0 * t.e.iter().map(|x| x * x).sum::<f64>();
        let want: f64 = nodes.iter().map(|x| x * x).sum();
        assert!((fro2 - want).abs() < 1e-12);
    }

    #[test]
    fn sturm_counts_confirm_spectrum() {
        let nodes = vec![-2.0, -0.5, 0.0, 1.0, 3.5];
        let weights = vec![0.1, 0.3, 0.2, 0.25, 0.15];
        let t = jacobi_from_spectrum(&nodes, &weights);
        for (k, &lam) in nodes.iter().enumerate() {
            assert_eq!(crate::sturm_count(&t, lam - 1e-8), k);
            assert_eq!(crate::sturm_count(&t, lam + 1e-8), k + 1);
        }
    }

    #[test]
    fn repeated_nodes_yield_near_reducible_matrix() {
        // Repeated eigenvalues cannot belong to an unreduced tridiagonal;
        // the reconstruction must push some off-diagonal to ~0.
        let nodes = vec![1.0, 1.0, 1.0, 2.0];
        let weights = vec![0.25, 0.25, 0.25, 0.25];
        let t = jacobi_from_spectrum(&nodes, &weights);
        let min_e = t.e.iter().fold(f64::INFINITY, |m, &x| m.min(x.abs()));
        assert!(min_e < 1e-7, "min off-diagonal {min_e}");
        let trace: f64 = t.d.iter().sum();
        assert!((trace - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        let t = jacobi_from_spectrum(&[42.0], &[1.0]);
        assert_eq!(t.d, vec![42.0]);
        assert!(t.e.is_empty());
    }
}
