//! "Application-like" matrices for Figure 10.
//!
//! The paper times a set of matrices from the LAPACK `stetester` collection
//! (electronic-structure and FEM spectra, sizes ≲ 8 000). Those files are
//! not available offline, so this module synthesizes matrices reproducing
//! the spectral *features* the application set stresses: tight clusters
//! (glued Wilkinson), near-uniform interior spectra (Jacobi matrices of
//! orthogonal polynomials), and mixed random spectra with clustered tails.

use super::{jacobi_from_spectrum, MatrixType};
use crate::SymTridiag;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A named application-like test case.
pub struct ApplicationMatrix {
    pub name: String,
    pub matrix: SymTridiag,
}

/// Glued Wilkinson matrix: `blocks` copies of W⁺ of size `block_n`, glued
/// with coupling `glue`. Produces dense clusters of nearly-identical
/// eigenvalues — the classic hard case for tridiagonal eigensolvers.
pub fn glued_wilkinson(block_n: usize, blocks: usize, glue: f64) -> SymTridiag {
    assert!(block_n >= 1 && blocks >= 1);
    let w = super::wilkinson(block_n);
    let n = block_n * blocks;
    let mut d = Vec::with_capacity(n);
    let mut e = Vec::with_capacity(n - 1);
    for b in 0..blocks {
        d.extend_from_slice(&w.d);
        if b + 1 < blocks {
            e.extend_from_slice(&w.e);
            e.push(glue);
        } else {
            e.extend_from_slice(&w.e);
        }
    }
    SymTridiag::new(d, e)
}

/// Random spectrum with `clusters` tight clusters plus a uniform background
/// — mimics electronic-structure spectra (core states cluster, valence
/// states spread).
fn clustered_spectrum(n: usize, clusters: usize, seed: u64) -> SymTridiag {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut lam = Vec::with_capacity(n);
    let per = n / (2 * clusters.max(1));
    for c in 0..clusters {
        let center = -10.0 + c as f64;
        for _ in 0..per {
            lam.push(center + rng.gen_range(-1e-10..1e-10));
        }
    }
    while lam.len() < n {
        lam.push(rng.gen_range(0.0..10.0));
    }
    lam.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Deduplicate exact ties to keep the reconstruction well posed.
    for i in 1..n {
        if lam[i] <= lam[i - 1] {
            lam[i] = lam[i - 1] + 1e-13 * lam[i - 1].abs().max(1.0);
        }
    }
    let weights: Vec<f64> = (0..n)
        .map(|_| rng.gen_range(0.05f64..1.0).powi(2))
        .collect();
    jacobi_from_spectrum(&lam, &weights)
}

/// The Figure 10 stand-in suite at the given sizes.
pub fn application_suite(sizes: &[usize]) -> Vec<ApplicationMatrix> {
    let mut out = Vec::new();
    for &n in sizes {
        let bn = (n / 4).max(3) | 1; // odd Wilkinson blocks
        out.push(ApplicationMatrix {
            name: format!("glued-wilkinson-{n}"),
            matrix: glued_wilkinson(bn, n.div_ceil(bn).max(1), 1e-8),
        });
        out.push(ApplicationMatrix {
            name: format!("legendre-{n}"),
            matrix: super::legendre(n),
        });
        out.push(ApplicationMatrix {
            name: format!("hermite-{n}"),
            matrix: super::hermite(n),
        });
        out.push(ApplicationMatrix {
            name: format!("electronic-{n}"),
            matrix: clustered_spectrum(n, 4, n as u64),
        });
        out.push(ApplicationMatrix {
            name: format!("uniform-{n}"),
            matrix: MatrixType::Type4.generate(n, n as u64),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sturm_count;

    #[test]
    fn glued_wilkinson_dimensions() {
        let t = glued_wilkinson(7, 3, 1e-9);
        assert_eq!(t.n(), 21);
        assert_eq!(t.e.len(), 20);
        // Glue entries sit at block boundaries.
        assert_eq!(t.e[6], 1e-9);
        assert_eq!(t.e[13], 1e-9);
    }

    #[test]
    fn glued_wilkinson_has_eigenvalue_clusters() {
        // Three weakly-coupled identical blocks → eigenvalues in triples.
        let t = glued_wilkinson(5, 3, 1e-10);
        // W+(5) has an eigenvalue near its largest diagonal ≈ 2.?; instead
        // of exact values, check the counts jump by ≥3 over tiny intervals
        // around the top eigenvalue of one block.
        let single = super::super::wilkinson(5);
        let (lo, hi) = single.gershgorin_bounds();
        // Find the largest eigenvalue of the single block by bisection.
        let (mut a, mut b) = (lo, hi);
        for _ in 0..200 {
            let m = 0.5 * (a + b);
            if sturm_count(&single, m) >= 5 {
                b = m;
            } else {
                a = m;
            }
        }
        let top = 0.5 * (a + b);
        let c = sturm_count(&t, top + 1e-6) - sturm_count(&t, top - 1e-6);
        assert_eq!(c, 3, "top eigenvalue should appear once per block");
    }

    #[test]
    fn suite_covers_requested_sizes() {
        let suite = application_suite(&[24, 48]);
        assert_eq!(suite.len(), 10);
        assert!(suite.iter().all(|m| !m.matrix.has_non_finite()));
        assert!(suite.iter().any(|m| m.name == "legendre-24"));
    }
}
