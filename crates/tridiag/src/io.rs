//! Plain-text serialization of symmetric tridiagonal matrices.
//!
//! Format (whitespace/line tolerant):
//!
//! ```text
//! n
//! d_0 d_1 … d_{n−1}
//! e_0 e_1 … e_{n−2}
//! ```
//!
//! Lines starting with `#` are comments. Used by the `dcst` CLI and handy
//! for getting real matrices in and out of the solvers.

use crate::SymTridiag;
use std::io::{BufRead, Write};

/// Errors from [`read_tridiag`].
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write `t` in the text format.
pub fn write_tridiag<W: Write>(mut w: W, t: &SymTridiag) -> std::io::Result<()> {
    writeln!(w, "# symmetric tridiagonal: n, diagonal, off-diagonal")?;
    writeln!(w, "{}", t.n())?;
    for chunk in t.d.chunks(8) {
        let line: Vec<String> = chunk.iter().map(|x| format!("{x:.17e}")).collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    writeln!(w, "# off-diagonal")?;
    for chunk in t.e.chunks(8) {
        let line: Vec<String> = chunk.iter().map(|x| format!("{x:.17e}")).collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    Ok(())
}

/// Read a matrix in the text format.
pub fn read_tridiag<R: BufRead>(r: R) -> Result<SymTridiag, IoError> {
    let mut tokens: Vec<f64> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("");
        for tok in body.split_whitespace() {
            tokens.push(
                tok.parse::<f64>()
                    .map_err(|e| IoError::Parse(format!("bad number '{tok}': {e}")))?,
            );
        }
    }
    if tokens.is_empty() {
        return Err(IoError::Parse("empty input".into()));
    }
    let n = tokens[0] as usize;
    if tokens[0].fract() != 0.0 || tokens[0] < 0.0 {
        return Err(IoError::Parse(format!("bad dimension {}", tokens[0])));
    }
    let want = 1 + n + n.saturating_sub(1);
    if tokens.len() != want {
        return Err(IoError::Parse(format!(
            "expected {want} numbers for n = {n}, found {}",
            tokens.len()
        )));
    }
    let d = tokens[1..1 + n].to_vec();
    let e = tokens[1 + n..].to_vec();
    Ok(SymTridiag::new(d, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = SymTridiag::new(vec![1.0, -2.5, 3e-15, 4e200], vec![0.1, -0.2, 0.3]);
        let mut buf = Vec::new();
        write_tridiag(&mut buf, &t).unwrap();
        let back = read_tridiag(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tolerates_comments_and_layout() {
        let text = "# hello\n3\n1 2\n3\n# e\n0.5 0.25\n";
        let t = read_tridiag(text.as_bytes()).unwrap();
        assert_eq!(t.d, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.e, vec![0.5, 0.25]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_tridiag("".as_bytes()).is_err());
        assert!(read_tridiag("2\n1.0\n".as_bytes()).is_err()); // missing numbers
        assert!(read_tridiag("2\n1.0 2.0\nxyz\n".as_bytes()).is_err());
        assert!(read_tridiag("-3\n".as_bytes()).is_err());
    }

    #[test]
    fn singleton_matrix() {
        let t = SymTridiag::new(vec![42.0], vec![]);
        let mut buf = Vec::new();
        write_tridiag(&mut buf, &t).unwrap();
        assert_eq!(read_tridiag(&buf[..]).unwrap(), t);
    }
}
