//! Symmetric tridiagonal matrices and the paper's test-matrix suite.
//!
//! Provides the [`SymTridiag`] type consumed by every eigensolver in the
//! workspace, Sturm-sequence eigenvalue counting, Householder reduction of
//! dense symmetric matrices to tridiagonal form (plus the back-transform,
//! so the full `A = QTQᵀ` pipeline of the paper's Eq. (1)–(3) exists), and
//! generators for all fifteen matrix types of the paper's Table III plus
//! the "application-like" set used for Figure 10.

pub mod gen;
mod householder;
pub mod io;
mod tridiag;

pub use gen::MatrixType;
pub use householder::{apply_q, dense_with_spectrum, tridiagonalize, HouseholderFactors};
pub use tridiag::{sturm_count, sturm_counts_batch, SymTridiag};
