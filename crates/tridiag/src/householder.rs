//! Householder reduction of a dense symmetric matrix to tridiagonal form
//! (`dsytd2` analogue) and the corresponding back-transformation, giving the
//! full symmetric-eigensolver pipeline `A = Q T Qᵀ = (QV) Λ (QV)ᵀ` of the
//! paper's equations (1)–(3).

use crate::SymTridiag;
use dcst_matrix::{dot, gemm, gemv, nrm2, Matrix};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Householder reflectors produced by [`tridiagonalize`]: the essential
/// parts of the vectors live below the first subdiagonal of `vs`, with
/// scaling factors `tau` (reflector `i` reduces column `i`).
pub struct HouseholderFactors {
    vs: Matrix,
    tau: Vec<f64>,
}

/// Generate an elementary reflector `H = I − τ v vᵀ`, `v[0] = 1`, such that
/// `H [alpha; x] = [beta; 0]` (LAPACK `dlarfg`). Overwrites `x` with the
/// essential part of `v`; returns `(beta, tau)`.
fn larfg(alpha: f64, x: &mut [f64]) -> (f64, f64) {
    let xnorm = nrm2(x);
    if xnorm == 0.0 {
        return (alpha, 0.0);
    }
    let beta = -dcst_matrix::util::sign(dcst_matrix::util::lapy2(alpha, xnorm), alpha);
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for xi in x {
        *xi *= scale;
    }
    (beta, tau)
}

/// Reduce dense symmetric `a` (full storage; the strictly upper triangle is
/// ignored) to tridiagonal `T = Qᵀ A Q`, returning `T` and the factored `Q`.
pub fn tridiagonalize(a: &Matrix) -> (SymTridiag, HouseholderFactors) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    let mut w = a.clone();
    let mut tau = vec![0.0; n.saturating_sub(1)];
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n.saturating_sub(1)];
    for i in 0..n.saturating_sub(1) {
        // Reduce column i: zero out rows i+2..n.
        let alpha = w[(i + 1, i)];
        let (beta, t) = {
            let col = w.col_mut(i);
            larfg(alpha, &mut col[i + 2..])
        };
        tau[i] = t;
        e[i] = beta;
        d[i] = w[(i, i)];
        if t != 0.0 {
            // v = [1; w[i+2.., i]] acting on the trailing block
            // A2 = w[i+1.., i+1..] (symmetric, stored fully).
            let m = n - i - 1;
            let mut v = vec![0.0; m];
            v[0] = 1.0;
            v[1..].copy_from_slice(&w.col(i)[i + 2..]);
            // p = τ · A2 · v
            let mut p = vec![0.0; m];
            {
                let a2 = &w.as_slice()[(i + 1) + (i + 1) * n..];
                gemv(m, m, t, a2, n, &v, 0.0, &mut p);
            }
            // p ← p − (τ/2 · pᵀv) v
            let c = 0.5 * t * dot(&p, &v);
            for (pi, vi) in p.iter_mut().zip(&v) {
                *pi -= c * vi;
            }
            // A2 ← A2 − v pᵀ − p vᵀ (full storage update keeps symmetry).
            for jj in 0..m {
                let col = &mut w.col_mut(i + 1 + jj)[i + 1..];
                let (pj, vj) = (p[jj], v[jj]);
                for ii in 0..m {
                    col[ii] -= v[ii] * pj + p[ii] * vj;
                }
            }
        }
    }
    if n > 0 {
        d[n - 1] = w[(n - 1, n - 1)];
        if n > 1 {
            d[n - 2] = w[(n - 2, n - 2)];
        }
    }
    (SymTridiag::new(d, e), HouseholderFactors { vs: w, tau })
}

/// Overwrite `v` with `Q · v`, where `Q` comes from [`tridiagonalize`]
/// (`dormtr('L','L','N')` analogue). Used to back-transform tridiagonal
/// eigenvectors to eigenvectors of the original dense matrix.
pub fn apply_q(q: &HouseholderFactors, v: &mut Matrix) {
    let n = q.vs.rows();
    assert_eq!(v.rows(), n, "dimension mismatch");
    let ncols = v.cols();
    if ncols == 0 {
        return;
    }
    // Q = H_0 H_1 … H_{n-2}; multiply from the left applying in reverse.
    // Each rank-one update `V2 ← V2 − τ u (uᵀ V2)` is expressed as two GEMM
    // calls so the whole back-transformation runs on the packed kernel.
    let mut u = vec![0.0; n];
    let mut s = vec![0.0; ncols];
    for i in (0..n.saturating_sub(1)).rev() {
        let t = q.tau[i];
        if t == 0.0 {
            continue;
        }
        let m = n - i - 1;
        u[0] = 1.0;
        u[1..m].copy_from_slice(&q.vs.col(i)[i + 2..]);
        let v2 = &mut v.as_mut_slice()[i + 1..];
        // s = τ · uᵀ V2  (1 × ncols row vector).
        gemm(1, ncols, m, t, &u[..m], 1, v2, n, 0.0, &mut s, 1);
        // V2 ← V2 − u s  (rank-one update).
        gemm(m, ncols, 1, -1.0, &u[..m], m, &s, 1, 1.0, v2, n);
    }
}

/// A random dense symmetric matrix with the prescribed spectrum:
/// `A = H_k … H_1 · diag(λ) · H_1 … H_k` for random reflectors `H_j`
/// (LAPACK `dlatms`-style). O(n³) — meant for verification-scale inputs.
pub fn dense_with_spectrum(lambda: &[f64], seed: u64) -> Matrix {
    let n = lambda.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut a = Matrix::from_fn(n, n, |i, j| if i == j { lambda[i] } else { 0.0 });
    let mut w = vec![0.0; n];
    for _ in 0..n.min(32) {
        // Random unit vector u; apply (I − 2uuᵀ) A (I − 2uuᵀ).
        let mut u: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm = nrm2(&u);
        if norm == 0.0 {
            continue;
        }
        for ui in &mut u {
            *ui /= norm;
        }
        gemv(n, n, 1.0, a.as_slice(), n, &u, 0.0, &mut w); // w = A u
        let uw = dot(&u, &w);
        // A ← A − 2uwᵀ − 2wuᵀ + 4(uᵀw)uuᵀ
        for j in 0..n {
            let (uj, wj) = (u[j], w[j]);
            let col = a.col_mut(j);
            for i in 0..n {
                col[i] += -2.0 * u[i] * wj - 2.0 * w[i] * uj + 4.0 * uw * u[i] * uj;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::orthogonality_error;

    #[test]
    fn larfg_annihilates() {
        let mut x = vec![3.0, 4.0];
        let (beta, tau) = larfg(0.0, &mut x);
        // H [0;3;4] should be [beta;0;0] with |beta| = 5.
        assert!((beta.abs() - 5.0).abs() < 1e-12);
        assert!(tau != 0.0);
        let v = [1.0, x[0], x[1]];
        let orig = [0.0, 3.0, 4.0];
        let s = tau * dot(&v, &orig);
        let h0 = orig[0] - s * v[0];
        let h1 = orig[1] - s * v[1];
        let h2 = orig[2] - s * v[2];
        assert!((h0 - beta).abs() < 1e-12 && h1.abs() < 1e-12 && h2.abs() < 1e-12);
    }

    #[test]
    fn larfg_zero_tail_is_identity() {
        let mut x: [f64; 0] = [];
        let (beta, tau) = larfg(5.0, &mut x);
        assert_eq!((beta, tau), (5.0, 0.0));
    }

    #[test]
    fn tridiagonalization_preserves_similarity() {
        // A = Q T Qᵀ means applying Q to the identity and checking
        // Qᵀ A Q is tridiagonal — verified via matvec residuals on T.
        let lam = [1.0, 2.5, -0.5, 4.0, 0.0, 3.0];
        let a = dense_with_spectrum(&lam, 7);
        let (t, q) = tridiagonalize(&a);
        // Q as dense: apply to identity.
        let n = lam.len();
        let mut qd = Matrix::identity(n);
        apply_q(&q, &mut qd);
        assert!(orthogonality_error(&qd) < 1e-14, "Q orthogonal");
        // Check A·q_j ≈ (Q T)·e_j column by column: A Q = Q T.
        let td = t.to_dense();
        let mut aq = vec![0.0; n];
        let mut qt = vec![0.0; n];
        for j in 0..n {
            gemv(n, n, 1.0, a.as_slice(), n, qd.col(j), 0.0, &mut aq);
            gemv(n, n, 1.0, qd.as_slice(), n, td.col(j), 0.0, &mut qt);
            for i in 0..n {
                assert!((aq[i] - qt[i]).abs() < 1e-12, "col {j} row {i}");
            }
        }
    }

    #[test]
    fn tridiagonalization_of_tridiagonal_is_noop_shape() {
        let t0 = SymTridiag::new(vec![1.0, 2.0, 3.0], vec![0.5, 0.25]);
        let (t1, _) = tridiagonalize(&t0.to_dense());
        for i in 0..3 {
            assert!((t1.d[i] - t0.d[i]).abs() < 1e-14);
        }
        for i in 0..2 {
            assert!((t1.e[i].abs() - t0.e[i].abs()).abs() < 1e-14);
        }
    }

    #[test]
    fn spectrum_is_preserved_by_generator() {
        // Trace and Frobenius norm are spectral invariants.
        let lam = [3.0, -1.0, 2.0, 2.0, 5.0];
        let a = dense_with_spectrum(&lam, 11);
        let trace: f64 = (0..5).map(|i| a[(i, i)]).sum();
        assert!((trace - 11.0).abs() < 1e-10);
        let fro2: f64 = a.as_slice().iter().map(|x| x * x).sum();
        let want: f64 = lam.iter().map(|l| l * l).sum();
        assert!((fro2 - want).abs() < 1e-9);
        // Symmetry.
        for i in 0..5 {
            for j in 0..5 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }
}
