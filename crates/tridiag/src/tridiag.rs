//! The symmetric tridiagonal matrix type and basic spectral tools.

use dcst_matrix::util::SAFE_MIN;

/// A symmetric tridiagonal matrix stored as its diagonal `d` (length n) and
/// off-diagonal `e` (length n−1).
#[derive(Clone, Debug, PartialEq)]
pub struct SymTridiag {
    pub d: Vec<f64>,
    pub e: Vec<f64>,
}

impl SymTridiag {
    /// Build from diagonal and off-diagonal. Panics on length mismatch.
    pub fn new(d: Vec<f64>, e: Vec<f64>) -> Self {
        assert!(
            d.is_empty() && e.is_empty() || e.len() + 1 == d.len(),
            "off-diagonal must be one shorter than diagonal ({} vs {})",
            e.len(),
            d.len()
        );
        SymTridiag { d, e }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// The (1,2,1) Toeplitz matrix (Table III type 10). Eigenvalues are
    /// known in closed form: `2 − 2 cos(kπ/(n+1))`.
    pub fn toeplitz121(n: usize) -> Self {
        SymTridiag {
            d: vec![2.0; n],
            e: vec![1.0; n.saturating_sub(1)],
        }
    }

    /// `y = T x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        assert!(x.len() == n && y.len() == n);
        for i in 0..n {
            let mut acc = self.d[i] * x[i];
            if i > 0 {
                acc += self.e[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.e[i] * x[i + 1];
            }
            y[i] = acc;
        }
    }

    /// Max-norm `max(|d_i|, |e_i|)` (LAPACK `dlanst('M')`).
    pub fn max_norm(&self) -> f64 {
        let dm = self.d.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let em = self.e.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        dm.max(em)
    }

    /// Gershgorin interval certainly containing the whole spectrum.
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let n = self.n();
        if n == 0 {
            return (0.0, 0.0);
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let mut r = 0.0;
            if i > 0 {
                r += self.e[i - 1].abs();
            }
            if i + 1 < n {
                r += self.e[i].abs();
            }
            lo = lo.min(self.d[i] - r);
            hi = hi.max(self.d[i] + r);
        }
        (lo, hi)
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.d.iter().chain(&self.e).any(|x| !x.is_finite())
    }

    /// The dense representation (for small-scale verification only).
    pub fn to_dense(&self) -> dcst_matrix::Matrix {
        let n = self.n();
        dcst_matrix::Matrix::from_fn(n, n, |i, j| {
            if i == j {
                self.d[i]
            } else if i.abs_diff(j) == 1 {
                self.e[i.min(j)]
            } else {
                0.0
            }
        })
    }
}

/// Number of eigenvalues of `t` strictly less than `x`, by the classic
/// Sturm / LDLᵀ inertia recurrence with underflow safeguarding.
pub fn sturm_count(t: &SymTridiag, x: f64) -> usize {
    let n = t.n();
    let mut count = 0usize;
    let mut q = 1.0f64; // previous pivot, q_0 sentinel
    for i in 0..n {
        let e2 = if i > 0 { t.e[i - 1] * t.e[i - 1] } else { 0.0 };
        q = (t.d[i] - x) - if i > 0 { e2 / q } else { 0.0 };
        if q.abs() < SAFE_MIN {
            // Perturb an exactly-zero pivot, as in dstebz.
            q = -SAFE_MIN;
        }
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// [`sturm_count`] for a batch of shifts at once: `counts[j]` receives the
/// number of eigenvalues strictly below `xs[j]`. Per-lane arithmetic is the
/// identical expression sequence, so each lane's result is bit-for-bit the
/// scalar `sturm_count(t, xs[j])` — but the row loop is outermost, so the
/// per-row pivot divisions of different shifts are independent and pipeline
/// (the scalar recurrence serializes on ~15-cycle division latency, which
/// dominates bisection of many eigenvalues).
pub fn sturm_counts_batch(t: &SymTridiag, xs: &[f64], counts: &mut [usize]) {
    let m = xs.len();
    assert!(counts.len() >= m);
    counts[..m].fill(0);
    if m == 0 {
        return;
    }
    let n = t.n();
    let mut q = vec![1.0f64; m];
    for i in 0..n {
        if i == 0 {
            for j in 0..m {
                let mut p = t.d[0] - xs[j];
                if p.abs() < SAFE_MIN {
                    p = -SAFE_MIN;
                }
                if p < 0.0 {
                    counts[j] += 1;
                }
                q[j] = p;
            }
        } else {
            let e2 = t.e[i - 1] * t.e[i - 1];
            let di = t.d[i];
            for j in 0..m {
                let mut p = (di - xs[j]) - e2 / q[j];
                if p.abs() < SAFE_MIN {
                    p = -SAFE_MIN;
                }
                if p < 0.0 {
                    counts[j] += 1;
                }
                q[j] = p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toeplitz_eigs(n: usize) -> Vec<f64> {
        (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect()
    }

    #[test]
    fn matvec_small() {
        let t = SymTridiag::new(vec![1.0, 2.0, 3.0], vec![4.0, 5.0]);
        let mut y = vec![0.0; 3];
        t.matvec(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 11.0, 8.0]);
    }

    #[test]
    fn max_norm_and_gershgorin() {
        let t = SymTridiag::toeplitz121(5);
        assert_eq!(t.max_norm(), 2.0);
        let (lo, hi) = t.gershgorin_bounds();
        assert!(lo <= 0.0 && hi >= 4.0);
    }

    #[test]
    fn sturm_counts_match_known_spectrum() {
        let n = 12;
        let t = SymTridiag::toeplitz121(n);
        let eigs = toeplitz_eigs(n);
        for (k, &lam) in eigs.iter().enumerate() {
            assert_eq!(sturm_count(&t, lam - 1e-9), k, "below eigenvalue {k}");
            assert_eq!(sturm_count(&t, lam + 1e-9), k + 1, "above eigenvalue {k}");
        }
        assert_eq!(sturm_count(&t, -1.0), 0);
        assert_eq!(sturm_count(&t, 5.0), n);
    }

    #[test]
    fn sturm_handles_exact_pivot_breakdown() {
        // x equal to a diagonal entry of a diagonal matrix hits q == 0.
        let t = SymTridiag::new(vec![1.0, 2.0, 3.0], vec![0.0, 0.0]);
        assert_eq!(sturm_count(&t, 2.0), 2); // 1.0 < 2.0 and the perturbed zero pivot
    }

    #[test]
    fn dense_agrees_with_matvec() {
        let t = SymTridiag::new(vec![1.0, -2.0, 0.5, 3.0], vec![0.25, -1.0, 2.0]);
        let a = t.to_dense();
        let x = [1.0, 2.0, -1.0, 0.5];
        let mut y1 = vec![0.0; 4];
        t.matvec(&x, &mut y1);
        let mut y2 = vec![0.0; 4];
        dcst_matrix::gemv(4, 4, 1.0, a.as_slice(), 4, &x, 0.0, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-15);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let t = SymTridiag::new(vec![], vec![]);
        assert_eq!(t.n(), 0);
        let t1 = SymTridiag::new(vec![7.0], vec![]);
        assert_eq!(sturm_count(&t1, 8.0), 1);
        assert_eq!(sturm_count(&t1, 6.0), 0);
    }

    #[test]
    fn non_finite_detection() {
        let t = SymTridiag::new(vec![1.0, f64::INFINITY], vec![0.0]);
        assert!(t.has_non_finite());
    }
}
