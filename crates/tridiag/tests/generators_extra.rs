//! Generator-suite coverage: spectral contracts of every Table III type,
//! Householder pipeline robustness, I/O edge cases.

use dcst_tridiag::gen::{jacobi_from_spectrum, MatrixType, K_PARAM, ULP};
use dcst_tridiag::{sturm_count, SymTridiag};

/// Count eigenvalues in [lo, hi) via Sturm sequences.
fn count_in(t: &SymTridiag, lo: f64, hi: f64) -> usize {
    sturm_count(t, hi) - sturm_count(t, lo)
}

#[test]
fn type1_one_big_rest_small() {
    let n = 64;
    let t = MatrixType::Type1.generate(n, 2);
    assert_eq!(count_in(&t, 0.5, 1.5), 1, "exactly one eigenvalue at 1");
    assert_eq!(
        count_in(&t, 0.5 / K_PARAM, 2.0 / K_PARAM),
        n - 1,
        "rest at 1/k"
    );
}

#[test]
fn type2_one_small_rest_big() {
    let n = 64;
    let t = MatrixType::Type2.generate(n, 2);
    assert_eq!(count_in(&t, 0.5, 1.5), n - 1);
    assert_eq!(count_in(&t, 0.5 / K_PARAM, 2.0 / K_PARAM), 1);
}

#[test]
fn type3_geometric_spread() {
    let n = 40;
    let t = MatrixType::Type3.generate(n, 2);
    // Largest 1, smallest 1/k, log-spaced: the midpoint in log space
    // splits the spectrum in half.
    let mid = (1.0f64 / K_PARAM).sqrt();
    let below = sturm_count(&t, mid);
    assert!((below as i64 - (n / 2) as i64).abs() <= 1, "{below}");
}

#[test]
fn type4_arithmetic_spread() {
    let n = 40;
    let t = MatrixType::Type4.generate(n, 2);
    // Arithmetic from 1/k to 1: midpoint 0.5 splits in half.
    let below = sturm_count(&t, 0.5);
    assert!((below as i64 - (n / 2) as i64).abs() <= 1, "{below}");
}

#[test]
fn type7_graded_tiny_plus_one() {
    let n = 32;
    let t = MatrixType::Type7.generate(n, 2);
    assert_eq!(count_in(&t, 0.5, 1.5), 1);
    assert_eq!(sturm_count(&t, ULP * n as f64), n - 1);
}

#[test]
fn type8_endpoint_structure() {
    let n = 32;
    let t = MatrixType::Type8.generate(n, 2);
    assert_eq!(sturm_count(&t, 0.5), 1, "one eigenvalue at ulp");
    assert_eq!(count_in(&t, 1.5, 2.5), 1, "one eigenvalue at 2");
    assert_eq!(count_in(&t, 0.5, 1.5), n - 2, "cluster at 1");
}

#[test]
fn type9_hundred_ulp_ladder() {
    let n = 16;
    let t = MatrixType::Type9.generate(n, 2);
    // Whole spectrum inside [1, 1 + 100*ulp*n].
    assert_eq!(count_in(&t, 0.999, 1.0 + 100.0 * ULP * n as f64), n);
}

#[test]
fn hermite_symmetry() {
    let t = dcst_tridiag::gen::hermite(21);
    // Gauss–Hermite nodes are symmetric about 0; odd n has a node at 0.
    let below = sturm_count(&t, -1e-12);
    let above = 21 - sturm_count(&t, 1e-12);
    assert_eq!(below, above);
    assert_eq!(count_in(&t, -1e-12, 1e-12), 1);
}

#[test]
fn clement_even_size_excludes_zero() {
    let t = dcst_tridiag::gen::clement(8);
    // Spectrum ±1, ±3, ±5, ±7 — no zero eigenvalue.
    assert_eq!(count_in(&t, -0.5, 0.5), 0);
    assert_eq!(count_in(&t, 0.5, 1.5), 1);
}

#[test]
fn rkpw_handles_wide_dynamic_range() {
    let lam: Vec<f64> = (0..20).map(|i| 10f64.powi(i - 10)).collect();
    let w = vec![1.0; 20];
    let t = jacobi_from_spectrum(&lam, &w);
    assert!(!t.has_non_finite());
    // The reconstruction is absolute-accuracy limited (≈ ε·λ_max·n), so
    // only eigenvalues above that floor keep their identity.
    let floor = f64::EPSILON * lam[19] * 20.0;
    for (k, &l) in lam.iter().enumerate() {
        if l < 10.0 * floor {
            continue;
        }
        assert!(
            sturm_count(&t, l * (1.0 + 1e-6) + floor) > k
                && sturm_count(&t, l * (1.0 - 1e-6) - floor) <= k,
            "eigenvalue {k} = {l}"
        );
    }
}

#[test]
fn householder_pipeline_on_rank_deficient_matrix() {
    use dcst_tridiag::{apply_q, dense_with_spectrum, tridiagonalize};
    // Half the spectrum is exactly zero.
    let lam: Vec<f64> = (0..12)
        .map(|i| if i < 6 { 0.0 } else { (i - 5) as f64 })
        .collect();
    let a = dense_with_spectrum(&lam, 4);
    let (t, q) = tridiagonalize(&a);
    assert_eq!(
        sturm_count(&t, 1e-10) - sturm_count(&t, -1e-10),
        6,
        "6 zero eigenvalues"
    );
    let mut ident = dcst_matrix::Matrix::identity(12);
    apply_q(&q, &mut ident);
    assert!(dcst_matrix::orthogonality_error(&ident) < 1e-13);
}

#[test]
fn application_names_are_unique() {
    let suite = dcst_tridiag::gen::application_suite(&[30, 40]);
    let mut names: Vec<&str> = suite.iter().map(|a| a.name.as_str()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before);
}

#[test]
fn io_roundtrip_of_generated_matrices() {
    use dcst_tridiag::io::{read_tridiag, write_tridiag};
    for ty in [MatrixType::Type5, MatrixType::Type11, MatrixType::Type12] {
        let t = ty.generate(33, 8);
        let mut buf = Vec::new();
        write_tridiag(&mut buf, &t).unwrap();
        let back = read_tridiag(&buf[..]).unwrap();
        assert_eq!(back, t, "type {}", ty.index());
    }
}

#[test]
fn matvec_against_dense_on_random_shapes() {
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    for n in [1usize, 2, 3, 17] {
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let e: Vec<f64> = (0..n.saturating_sub(1))
            .map(|_| rng.gen_range(-2.0..2.0))
            .collect();
        let t = SymTridiag::new(d, e);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n];
        t.matvec(&x, &mut y);
        let dense = t.to_dense();
        let mut y2 = vec![0.0; n];
        dcst_matrix::gemv(n, n, 1.0, dense.as_slice(), n, &x, 0.0, &mut y2);
        for (a, b) in y.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-13);
        }
    }
}
