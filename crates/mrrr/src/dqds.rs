//! The dqds eigenvalue algorithm (`dlasq` family, simplified).
//!
//! MR³-SMP computes its initial eigenvalue approximations with dqds, which
//! is an order of magnitude faster than Sturm bisection: each sweep of the
//! *differential quotient-difference with shifts* transform
//!
//! ```text
//! d ← q₀ − τ
//! for i:  q'ᵢ = d + eᵢ ;  t = qᵢ₊₁/q'ᵢ ;  e'ᵢ = eᵢ·t ;  d = d·t − τ
//! ```
//!
//! maps the qd representation of a positive-definite `L D Lᵀ` to that of
//! `L'D'L'ᵀ = LDLᵀ − τI` in ~4n flops with *high relative accuracy* (all
//! quantities stay positive when `τ < λ_min`). Eigenvalues deflate off the
//! bottom as trailing `e` entries underflow; the accumulated shifts σ plus
//! the deflated `q` give the eigenvalues.
//!
//! Shift strategy: aggressive `τ = 0.9·dmin` with halving retries on a
//! failed sweep (a negative intermediate `d`), which keeps the transform
//! valid without LAPACK's elaborate `dlasq4` case analysis. A per-block
//! sweep budget guards convergence; on exhaustion the caller falls back to
//! bisection.

use crate::rrr::ldl_factor;
use dcst_tridiag::SymTridiag;

/// Outcome of the dqds driver on one positive-definite qd array.
enum BlockResult {
    Converged(Vec<f64>),
    GaveUp,
}

/// One dqds sweep with shift `tau`. Returns `Some(dmin)` on success
/// (writing the new arrays into `(qo, eo)`), `None` if a transformed
/// pivot went negative or non-finite (shift too aggressive).
fn dqds_sweep(q: &[f64], e: &[f64], tau: f64, qo: &mut [f64], eo: &mut [f64]) -> Option<f64> {
    let n = q.len();
    let mut d = q[0] - tau;
    let mut dmin = d;
    for i in 0..n - 1 {
        let qi = d + e[i];
        if qi <= 0.0 || !qi.is_finite() {
            return None;
        }
        let t = q[i + 1] / qi;
        qo[i] = qi;
        eo[i] = e[i] * t;
        d = d * t - tau;
        if !d.is_finite() {
            return None;
        }
        dmin = dmin.min(d);
    }
    if d < 0.0 {
        return None;
    }
    qo[n - 1] = d;
    Some(dmin.max(0.0))
}

/// Eigenvalues of the positive-definite qd array `(q, e)`, ascending,
/// with `sigma` already accumulated.
fn dqds_block(mut q: Vec<f64>, mut e: Vec<f64>, mut sigma: f64, budget: &mut usize) -> BlockResult {
    let mut out = Vec::with_capacity(q.len());
    let mut qn = vec![0.0f64; q.len()];
    let mut en = vec![0.0f64; e.len()];
    // Conservative first shift until a sweep establishes dmin.
    let mut dmin = 0.0f64;

    loop {
        let n = q.len();
        // --- endgames.
        if n == 0 {
            break;
        }
        if n == 1 {
            out.push(q[0] + sigma);
            break;
        }
        if n == 2 {
            // Eigenvalues of the 2x2 block with trace q0+q1+e0, det q0·q1.
            let tr = q[0] + q[1] + e[0];
            let det = q[0] * q[1];
            let disc = (tr * tr - 4.0 * det).max(0.0).sqrt();
            let big = 0.5 * (tr + disc);
            let small = if big > 0.0 { det / big } else { 0.0 };
            out.push(small + sigma);
            out.push(big + sigma);
            break;
        }
        // --- deflation at the bottom.
        let tol = 100.0 * f64::EPSILON;
        if e[n - 2] <= tol * tol * (sigma + q[n - 1]) || e[n - 2] <= f64::MIN_POSITIVE {
            out.push(q[n - 1] + sigma);
            q.truncate(n - 1);
            e.truncate(n - 2);
            qn.truncate(n - 1);
            en.truncate(n.saturating_sub(2));
            continue;
        }
        // --- split at a negligible interior e (process the tail first).
        if let Some(split) = (0..n - 2)
            .rev()
            .find(|&i| e[i] <= tol * tol * (sigma + q[i]))
        {
            let q_tail = q.split_off(split + 1);
            let mut e_tail = e.split_off(split + 1);
            e.pop(); // the negligible coupling itself
            let _ = &mut e_tail;
            match dqds_block(q_tail, e_tail, sigma, budget) {
                BlockResult::Converged(vals) => out.extend(vals),
                BlockResult::GaveUp => return BlockResult::GaveUp,
            }
            qn.truncate(q.len());
            en.truncate(e.len());
            continue;
        }
        // --- one shifted sweep.
        if *budget == 0 {
            return BlockResult::GaveUp;
        }
        *budget -= 1;
        let mut tau = 0.9 * dmin;
        let mut done = false;
        for _ in 0..60 {
            match dqds_sweep(&q, &e, tau, &mut qn, &mut en) {
                Some(new_dmin) => {
                    sigma += tau;
                    dmin = new_dmin;
                    std::mem::swap(&mut q, &mut qn);
                    std::mem::swap(&mut e, &mut en);
                    done = true;
                    break;
                }
                None => {
                    // Shift too aggressive; back off (τ = 0 always works
                    // for a positive-definite array).
                    tau = if tau > f64::MIN_POSITIVE {
                        tau * 0.25
                    } else {
                        0.0
                    };
                }
            }
        }
        if !done {
            return BlockResult::GaveUp;
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    BlockResult::Converged(out)
}

/// All eigenvalues of the symmetric tridiagonal `t`, ascending, by dqds.
/// Returns `None` when the iteration fails to converge within the sweep
/// budget (callers fall back to bisection).
pub fn dqds_eigenvalues(t: &SymTridiag) -> Option<Vec<f64>> {
    let n = t.n();
    if n == 0 {
        return Some(vec![]);
    }
    if n == 1 {
        return Some(vec![t.d[0]]);
    }
    // Positive-definite shift below the spectrum.
    let (gl, gu) = t.gershgorin_bounds();
    let span = (gu - gl).max(f64::MIN_POSITIVE);
    let sigma0 = gl - 1e-3 * span - f64::MIN_POSITIVE;
    let rep = ldl_factor(t, sigma0);
    if rep.d.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
        return None; // factorization not positive definite (shouldn't happen)
    }
    // qd arrays: q_i = D_i, e_i = D_i · L_i².
    let q: Vec<f64> = rep.d.clone();
    let e: Vec<f64> = (0..n - 1).map(|i| rep.d[i] * rep.l[i] * rep.l[i]).collect();
    let mut budget = 30 * n;
    match dqds_block(q, e, 0.0, &mut budget) {
        BlockResult::Converged(mut vals) => {
            for v in &mut vals {
                *v += sigma0;
            }
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Some(vals)
        }
        BlockResult::GaveUp => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_tridiag::gen::MatrixType;

    fn bisect_reference(t: &SymTridiag) -> Vec<f64> {
        crate::bisect::bisect_all(t, 2)
    }

    #[test]
    fn toeplitz_closed_form() {
        let n = 32;
        let t = SymTridiag::toeplitz121(n);
        let vals = dqds_eigenvalues(&t).expect("dqds converges");
        assert_eq!(vals.len(), n);
        for (k, &l) in vals.iter().enumerate() {
            let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - want).abs() < 1e-11, "eig {k}: {l} vs {want}");
        }
    }

    #[test]
    fn matches_bisection_on_table3_types() {
        for ty in [
            MatrixType::Type3,
            MatrixType::Type4,
            MatrixType::Type6,
            MatrixType::Type10,
            MatrixType::Type13,
            MatrixType::Type14,
        ] {
            let t = ty.generate(80, 17);
            let vals = dqds_eigenvalues(&t).expect("dqds converges");
            let reference = bisect_reference(&t);
            for (i, (a, b)) in vals.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10 * t.max_norm().max(1.0),
                    "type {} eig {i}: {a} vs {b}",
                    ty.index()
                );
            }
        }
    }

    #[test]
    fn clustered_spectrum() {
        let t = MatrixType::Type2.generate(60, 3);
        if let Some(vals) = dqds_eigenvalues(&t) {
            let reference = bisect_reference(&t);
            for (a, b) in vals.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-10);
            }
        } // GaveUp is acceptable (bisection fallback)
    }

    #[test]
    fn wilkinson_close_pairs() {
        let t = dcst_tridiag::gen::wilkinson(41);
        let vals = dqds_eigenvalues(&t).expect("dqds converges");
        let reference = bisect_reference(&t);
        for (i, (a, b)) in vals.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-10 * t.max_norm(), "eig {i}: {a} vs {b}");
        }
    }

    #[test]
    fn graded_matrix() {
        // Type 7: eigenvalues spanning 16 orders of magnitude.
        let t = MatrixType::Type7.generate(50, 7);
        let vals = dqds_eigenvalues(&t).expect("dqds converges");
        let reference = bisect_reference(&t);
        for (i, (a, b)) in vals.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-12 * t.max_norm().max(1.0),
                "eig {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn tiny_sizes() {
        assert_eq!(
            dqds_eigenvalues(&SymTridiag::new(vec![], vec![])).unwrap(),
            Vec::<f64>::new()
        );
        assert_eq!(
            dqds_eigenvalues(&SymTridiag::new(vec![7.0], vec![])).unwrap(),
            vec![7.0]
        );
        let t = SymTridiag::new(vec![2.0, 0.0], vec![1.0]);
        let vals = dqds_eigenvalues(&t).unwrap();
        assert!((vals[0] - (1.0 - 2.0f64.sqrt())).abs() < 1e-12);
        assert!((vals[1] - (1.0 + 2.0f64.sqrt())).abs() < 1e-12);
    }
}
