//! Eigenvalue bisection: on the tridiagonal (Sturm counts) and on an
//! `LDLᵀ` representation (stationary qds counts, for relative accuracy).

use crate::rrr::{sturm_count_ldl, Rrr};
use dcst_tridiag::{sturm_count, SymTridiag};

/// All eigenvalues of `t`, ascending, to absolute accuracy ~`ε‖T‖`, with
/// index chunks distributed over `threads` scoped threads.
pub fn bisect_all(t: &SymTridiag, threads: usize) -> Vec<f64> {
    bisect_range(t, 0..t.n(), threads)
}

/// The eigenvalues with (0-based, ascending) indices in `range` —
/// Θ(n·|range|) work, the subset property the paper credits MRRR with.
pub fn bisect_range(t: &SymTridiag, range: std::ops::Range<usize>, threads: usize) -> Vec<f64> {
    let n = t.n();
    assert!(range.end <= n, "eigenvalue index out of range");
    let k = range.len();
    if k == 0 {
        return vec![];
    }
    let (gl, gu) = t.gershgorin_bounds();
    let pad = 1e-3 * (gu - gl).abs().max(1.0) * f64::EPSILON + f64::MIN_POSITIVE;
    let (gl, gu) = (gl - pad - 1e-6, gu + pad + 1e-6);
    let mut lam = vec![0.0f64; k];
    let nt = threads.max(1).min(k);
    let chunk = k.div_ceil(nt);
    let k0base = range.start;
    std::thread::scope(|s| {
        for (c, piece) in lam.chunks_mut(chunk).enumerate() {
            let k0 = k0base + c * chunk;
            s.spawn(move || {
                for (i, slot) in piece.iter_mut().enumerate() {
                    *slot = bisect_one(t, k0 + i, gl, gu);
                }
            });
        }
    });
    lam
}

/// The `k`-th (0-based, ascending) eigenvalue of `t` by bisection.
fn bisect_one(t: &SymTridiag, k: usize, mut lo: f64, mut hi: f64) -> f64 {
    // Invariant: count(lo) <= k < count(hi).
    for _ in 0..128 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if sturm_count(t, mid) > k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Refine the `k`-th eigenvalue of the representation `rep` (already known
/// to be ≈ `approx` in the representation's local coordinates) to high
/// *relative* accuracy using qds Sturm counts.
pub fn bisect_refine_ldl(rep: &Rrr, k: usize, approx: f64, norm: f64) -> f64 {
    // Establish a bracket around the approximate value.
    let mut radius = (approx.abs() * 1e-10).max(8.0 * f64::EPSILON * norm);
    let (mut lo, mut hi);
    loop {
        lo = approx - radius;
        hi = approx + radius;
        let clo = sturm_count_ldl(rep, lo);
        let chi = sturm_count_ldl(rep, hi);
        if clo <= k && k < chi {
            break;
        }
        radius *= 8.0;
        if radius > 4.0 * norm + approx.abs() {
            // Degenerate bracket (should not happen); keep the input.
            return approx;
        }
    }
    for _ in 0..128 {
        if hi - lo <= 2.0 * f64::EPSILON * lo.abs().max(hi.abs()) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if sturm_count_ldl(rep, mid) > k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrr::ldl_factor;

    #[test]
    fn bisect_matches_closed_form() {
        let n = 16;
        let t = SymTridiag::toeplitz121(n);
        let lam = bisect_all(&t, 2);
        for (k, &l) in lam.iter().enumerate() {
            let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - want).abs() < 1e-12, "{l} vs {want}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let t = dcst_tridiag::gen::MatrixType::Type6.generate(33, 4);
        let a = bisect_all(&t, 1);
        let b = bisect_all(&t, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn ldl_refinement_improves_relative_accuracy() {
        let t = SymTridiag::toeplitz121(12);
        let (gl, _) = t.gershgorin_bounds();
        let sigma = gl - 0.1;
        let rep = ldl_factor(&t, sigma);
        // Smallest eigenvalue in representation coordinates.
        let lam0 = 2.0 - 2.0 * (std::f64::consts::PI / 13.0).cos() - sigma;
        let rough = lam0 * (1.0 + 1e-7);
        let refined = bisect_refine_ldl(&rep, 0, rough, t.max_norm());
        assert!(
            (refined - lam0).abs() < 1e-12 * lam0.abs(),
            "refined {refined} vs {lam0}"
        );
    }
}
