//! Eigenvalue bisection: on the tridiagonal (Sturm counts) and on an
//! `LDLᵀ` representation (stationary qds counts, for relative accuracy).

use crate::rrr::{sturm_count_ldl, Rrr};
use crate::MrrrError;
use dcst_tridiag::{sturm_counts_batch, SymTridiag};

/// All eigenvalues of `t`, ascending, to absolute accuracy ~`ε‖T‖`, with
/// index chunks distributed over `threads` scoped threads.
pub fn bisect_all(t: &SymTridiag, threads: usize) -> Vec<f64> {
    bisect_range_unchecked(t, 0..t.n(), threads)
}

/// The eigenvalues with (0-based, ascending) indices in `range` —
/// Θ(n·|range|) work, the subset property the paper credits MRRR with.
/// Returns [`MrrrError::InvalidRange`] when the range reaches past `n`.
pub fn bisect_range(
    t: &SymTridiag,
    range: std::ops::Range<usize>,
    threads: usize,
) -> Result<Vec<f64>, MrrrError> {
    if range.end > t.n() {
        return Err(MrrrError::InvalidRange {
            il: range.start,
            iu: range.end.saturating_sub(1),
            n: t.n(),
        });
    }
    Ok(bisect_range_unchecked(t, range, threads))
}

/// [`bisect_range`] for in-crate callers whose range is already known to
/// be within bounds.
fn bisect_range_unchecked(
    t: &SymTridiag,
    range: std::ops::Range<usize>,
    threads: usize,
) -> Vec<f64> {
    let k = range.len();
    if k == 0 {
        return vec![];
    }
    let (gl, gu) = t.gershgorin_bounds();
    // Scale-relative bracket padding. The Gershgorin bounds already enclose
    // the spectrum; the pad only has to absorb the rounding error of
    // computing them, so a few ulps of the bound magnitudes suffice. (An
    // earlier absolute `1e-6` widening swamped tiny-norm spectra: for a
    // matrix scaled to ~1e-60 the bracket started ~1e54 times wider than
    // every eigenvalue and no fixed iteration budget could close it.)
    let scale = gl.abs().max(gu.abs()).max(f64::MIN_POSITIVE);
    let pad = 4.0 * f64::EPSILON * scale + f64::MIN_POSITIVE;
    let (gl, gu) = (gl - pad, gu + pad);
    let mut lam = vec![0.0f64; k];
    let nt = threads.max(1).min(k);
    let chunk = k.div_ceil(nt);
    let k0base = range.start;
    std::thread::scope(|s| {
        for (c, piece) in lam.chunks_mut(chunk).enumerate() {
            let k0 = k0base + c * chunk;
            s.spawn(move || bisect_batch(t, k0, piece, gl, gu));
        }
    });
    lam
}

/// Eigenvalues `k0..k0 + out.len()` of `t` by lockstep bisection: every
/// sweep evaluates all still-active midpoints with one batched Sturm pass
/// ([`sturm_counts_batch`]), whose per-row pivot divisions pipeline across
/// lanes instead of serializing on division latency as one-at-a-time
/// bisection does. Per-lane bracket updates and exits are exactly the
/// scalar algorithm's, so the results match one-at-a-time bisection bit
/// for bit.
fn bisect_batch(t: &SymTridiag, k0: usize, out: &mut [f64], gl: f64, gu: f64) {
    let m = out.len();
    let mut lo = vec![gl; m];
    let mut hi = vec![gu; m];
    // Invariant per lane j: count(lo) <= k0+j < count(hi). Iterate until
    // the bracket collapses — to relative width ~2ε, or to adjacent floats
    // (midpoint degeneracy, which also bounds brackets straddling zero:
    // they shrink into the denormals within ~2100 halvings). The cap is a
    // safety net far above either exit, not a convergence criterion: a
    // fixed small budget cannot close brackets that start many orders of
    // magnitude wider than the eigenvalue.
    let mut active: Vec<usize> = (0..m).collect();
    let mut mids = Vec::with_capacity(m);
    let mut counts = vec![0usize; m];
    for _ in 0..4096 {
        active.retain(|&j| {
            if hi[j] - lo[j] <= 2.0 * f64::EPSILON * lo[j].abs().max(hi[j].abs()) {
                return false;
            }
            let mid = 0.5 * (lo[j] + hi[j]);
            mid > lo[j] && mid < hi[j]
        });
        if active.is_empty() {
            break;
        }
        mids.clear();
        mids.extend(active.iter().map(|&j| 0.5 * (lo[j] + hi[j])));
        sturm_counts_batch(t, &mids, &mut counts);
        for (a, &j) in active.iter().enumerate() {
            if counts[a] > k0 + j {
                hi[j] = mids[a];
            } else {
                lo[j] = mids[a];
            }
        }
    }
    for j in 0..m {
        out[j] = 0.5 * (lo[j] + hi[j]);
    }
}

/// Refine the `k`-th eigenvalue of the representation `rep` (already known
/// to be ≈ `approx` in the representation's local coordinates) to high
/// *relative* accuracy using qds Sturm counts.
pub fn bisect_refine_ldl(rep: &Rrr, k: usize, approx: f64, norm: f64) -> f64 {
    // Establish a bracket around the approximate value.
    let mut radius = (approx.abs() * 1e-10).max(8.0 * f64::EPSILON * norm);
    let (mut lo, mut hi);
    loop {
        lo = approx - radius;
        hi = approx + radius;
        let clo = sturm_count_ldl(rep, lo);
        let chi = sturm_count_ldl(rep, hi);
        if clo <= k && k < chi {
            break;
        }
        radius *= 8.0;
        if radius > 4.0 * norm + approx.abs() {
            // Degenerate bracket (should not happen); keep the input.
            return approx;
        }
    }
    for _ in 0..128 {
        if hi - lo <= 2.0 * f64::EPSILON * lo.abs().max(hi.abs()) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if sturm_count_ldl(rep, mid) > k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrr::ldl_factor;

    #[test]
    fn bisect_matches_closed_form() {
        let n = 16;
        let t = SymTridiag::toeplitz121(n);
        let lam = bisect_all(&t, 2);
        for (k, &l) in lam.iter().enumerate() {
            let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - want).abs() < 1e-12, "{l} vs {want}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let t = dcst_tridiag::gen::MatrixType::Type6.generate(33, 4);
        let a = bisect_all(&t, 1);
        let b = bisect_all(&t, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_is_a_typed_error() {
        let t = SymTridiag::toeplitz121(8);
        let err = bisect_range(&t, 4..9, 1).unwrap_err();
        assert_eq!(err, MrrrError::InvalidRange { il: 4, iu: 8, n: 8 });
        // The full range and an empty range are both fine.
        assert_eq!(bisect_range(&t, 0..8, 1).unwrap().len(), 8);
        assert!(bisect_range(&t, 3..3, 1).unwrap().is_empty());
    }

    /// Relative accuracy on a tiny-norm spectrum (the 1e-60 DMPV regime):
    /// the old absolute 1e-6 bracket padding left every eigenvalue with
    /// relative error ~1e15 here.
    #[test]
    fn tiny_scale_keeps_relative_accuracy() {
        let n = 24;
        let base = SymTridiag::toeplitz121(n);
        let t = SymTridiag::new(
            base.d.iter().map(|x| x * 1e-60).collect(),
            base.e.iter().map(|x| x * 1e-60).collect(),
        );
        let lam = bisect_all(&t, 2);
        for (k, &l) in lam.iter().enumerate() {
            let want = 1e-60
                * (2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos());
            assert!(
                (l - want).abs() < 1e-12 * want.abs(),
                "eig {k}: {l} vs {want} (rel {})",
                ((l - want) / want).abs()
            );
        }
    }

    /// Huge-norm spectra must stay accurate too (scale symmetry).
    #[test]
    fn huge_scale_keeps_relative_accuracy() {
        let n = 24;
        let base = SymTridiag::toeplitz121(n);
        let t = SymTridiag::new(
            base.d.iter().map(|x| x * 1e150).collect(),
            base.e.iter().map(|x| x * 1e150).collect(),
        );
        let lam = bisect_all(&t, 2);
        for (k, &l) in lam.iter().enumerate() {
            let want = 1e150
                * (2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos());
            assert!(
                (l - want).abs() < 1e-12 * want.abs(),
                "eig {k}: {l} vs {want}"
            );
        }
    }

    #[test]
    fn zero_matrix_converges() {
        let t = SymTridiag::new(vec![0.0; 6], vec![0.0; 5]);
        let lam = bisect_all(&t, 1);
        for l in lam {
            assert!(l.abs() < 1e-300, "{l}");
        }
    }

    #[test]
    fn ldl_refinement_improves_relative_accuracy() {
        let t = SymTridiag::toeplitz121(12);
        let (gl, _) = t.gershgorin_bounds();
        let sigma = gl - 0.1;
        let rep = ldl_factor(&t, sigma);
        // Smallest eigenvalue in representation coordinates.
        let lam0 = 2.0 - 2.0 * (std::f64::consts::PI / 13.0).cos() - sigma;
        let rough = lam0 * (1.0 + 1e-7);
        let refined = bisect_refine_ldl(&rep, 0, rough, t.max_norm());
        assert!(
            (refined - lam0).abs() < 1e-12 * lam0.abs(),
            "refined {refined} vs {lam0}"
        );
    }
}
