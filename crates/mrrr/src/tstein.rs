//! Inverse iteration on the tridiagonal itself (`dstein`'s `dlagtf` /
//! `dlagts` pair, simplified): the fallback for numerical multiplets.
//!
//! Representation-based solves (forward or twisted qds) lose accuracy when
//! the factorization passes through *several* near-singular pivots — which
//! is precisely the numerical-multiplet situation. The classical cure is
//! an LU factorization of `T − λI` **with partial pivoting**: row swaps
//! bound the multipliers by 1, so no pivot chain can amplify rounding.
//! Inverse iteration then solves only with `U` (the `L`-part of the
//! iteration is absorbed into the "random enough" start vector, exactly as
//! `dstein` does), orthogonalizing against previously-computed members of
//! the multiplet after every solve.

use dcst_tridiag::SymTridiag;

/// The `U` factor of `P(T − λI) = LU`: main diagonal `u0`, first
/// superdiagonal `u1`, second superdiagonal `u2` (fill-in from pivoting).
pub struct TridiagLu {
    u0: Vec<f64>,
    u1: Vec<f64>,
    u2: Vec<f64>,
    /// Elimination multipliers (|m| ≤ 1 thanks to pivoting).
    ml: Vec<f64>,
    /// Whether step i swapped rows i and i+1.
    swap: Vec<bool>,
}

/// Factor `T − λI` with partial pivoting (`dlagtf` analogue, keeping only
/// the `U` factor).
pub fn lu_factor(t: &SymTridiag, lam: f64) -> TridiagLu {
    let n = t.n();
    let mut u0 = vec![0.0f64; n];
    let mut u1 = vec![0.0f64; n.saturating_sub(1)];
    let mut u2 = vec![0.0f64; n.saturating_sub(2)];
    let mut ml = vec![0.0f64; n.saturating_sub(1)];
    let mut swap = vec![false; n.saturating_sub(1)];
    if n == 0 {
        return TridiagLu {
            u0,
            u1,
            u2,
            ml,
            swap,
        };
    }
    // Transformed current row: diagonal `a`, superdiagonal `b`.
    let mut a = t.d[0] - lam;
    let mut b = if n > 1 { t.e[0] } else { 0.0 };
    for i in 0..n - 1 {
        let sub = t.e[i]; // subdiagonal to eliminate
        let diag_next = t.d[i + 1] - lam;
        let super_next = if i + 2 < n { t.e[i + 1] } else { 0.0 };
        if a.abs() >= sub.abs() {
            // No swap; guard an exactly-zero pivot.
            let piv = if a == 0.0 {
                f64::MIN_POSITIVE.sqrt()
            } else {
                a
            };
            let m = sub / piv;
            ml[i] = m;
            u0[i] = piv;
            u1[i] = b;
            if i < u2.len() {
                u2[i] = 0.0;
            }
            a = diag_next - m * b;
            b = super_next;
        } else {
            // Swap rows i and i+1 (|m| <= 1).
            let m = a / sub;
            ml[i] = m;
            swap[i] = true;
            u0[i] = sub;
            u1[i] = diag_next;
            if i < u2.len() {
                u2[i] = super_next;
            }
            a = b - m * diag_next;
            b = -m * super_next;
        }
    }
    u0[n - 1] = if a == 0.0 {
        f64::MIN_POSITIVE.sqrt()
    } else {
        a
    };
    TridiagLu {
        u0,
        u1,
        u2,
        ml,
        swap,
    }
}

/// Solve `(T − λI) x = b` in place through the full pivoted factorization
/// (`dlagts` analogue): apply `P` and `L⁻¹` forward, then back-substitute
/// with `U`, rescaling on overflow. Returns a unit-norm direction.
pub fn solve_u(lu: &TridiagLu, x: &mut [f64]) {
    let n = lu.u0.len();
    const BIG: f64 = 1e140;
    const SMALL: f64 = 1e-140;
    // Forward: z = L^-1 P b (multipliers bounded by 1, growth benign, but
    // guard anyway).
    for i in 0..n.saturating_sub(1) {
        if lu.swap[i] {
            x.swap(i, i + 1);
        }
        x[i + 1] -= lu.ml[i] * x[i];
        if x[i + 1].abs() > BIG {
            for xv in x[..=i + 1].iter_mut() {
                *xv *= SMALL;
            }
        }
    }
    for i in (0..n).rev() {
        let mut acc = x[i];
        if i + 1 < n {
            acc -= lu.u1[i] * x[i + 1];
        }
        if i + 2 < n {
            acc -= lu.u2[i] * x[i + 2];
        }
        x[i] = acc / lu.u0[i];
        if x[i].abs() > BIG {
            for xv in x[i..].iter_mut() {
                *xv *= SMALL;
            }
        }
    }
    let nrm = dcst_matrix::nrm2(x);
    if nrm > 0.0 && nrm.is_finite() {
        let inv = 1.0 / nrm;
        x.iter_mut().for_each(|v| *v *= inv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstruct Pᵀ·L·U densely and compare to T − λI.
    fn verify_factorization(t: &SymTridiag, lam: f64) {
        let n = t.n();
        let lu = lu_factor(t, lam);
        // Dense U.
        let mut u = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            u[i][i] = lu.u0[i];
            if i + 1 < n {
                u[i][i + 1] = lu.u1[i];
            }
            if i + 2 < n {
                u[i][i + 2] = lu.u2[i];
            }
        }
        // Apply L then the swaps in reverse elimination order to rebuild A.
        // Elimination: for i in 0..n-1: (maybe swap rows i,i+1), then
        // row[i+1] -= m*row[i]. Undo in reverse: row[i+1] += m*row[i],
        // then maybe swap back.
        let mut a = u;
        for i in (0..n - 1).rev() {
            let m = lu.ml[i];
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                a[i + 1][j] += m * a[i][j];
            }
            if lu.swap[i] {
                a.swap(i, i + 1);
            }
        }
        #[allow(clippy::needless_range_loop)]
        for r in 0..n {
            #[allow(clippy::needless_range_loop)]
            for c in 0..n {
                let want = if r == c {
                    t.d[r] - lam
                } else if r.abs_diff(c) == 1 {
                    t.e[r.min(c)]
                } else {
                    0.0
                };
                assert!(
                    (a[r][c] - want).abs() < 1e-12 * t.max_norm().max(1.0),
                    "({r},{c}): {} vs {want} at lam={lam}",
                    a[r][c]
                );
            }
        }
    }

    #[test]
    fn factorization_reconstructs_shifted_matrix() {
        let t = SymTridiag::new(vec![2.0, -1.0, 0.5, 3.0, 1.0], vec![1.0, 0.7, -0.3, 2.0]);
        for lam in [-2.5, 0.0, 0.3, 1.0, 2.0, 4.0] {
            verify_factorization(&t, lam);
        }
        verify_factorization(&SymTridiag::toeplitz121(9), 1.2345);
    }

    #[test]
    fn factors_and_solves_against_known_eigenpair() {
        // (1,2,1) Toeplitz: inverse iteration at a known eigenvalue must
        // recover the known eigenvector in a couple of solves.
        let n = 24;
        let t = SymTridiag::toeplitz121(n);
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let k = 5;
        // sin(i·k·h) pairs with the eigenvalue 2 + 2cos(k·h).
        let lam = 2.0 + 2.0 * (k as f64 * h).cos();
        let lu = lu_factor(&t, lam);
        let mut x: Vec<f64> = (0..n)
            .map(|i| 0.5 - ((i * 7919) % 13) as f64 / 13.0)
            .collect();
        for _ in 0..3 {
            solve_u(&lu, &mut x);
        }
        // Compare to the analytic eigenvector sin((i+1) k h).
        let want: Vec<f64> = (0..n)
            .map(|i| ((i + 1) as f64 * k as f64 * h).sin())
            .collect();
        let wn = dcst_matrix::nrm2(&want);
        let cosang: f64 = x
            .iter()
            .zip(&want)
            .map(|(a, b)| a * b / wn)
            .sum::<f64>()
            .abs();
        assert!(
            cosang > 1.0 - 1e-10,
            "aligned with the true eigenvector: {cosang}"
        );
    }

    #[test]
    fn singular_shift_is_guarded() {
        // λ exactly equal to an eigenvalue of a diagonal matrix: the zero
        // pivot is replaced, solve amplifies the eigendirection.
        let t = SymTridiag::new(vec![1.0, 2.0, 3.0], vec![0.0, 0.0]);
        let lu = lu_factor(&t, 2.0);
        let mut x = vec![1.0, 1.0, 1.0];
        solve_u(&lu, &mut x);
        assert!(x[1].abs() > 0.999, "middle direction amplified: {x:?}");
    }

    #[test]
    fn pivoting_bounds_growth_for_multiplets() {
        // Glued Wilkinson multiplet: several near-singular pivots. The
        // partially-pivoted solve must still produce a T-eigenvector.
        let t = dcst_tridiag::gen::glued_wilkinson(21, 3, 1e-10);
        let n = t.n();
        // An interior eigenvalue (multiplicity 3 numerically): locate via
        // bisection between counts.
        let (gl, gu) = t.gershgorin_bounds();
        let (mut lo, mut hi) = (gl, gu);
        let target = n - 2; // inside the top multiplet
        for _ in 0..200 {
            let m = 0.5 * (lo + hi);
            if dcst_tridiag::sturm_count(&t, m) > target {
                hi = m;
            } else {
                lo = m;
            }
        }
        let lam = 0.5 * (lo + hi);
        let lu = lu_factor(&t, lam);
        let mut x: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        for _ in 0..3 {
            solve_u(&lu, &mut x);
        }
        let mut y = vec![0.0; n];
        t.matvec(&x, &mut y);
        let r: f64 = (0..n)
            .map(|i| (y[i] - lam * x[i]).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(r < 1e-10 * t.max_norm(), "residual {r:e}");
    }
}
