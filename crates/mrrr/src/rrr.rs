//! Relatively robust representations: `LDLᵀ` factorizations, differential
//! stationary qds transforms, qds Sturm counts, and twisted-factorization
//! eigenvectors.

use dcst_tridiag::SymTridiag;

/// A bidiagonal factorization `L D Lᵀ` (unit lower bidiagonal `L` with
/// multipliers `l`, diagonal `d`) representing `T − origin·I`.
#[derive(Clone, Debug)]
pub struct Rrr {
    pub d: Vec<f64>,
    pub l: Vec<f64>,
}

impl Rrr {
    pub fn n(&self) -> usize {
        self.d.len()
    }
}

/// Guard against exactly-zero pivots (dlar1v-style perturbation).
#[inline]
fn guard(x: f64) -> f64 {
    if x == 0.0 {
        -f64::MIN_POSITIVE
    } else {
        x
    }
}

/// Factor `T − σI = L D Lᵀ`.
pub fn ldl_factor(t: &SymTridiag, sigma: f64) -> Rrr {
    let n = t.n();
    let mut d = vec![0.0f64; n];
    let mut l = vec![0.0f64; n.saturating_sub(1)];
    if n == 0 {
        return Rrr { d, l };
    }
    d[0] = guard(t.d[0] - sigma);
    for i in 0..n - 1 {
        l[i] = t.e[i] / d[i];
        d[i + 1] = guard((t.d[i + 1] - sigma) - l[i] * t.e[i]);
    }
    Rrr { d, l }
}

/// Differential stationary qds transform: compute `L⁺D⁺L⁺ᵀ = LDLᵀ − τI`.
pub fn stqds_shift(rep: &Rrr, tau: f64) -> Rrr {
    stqds_shift_checked(rep, tau).0
}

/// [`stqds_shift`] plus an element-growth measure: the ratio of the
/// child's largest |pivot| to the parent's (∞ when the transform hit a
/// non-finite value). `dlarrf` uses the same quantity to accept or retry
/// candidate shifts — large growth means the child is not a relatively
/// robust representation.
pub fn stqds_shift_checked(rep: &Rrr, tau: f64) -> (Rrr, f64) {
    let n = rep.n();
    let mut d = vec![0.0f64; n];
    let mut l = vec![0.0f64; n.saturating_sub(1)];
    let mut s = -tau;
    let mut broke = false;
    let mut max_child = 0.0f64;
    for i in 0..n {
        d[i] = guard(s + rep.d[i]);
        max_child = max_child.max(d[i].abs());
        if i + 1 < n {
            l[i] = rep.d[i] * rep.l[i] / d[i];
            s = l[i] * rep.l[i] * s - tau;
            if !s.is_finite() || !l[i].is_finite() {
                broke = true;
                s = -tau; // damped restart after an overflowed pivot chain
                l[i] = 0.0;
            }
        }
    }
    let max_parent = rep.d.iter().fold(f64::MIN_POSITIVE, |m, &x| m.max(x.abs()));
    let growth = if broke {
        f64::INFINITY
    } else {
        max_child / max_parent
    };
    (Rrr { d, l }, growth)
}

/// Number of eigenvalues of `LDLᵀ` strictly below `x`, by the stationary
/// qds count (signs of `D⁺`).
pub fn sturm_count_ldl(rep: &Rrr, x: f64) -> usize {
    let n = rep.n();
    let mut count = 0usize;
    let mut s = -x;
    for i in 0..n {
        let dplus = guard(s + rep.d[i]);
        if dplus < 0.0 {
            count += 1;
        }
        if i + 1 < n {
            s = (rep.d[i] * rep.l[i]) * rep.l[i] * (s / dplus) - x;
            if !s.is_finite() {
                s = -x;
            }
        }
    }
    count
}

/// Eigenvector of `LDLᵀ` for the (approximate) eigenvalue `lam`, by the
/// twisted factorization at the index of the smallest |γ|:
///
/// * forward dstqds sweep → `D⁺`, `L⁺`, `s`;
/// * backward dqds sweep → `D⁻`, `U⁻`, `p`;
/// * `γ_r = s_r + p_r + λ`; twist at `argmin |γ_r|`;
/// * solve `N_r z = γ_r e_r` by the two substitution recurrences,
///   normalize.
///
/// Writes the normalized vector into `out` (length n).
pub fn twisted_vector(rep: &Rrr, lam: f64, out: &mut [f64]) {
    twisted_vector_ranked(rep, lam, 0, out)
}

/// Like [`twisted_vector`] but twisting at the position of the
/// `rank`-th smallest |γ| instead of the smallest.
///
/// For a numerically multiple eigenvalue the twisted solves at different
/// twist positions produce different vectors *within the eigenspace*, so
/// ranks 0, 1, … followed by Gram–Schmidt yield an orthonormal basis of
/// the cluster's invariant subspace — the fallback the driver uses when a
/// cluster cannot be separated by shifting.
pub fn twisted_vector_ranked(rep: &Rrr, lam: f64, rank: usize, out: &mut [f64]) {
    let n = rep.n();
    debug_assert_eq!(out.len(), n);
    if n == 1 {
        out[0] = 1.0;
        return;
    }

    // Forward: D+[i] = s_i + d_i ; L+[i] = d_i l_i / D+[i] ;
    //          s_{i+1} = L+[i] l_i s_i − λ.
    let mut lplus = vec![0.0f64; n - 1];
    let mut svec = vec![0.0f64; n];
    let mut s = -lam;
    for i in 0..n - 1 {
        svec[i] = s;
        let dplus = guard(s + rep.d[i]);
        lplus[i] = rep.d[i] * rep.l[i] / dplus;
        s = lplus[i] * rep.l[i] * s - lam;
        if !s.is_finite() {
            s = -lam;
        }
    }
    svec[n - 1] = s;

    // Backward: p_{n−1} = d_{n−1} − λ ; D−[i+1] = p_{i+1} + d_i l_i² ;
    //           U−[i] = d_i l_i / D−[i+1] ; p_i = p_{i+1} d_i / D−[i+1] − λ.
    let mut uminus = vec![0.0f64; n - 1];
    let mut pvec = vec![0.0f64; n];
    let mut p = rep.d[n - 1] - lam;
    pvec[n - 1] = p;
    for i in (0..n - 1).rev() {
        let dminus = guard(p + rep.d[i] * rep.l[i] * rep.l[i]);
        uminus[i] = rep.d[i] * rep.l[i] / dminus;
        p = p * rep.d[i] / dminus - lam;
        if !p.is_finite() {
            p = -lam;
        }
        pvec[i] = p;
    }

    // γ_r = s_r + p_r + λ; pick the twist with the rank-th smallest |γ|.
    let mut gammas: Vec<(f64, usize)> = (0..n)
        .map(|i| ((svec[i] + pvec[i] + lam).abs(), i))
        .collect();
    gammas.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let r = gammas[rank.min(n - 1)].1;

    // Solve N_r z = γ_r e_r: z_r = 1; upward z_i = −L+[i] z_{i+1};
    // downward z_{i+1} = −U−[i] z_i.
    out[r] = 1.0;
    for i in (0..r).rev() {
        out[i] = -lplus[i] * out[i + 1];
        if !out[i].is_finite() {
            out[i] = 0.0;
        }
    }
    for i in r..n - 1 {
        out[i + 1] = -uminus[i] * out[i];
        if !out[i + 1].is_finite() {
            out[i + 1] = 0.0;
        }
    }
    let nrm = dcst_matrix::nrm2(out);
    if nrm > 0.0 {
        let inv = 1.0 / nrm;
        out.iter_mut().for_each(|x| *x *= inv);
    } else {
        out[r] = 1.0;
    }
}

/// The twisted factorization quantities at `lam`: forward `L⁺`, `D⁺`,
/// backward `U⁻`, `D⁻`, and the twist diagnostics `γ_r = s_r + p_r + λ`.
struct Twisted {
    lplus: Vec<f64>,
    uminus: Vec<f64>,
    dplus: Vec<f64>,
    dminus: Vec<f64>,
    gamma: Vec<f64>,
}

fn factor_twisted(rep: &Rrr, lam: f64) -> Twisted {
    let n = rep.n();
    let mut lplus = vec![0.0f64; n.saturating_sub(1)];
    let mut dplus = vec![0.0f64; n];
    let mut svec = vec![0.0f64; n];
    let mut s = -lam;
    for i in 0..n {
        svec[i] = s;
        dplus[i] = guard(s + rep.d[i]);
        if i + 1 < n {
            lplus[i] = rep.d[i] * rep.l[i] / dplus[i];
            s = lplus[i] * rep.l[i] * s - lam;
            if !s.is_finite() {
                s = -lam;
            }
        }
    }
    let mut uminus = vec![0.0f64; n.saturating_sub(1)];
    let mut dminus = vec![0.0f64; n];
    let mut p = rep.d[n - 1] - lam;
    dminus[n - 1] = guard(p);
    let mut pvec = vec![0.0f64; n];
    pvec[n - 1] = p;
    for i in (0..n.saturating_sub(1)).rev() {
        let dm = guard(p + rep.d[i] * rep.l[i] * rep.l[i]);
        dminus[i + 1] = dm;
        uminus[i] = rep.d[i] * rep.l[i] / dm;
        p = p * rep.d[i] / dm - lam;
        if !p.is_finite() {
            p = -lam;
        }
        pvec[i] = p;
    }
    dminus[0] = guard(pvec[0]);
    let gamma = (0..n).map(|i| svec[i] + pvec[i] + lam).collect();
    Twisted {
        lplus,
        uminus,
        dplus,
        dminus,
        gamma,
    }
}

/// Solve `(LDLᵀ − λI) x = N_r Δ_r N_rᵀ x = b` through the **twisted**
/// factorization at the `rank`-th smallest |γ| (twist index `r`).
///
/// Unlike a pure forward `L⁺D⁺L⁺ᵀ` solve, the twisted factorization stays
/// componentwise accurate even when the factorization passes through
/// several near-singular pivots — the situation of a numerical multiplet,
/// which is exactly where the inverse-iteration fallback runs. Different
/// `rank`s favor different members of the multiplet's eigenspace. Only the
/// solution *direction* is meaningful (the result is normalized), and the
/// partial solution is rescaled on overflow.
pub fn solve_twisted(rep: &Rrr, lam: f64, rank: usize, b: &[f64], x: &mut [f64]) {
    let n = rep.n();
    debug_assert!(b.len() == n && x.len() == n);
    if n == 0 {
        return;
    }
    if n == 1 {
        x[0] = 1.0;
        return;
    }
    let tw = factor_twisted(rep, lam);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &bb| {
        tw.gamma[a]
            .abs()
            .partial_cmp(&tw.gamma[bb].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let r = order[rank.min(n - 1)];

    const BIG: f64 = 1e140;
    const SMALL: f64 = 1e-140;

    // ---- N_r y = b: forward up to r, backward down to r, meet at r.
    let mut f = 1.0f64;
    x[0] = b[0];
    for i in 1..r {
        x[i] = f * b[i] - tw.lplus[i - 1] * x[i - 1];
        if x[i].abs() > BIG {
            for xv in x[..=i].iter_mut() {
                *xv *= SMALL;
            }
            f *= SMALL;
        }
    }
    let mut g = 1.0f64;
    x[n - 1] = b[n - 1];
    for i in (r + 1..n - 1).rev() {
        x[i] = g * b[i] - tw.uminus[i] * x[i + 1];
        if x[i].abs() > BIG {
            for xv in x[i..].iter_mut() {
                *xv *= SMALL;
            }
            g *= SMALL;
        }
    }
    // Bring both segments to a common scale before the twist row.
    let common = f.min(g);
    if f > common {
        let adj = common / f;
        for xv in x[..r].iter_mut() {
            *xv *= adj;
        }
    }
    if g > common {
        let adj = common / g;
        for xv in x[r + 1..].iter_mut() {
            *xv *= adj;
        }
    }
    x[r] = common * b[r]
        - if r > 0 {
            tw.lplus[r - 1] * x[r - 1]
        } else {
            0.0
        }
        - if r + 1 < n {
            tw.uminus[r] * x[r + 1]
        } else {
            0.0
        };

    // ---- Δ_r z = y (elementwise; whole-vector rescale is linear).
    for i in 0..n {
        let pivot = if i < r {
            tw.dplus[i]
        } else if i > r {
            tw.dminus[i]
        } else {
            guard(tw.gamma[r])
        };
        x[i] /= pivot;
        if x[i].abs() > BIG {
            for xv in x.iter_mut() {
                *xv *= SMALL;
            }
        }
    }

    // ---- N_rᵀ x = z: outward from the twist row.
    for i in (0..r).rev() {
        x[i] -= tw.lplus[i] * x[i + 1];
        if x[i].abs() > BIG {
            for xv in x.iter_mut() {
                *xv *= SMALL;
            }
        }
    }
    for i in r + 1..n {
        x[i] -= tw.uminus[i - 1] * x[i - 1];
        if x[i].abs() > BIG {
            for xv in x.iter_mut() {
                *xv *= SMALL;
            }
        }
    }

    let nrm = dcst_matrix::nrm2(x);
    if nrm > 0.0 && nrm.is_finite() {
        let inv = 1.0 / nrm;
        x.iter_mut().for_each(|v| *v *= inv);
    } else {
        x.fill(0.0);
        x[r] = 1.0;
    }
}

/// Solve `(LDLᵀ − λI) x = b` through the forward stationary-qds
/// factorization `L⁺D⁺L⁺ᵀ` (guarded pivots). Accurate for *isolated*
/// eigenvalues; for numerical multiplets prefer [`solve_twisted`], since a
/// chain of several tiny forward pivots destroys the factorization's
/// accuracy.
pub fn solve_shifted(rep: &Rrr, lam: f64, b: &[f64], x: &mut [f64]) {
    let n = rep.n();
    debug_assert!(b.len() == n && x.len() == n);
    if n == 0 {
        return;
    }
    // Forward factor: D+[i], L+[i].
    let mut dplus = vec![0.0f64; n];
    let mut lplus = vec![0.0f64; n.saturating_sub(1)];
    let mut s = -lam;
    for i in 0..n {
        dplus[i] = guard(s + rep.d[i]);
        if i + 1 < n {
            lplus[i] = rep.d[i] * rep.l[i] / dplus[i];
            s = lplus[i] * rep.l[i] * s - lam;
            if !s.is_finite() {
                s = -lam;
            }
        }
    }
    // Only the solution *direction* matters (inverse iteration), so the
    // partial solution is rescaled whenever it approaches overflow —
    // several near-singular pivots in one factorization (a numerical
    // multiplet) would otherwise push intermediates past 1e308 and the
    // direction would be silently destroyed.
    const BIG: f64 = 1e140;
    const SMALL: f64 = 1e-140;
    // L+ y = b: the running factor `f` tracks how much the computed
    // prefix has been scaled down; unprocessed b entries are multiplied
    // by `f` on entry so the recurrence stays linear.
    let mut f = 1.0f64;
    x[0] = b[0];
    for i in 1..n {
        x[i] = f * b[i] - lplus[i - 1] * x[i - 1];
        if x[i].abs() > BIG {
            for xv in x[..=i].iter_mut() {
                *xv *= SMALL;
            }
            f *= SMALL;
        }
    }
    // D+ z = y (elementwise): scaling the whole vector is always linear.
    for i in 0..n {
        x[i] /= dplus[i];
        if x[i].abs() > BIG {
            for xv in x.iter_mut() {
                *xv *= SMALL;
            }
        }
    }
    // L+ᵀ x = z: the not-yet-processed prefix holds z entries, which the
    // whole-vector rescale keeps consistent with the processed suffix.
    for i in (0..n - 1).rev() {
        x[i] -= lplus[i] * x[i + 1];
        if x[i].abs() > BIG {
            for xv in x.iter_mut() {
                *xv *= SMALL;
            }
        }
    }
    // Return a unit-norm direction.
    let nrm = dcst_matrix::nrm2(x);
    if nrm > 0.0 && nrm.is_finite() {
        let inv = 1.0 / nrm;
        x.iter_mut().for_each(|v| *v *= inv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_tridiag::sturm_count;

    fn reconstruct(rep: &Rrr) -> SymTridiag {
        // LDLᵀ back to tridiagonal entries.
        let n = rep.n();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n.saturating_sub(1)];
        for i in 0..n {
            d[i] = rep.d[i]
                + if i > 0 {
                    rep.l[i - 1] * rep.l[i - 1] * rep.d[i - 1]
                } else {
                    0.0
                };
            if i + 1 < n {
                e[i] = rep.l[i] * rep.d[i];
            }
        }
        SymTridiag::new(d, e)
    }

    #[test]
    fn ldl_roundtrip() {
        let t = SymTridiag::new(vec![4.0, 5.0, 6.0], vec![1.0, 2.0]);
        let rep = ldl_factor(&t, 1.0);
        let back = reconstruct(&rep);
        for i in 0..3 {
            assert!((back.d[i] - (t.d[i] - 1.0)).abs() < 1e-13);
        }
        for i in 0..2 {
            assert!((back.e[i] - t.e[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn stqds_shift_preserves_spectrum_shift() {
        let t = SymTridiag::toeplitz121(10);
        let rep = ldl_factor(&t, -1.0); // T + I, positive definite
        let shifted = stqds_shift(&rep, 0.5);
        let back = reconstruct(&shifted);
        let orig = reconstruct(&rep);
        for i in 0..10 {
            assert!((back.d[i] - (orig.d[i] - 0.5)).abs() < 1e-11, "d[{i}]");
        }
        for i in 0..9 {
            assert!((back.e[i] - orig.e[i]).abs() < 1e-11, "e[{i}]");
        }
    }

    #[test]
    fn qds_count_matches_tridiagonal_count() {
        let t = SymTridiag::toeplitz121(14);
        let sigma = -0.5;
        let rep = ldl_factor(&t, sigma);
        for x in [-0.3, 0.1, 0.9, 2.0, 3.7, 4.6] {
            // count of (T - σ) below x == count of T below x + σ.
            assert_eq!(
                sturm_count_ldl(&rep, x),
                sturm_count(&t, x + sigma),
                "x={x}"
            );
        }
    }

    #[test]
    fn twisted_vector_is_an_eigenvector() {
        let n = 20;
        let t = SymTridiag::toeplitz121(n);
        let (gl, _) = t.gershgorin_bounds();
        let sigma = gl - 0.1;
        let rep = ldl_factor(&t, sigma);
        for k in [0usize, 7, 19] {
            let lam = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            let mut z = vec![0.0; n];
            twisted_vector(&rep, lam - sigma, &mut z);
            // Residual ‖T z − λ z‖ small.
            let mut y = vec![0.0; n];
            t.matvec(&z, &mut y);
            for i in 0..n {
                assert!(
                    (y[i] - lam * z[i]).abs() < 1e-10,
                    "k={k} row {i}: {}",
                    y[i] - lam * z[i]
                );
            }
        }
    }

    #[test]
    fn zero_pivot_guard() {
        // T - σI singular at σ = eigenvalue: factorization still finite.
        let t = SymTridiag::new(vec![1.0, 1.0], vec![0.0]);
        let rep = ldl_factor(&t, 1.0);
        assert!(rep.d.iter().all(|x| x.is_finite()));
        let mut z = vec![0.0; 2];
        twisted_vector(&rep, 0.0, &mut z);
        assert!(dcst_matrix::nrm2(&z) > 0.9);
    }
}
