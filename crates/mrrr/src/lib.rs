//! MRRR (Multiple Relatively Robust Representations) tridiagonal
//! eigensolver — the MR³-SMP-shaped comparator of the paper's Figure 8.
//!
//! Algorithm (after Dhillon; simplified but structurally faithful):
//!
//! 1. all eigenvalues by Sturm-count **bisection** (parallel over index
//!    chunks);
//! 2. a **root representation** `T − σI = L D Lᵀ` with σ outside the
//!    spectrum, so the factorization is positive definite and
//!    componentwise robust;
//! 3. a **representation tree**: eigenvalue groups with small relative
//!    gaps are re-shifted (`L'D'L'ᵀ = LDLᵀ − τI` via the differential
//!    stationary qds transform) until each eigenvalue is relatively well
//!    separated within its representation;
//! 4. each eigenvector from a **twisted factorization** at the position of
//!    the smallest γ (parallel over eigenvectors);
//! 5. stubborn clusters (depth limit, or numerically identical
//!    eigenvalues) fall back to Gram–Schmidt within the cluster — the
//!    pragmatic safety net MR³ implementations also carry.
//!
//! Accuracy is O(n·ε) on orthogonality/residual — one to two digits worse
//! than D&C's O(√n·ε), exactly the contrast the paper's Figure 9 shows.

mod bisect;
mod dqds;
mod rrr;
mod tstein;

pub use bisect::{bisect_all, bisect_range, bisect_refine_ldl};
pub use dqds::dqds_eigenvalues;
pub use rrr::{
    ldl_factor, solve_shifted, solve_twisted, stqds_shift, sturm_count_ldl, twisted_vector,
    twisted_vector_ranked, Rrr,
};
pub use tstein::{lu_factor, solve_u, TridiagLu};

use dcst_matrix::Matrix;
use dcst_tridiag::SymTridiag;
use std::ops::Range;
use std::sync::Arc;

/// Errors from the MRRR driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrrrError {
    NonFinite,
    /// The representation tree failed to separate a cluster and the
    /// fallback also failed (should not happen in practice).
    ClusterFailure {
        first: usize,
        last: usize,
    },
    /// A requested eigenvalue index range is empty or out of bounds —
    /// user input, so a recoverable error rather than an assertion.
    InvalidRange {
        il: usize,
        iu: usize,
        n: usize,
    },
}

impl std::fmt::Display for MrrrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrrrError::NonFinite => write!(f, "matrix contains NaN or infinite entries"),
            MrrrError::ClusterFailure { first, last } => {
                write!(f, "failed to resolve eigenvalue cluster {first}..={last}")
            }
            MrrrError::InvalidRange { il, iu, n } => {
                write!(
                    f,
                    "eigenvalue index range {il}:{iu} invalid for matrix of order {n} \
                     (need il <= iu < n, 0-based)"
                )
            }
        }
    }
}

impl std::error::Error for MrrrError {}

/// Options for [`MrrrSolver`].
#[derive(Clone, Copy, Debug)]
pub struct MrrrOptions {
    /// Worker threads for the bisection and eigenvector phases.
    pub threads: usize,
    /// Relative gap below which neighbouring eigenvalues form a cluster.
    pub reltol: f64,
    /// Maximum representation-tree depth before the Gram–Schmidt fallback.
    pub max_depth: usize,
    /// Compute initial eigenvalues with dqds (MR³-SMP's engine), falling
    /// back to bisection when it fails to converge. `false` forces plain
    /// bisection.
    pub use_dqds: bool,
}

impl Default for MrrrOptions {
    fn default() -> Self {
        MrrrOptions {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            reltol: 1e-3,
            max_depth: 8,
            use_dqds: true,
        }
    }
}

/// The MRRR solver.
pub struct MrrrSolver {
    opts: MrrrOptions,
}

/// One leaf work item: compute eigenvector `idx` from `rep` at the
/// representation-local eigenvalue `lam_local`.
struct VecJob {
    rep: Arc<Rrr>,
    idx: usize,
    lam_local: f64,
    /// Shift of `rep` relative to the original T.
    total_shift: f64,
    /// Gram–Schmidt group id (`usize::MAX` = none).
    gs_group: usize,
    /// Twist rank: members of a fallback group use distinct twists so the
    /// vectors span the cluster's eigenspace.
    twist_rank: usize,
}

impl MrrrSolver {
    pub fn new(opts: MrrrOptions) -> Self {
        MrrrSolver { opts }
    }

    pub fn name(&self) -> &'static str {
        "mrrr"
    }

    /// Eigenvalues only, ascending (dqds with bisection fallback).
    pub fn eigenvalues(&self, t: &SymTridiag) -> Result<Vec<f64>, MrrrError> {
        if t.has_non_finite() {
            return Err(MrrrError::NonFinite);
        }
        if self.opts.use_dqds {
            if let Some(vals) = dqds::dqds_eigenvalues(t) {
                return Ok(vals);
            }
        }
        Ok(bisect_all(t, self.opts.threads))
    }

    /// Full eigen-decomposition: values ascending, orthonormal vectors.
    ///
    /// The matrix is first split into irreducible blocks at negligible
    /// off-diagonals (`dlarra` analogue) — numerically identical
    /// eigenvalues then live in different blocks, whose eigenvectors are
    /// orthogonal by disjoint support.
    pub fn solve(&self, t: &SymTridiag) -> Result<(Vec<f64>, Matrix), MrrrError> {
        let n = t.n();
        if t.has_non_finite() {
            return Err(MrrrError::NonFinite);
        }
        if n == 0 {
            return Ok((vec![], Matrix::zeros(0, 0)));
        }

        // Split at negligible couplings.
        let mut starts = vec![0usize];
        for i in 0..n.saturating_sub(1) {
            let tol = f64::EPSILON * (t.d[i].abs() * t.d[i + 1].abs()).sqrt() + f64::MIN_POSITIVE;
            if t.e[i].abs() <= tol {
                starts.push(i + 1);
            }
        }
        starts.push(n);

        if starts.len() == 2 {
            return self.solve_block(t);
        }

        // Solve each block; merge eigenvalues ascending; scatter columns.
        let mut per_block: Vec<(usize, Vec<f64>, Matrix)> = Vec::new();
        for w in starts.windows(2) {
            let (b0, b1) = (w[0], w[1]);
            let sub = SymTridiag::new(
                t.d[b0..b1].to_vec(),
                t.e[b0..b1.saturating_sub(1).max(b0)].to_vec(),
            );
            let (lam, vloc) = self.solve_block(&sub)?;
            per_block.push((b0, lam, vloc));
        }
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(n); // (block, local col)
        for (bi, (_, lam, _)) in per_block.iter().enumerate() {
            order.extend((0..lam.len()).map(|c| (bi, c)));
        }
        order.sort_by(|&(ba, ca), &(bb, cb)| {
            per_block[ba].1[ca]
                .partial_cmp(&per_block[bb].1[cb])
                .unwrap()
        });
        let mut values = Vec::with_capacity(n);
        let mut v = vec![0.0f64; n * n];
        for (slot, &(bi, c)) in order.iter().enumerate() {
            let (b0, lam, vloc) = &per_block[bi];
            values.push(lam[c]);
            let nb = lam.len();
            v[slot * n + b0..slot * n + b0 + nb].copy_from_slice(vloc.col(c));
        }
        Ok((values, Matrix::from_vec(n, n, v)))
    }

    /// Eigenpairs whose eigenvalues lie in the half-open window
    /// `[lo, hi)`: values ascending plus an `n × k` vector matrix. This is
    /// the subset computation the paper names as MRRR's main asset —
    /// Θ(n·k) instead of Θ(n²) work.
    pub fn solve_window(
        &self,
        t: &SymTridiag,
        lo: f64,
        hi: f64,
    ) -> Result<(Vec<f64>, Matrix), MrrrError> {
        let n = t.n();
        if t.has_non_finite() {
            return Err(MrrrError::NonFinite);
        }
        if n == 0 || hi <= lo {
            return Ok((vec![], Matrix::zeros(n, 0)));
        }
        // Per irreducible block, the window selects a contiguous local
        // index range found by Sturm counts.
        let mut starts = vec![0usize];
        for i in 0..n.saturating_sub(1) {
            let tol = f64::EPSILON * (t.d[i].abs() * t.d[i + 1].abs()).sqrt() + f64::MIN_POSITIVE;
            if t.e[i].abs() <= tol {
                starts.push(i + 1);
            }
        }
        starts.push(n);
        let mut parts: Vec<(usize, Vec<f64>, Matrix)> = Vec::new();
        for w in starts.windows(2) {
            let (b0, b1) = (w[0], w[1]);
            let sub = SymTridiag::new(
                t.d[b0..b1].to_vec(),
                t.e[b0..b1.saturating_sub(1).max(b0)].to_vec(),
            );
            let klo = dcst_tridiag::sturm_count(&sub, lo);
            let khi = dcst_tridiag::sturm_count(&sub, hi);
            if khi > klo {
                let (vals, vecs) = self.solve_block_range(&sub, klo..khi)?;
                parts.push((b0, vals, vecs));
            }
        }
        // Merge ascending across blocks.
        let total: usize = parts.iter().map(|(_, vals, _)| vals.len()).sum();
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(total);
        for (pi, (_, vals, _)) in parts.iter().enumerate() {
            order.extend((0..vals.len()).map(|c| (pi, c)));
        }
        order
            .sort_by(|&(pa, ca), &(pb, cb)| parts[pa].1[ca].partial_cmp(&parts[pb].1[cb]).unwrap());
        let mut values = Vec::with_capacity(total);
        let mut v = vec![0.0f64; n * total];
        for (slot, &(pi, c)) in order.iter().enumerate() {
            let (b0, vals, vecs) = &parts[pi];
            values.push(vals[c]);
            let nb = vecs.rows();
            v[slot * n + b0..slot * n + b0 + nb].copy_from_slice(vecs.col(c));
        }
        Ok((values, Matrix::from_vec(n, total, v)))
    }

    /// Eigenpairs with (0-based, ascending) indices `il..=iu`. Built on
    /// [`solve_window`](Self::solve_window) with cuts at the midpoints to
    /// the neighbouring eigenvalues; when the boundary eigenvalue is part
    /// of a numerically degenerate multiplet, the whole multiplet is
    /// included (the count may then exceed `iu − il + 1`).
    pub fn solve_range(
        &self,
        t: &SymTridiag,
        il: usize,
        iu: usize,
    ) -> Result<(Vec<f64>, Matrix), MrrrError> {
        if il > iu || iu >= t.n() {
            return Err(MrrrError::InvalidRange { il, iu, n: t.n() });
        }
        if t.has_non_finite() {
            return Err(MrrrError::NonFinite);
        }
        let (lo, hi) = self.range_window(t, il, iu)?;
        self.solve_window(t, lo, hi)
    }

    /// Eigenpairs with indices `il..=iu`, trimmed to *exactly*
    /// `iu − il + 1` pairs. [`solve_range`](Self::solve_range) may include
    /// whole multiplets around the boundary indices; this variant counts
    /// how many extra eigenvalues the window admitted below `il` (one
    /// Sturm count) and slices them off both ends. The D&C subset
    /// fallback needs the exact-count contract.
    pub fn solve_range_exact(
        &self,
        t: &SymTridiag,
        il: usize,
        iu: usize,
    ) -> Result<(Vec<f64>, Matrix), MrrrError> {
        if il > iu || iu >= t.n() {
            return Err(MrrrError::InvalidRange { il, iu, n: t.n() });
        }
        if t.has_non_finite() {
            return Err(MrrrError::NonFinite);
        }
        let (lo, hi) = self.range_window(t, il, iu)?;
        let (vals, vecs) = self.solve_window(t, lo, hi)?;
        let kreq = iu - il + 1;
        if vals.len() < kreq {
            return Err(MrrrError::ClusterFailure {
                first: il,
                last: iu,
            });
        }
        // Eigenvalues strictly below the window have index < il, so the
        // window's first pair sits `il - count(lo)` slots before λ_il.
        let lead = il
            .saturating_sub(dcst_tridiag::sturm_count(t, lo))
            .min(vals.len() - kreq);
        let values = vals[lead..lead + kreq].to_vec();
        let n = t.n();
        let mut v = vec![0.0f64; n * kreq];
        for (c, col) in v.chunks_mut(n).enumerate() {
            col.copy_from_slice(vecs.col(lead + c));
        }
        Ok((values, Matrix::from_vec(n, kreq, v)))
    }

    /// The half-open eigenvalue window `[lo, hi)` containing exactly the
    /// spectrum's indices `il..=iu` (plus any boundary multiplets), with
    /// cuts at the midpoints to the neighbouring eigenvalues.
    fn range_window(&self, t: &SymTridiag, il: usize, iu: usize) -> Result<(f64, f64), MrrrError> {
        let n = t.n();
        let (gl, gu) = t.gershgorin_bounds();
        let span = (gu - gl).max(1.0);
        let mut lo = if il == 0 {
            gl - 1e-3 * span
        } else {
            let below = bisect_range(t, il - 1..il + 1, 1)?;
            0.5 * (below[0] + below[1])
        };
        // Boundary-multiplet safeguard: when λ_{il−1} and λ_il are
        // numerically coincident the midpoint can land at-or-above λ_il
        // and the window would miss it. Walk lo down until at most il
        // eigenvalues lie strictly below it; the extra low eigenvalues a
        // wider window admits are trimmed by the callers.
        let mut step = 1e-3 * span;
        while il > 0 && dcst_tridiag::sturm_count(t, lo) > il {
            lo -= step;
            step *= 2.0;
        }
        let mut hi = if iu + 1 == n {
            gu + 1e-3 * span
        } else {
            let above = bisect_range(t, iu..iu + 2, 1)?;
            0.5 * (above[0] + above[1])
        };
        // The half-open window needs hi strictly above λ_iu — note that
        // an absolute nudge (`+ MIN_POSITIVE`) is a no-op for |hi| away
        // from the denormal range, so verify with a Sturm count and walk
        // hi up until at least iu+1 eigenvalues sit below it.
        let mut step = 1e-3 * span;
        while dcst_tridiag::sturm_count(t, hi) <= iu {
            hi += step;
            step *= 2.0;
        }
        Ok((lo, hi))
    }

    /// Solve one irreducible block.
    fn solve_block(&self, t: &SymTridiag) -> Result<(Vec<f64>, Matrix), MrrrError> {
        self.solve_block_range(t, 0..t.n())
    }

    /// Eigenpairs of one irreducible block for the (block-local) index
    /// `range` only — Θ(n·k) work for k selected pairs, the subset
    /// property the paper credits MRRR with. Returns `k` ascending values
    /// and an `n x k` vector matrix.
    fn solve_block_range(
        &self,
        t: &SymTridiag,
        range: Range<usize>,
    ) -> Result<(Vec<f64>, Matrix), MrrrError> {
        let n = t.n();
        let k = range.len();
        if n == 0 || k == 0 {
            return Ok((vec![], Matrix::zeros(n, 0)));
        }
        if n == 1 {
            return Ok((vec![t.d[0]], Matrix::identity(1)));
        }
        let col0 = range.start;

        // 1. the selected eigenvalues of T: dqds for the full spectrum
        // (with bisection fallback), bisection for proper subsets where
        // its Θ(n·k) cost wins.
        let mut lam = vec![0.0f64; n];
        let mut have = false;
        if k == n && self.opts.use_dqds {
            if let Some(vals) = dqds::dqds_eigenvalues(t) {
                lam.copy_from_slice(&vals);
                have = true;
            }
        }
        if !have {
            let lam_sel = bisect_range(t, range.clone(), self.opts.threads)?;
            lam[range.clone()].copy_from_slice(&lam_sel);
        }

        // 2. root representation: shift below the spectrum.
        let (gl, gu) = t.gershgorin_bounds();
        let span = (gu - gl).max(f64::MIN_POSITIVE);
        let sigma = gl - 1e-3 * span;
        let root = Arc::new(ldl_factor(t, sigma));

        // 3. representation tree (sequential — cheap relative to phase 4),
        // producing one VecJob per eigenvector.
        let norm = t.max_norm().max(f64::MIN_POSITIVE);
        let mut jobs: Vec<VecJob> = Vec::with_capacity(n);
        let mut gs_groups = 0usize;
        let lam_local: Vec<f64> = lam.iter().map(|l| l - sigma).collect();
        self.descend(
            root,
            sigma,
            range.clone(),
            &lam_local,
            norm,
            0,
            &mut jobs,
            &mut gs_groups,
        )?;

        // 4. eigenvectors in parallel over jobs (disjoint V columns).
        let mut v = vec![0.0f64; n * k];
        let mut values = vec![0.0f64; k];
        {
            let mut by_col: Vec<Option<&VecJob>> = vec![None; k];
            for job in &jobs {
                by_col[job.idx - col0] = Some(job);
            }
            let nt = self.opts.threads.max(1);
            let mut buckets: Vec<Vec<(usize, &mut [f64], &mut f64)>> =
                (0..nt).map(|_| Vec::new()).collect();
            {
                let mut vrest: &mut [f64] = &mut v;
                let mut lrest: &mut [f64] = &mut values;
                for j in 0..k {
                    let (col, vtail) = std::mem::take(&mut vrest).split_at_mut(n);
                    let (lv, ltail) = std::mem::take(&mut lrest).split_at_mut(1);
                    vrest = vtail;
                    lrest = ltail;
                    buckets[j % nt].push((j, col, &mut lv[0]));
                }
            }
            let by_col = &by_col;
            std::thread::scope(|s| {
                for bucket in buckets {
                    s.spawn(move || {
                        for (j, col, lv) in bucket {
                            let job = by_col[j].expect("every selected eigenvalue has a job");
                            twisted_vector_ranked(&job.rep, job.lam_local, job.twist_rank, col);
                            *lv = job.lam_local + job.total_shift;
                        }
                    });
                }
            });
        }

        // 5. Resolve fallback groups (numerically multiple eigenvalues):
        // keep the twisted vector for the first member, then build the
        // rest of the eigenspace basis by inverse iteration orthogonalized
        // against the earlier members (DSTEIN-style).
        if gs_groups > 0 {
            // Groups hold v COLUMN indices (idx - col0).
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); gs_groups];
            let mut job_of: Vec<usize> = vec![usize::MAX; k];
            for (ji, job) in jobs.iter().enumerate() {
                job_of[job.idx - col0] = ji;
                if job.gs_group != usize::MAX {
                    groups[job.gs_group].push(job.idx - col0);
                }
            }
            for group in groups {
                for (c, &idx) in group.iter().enumerate() {
                    if c == 0 {
                        continue; // twisted vector already in place
                    }
                    let job = &jobs[job_of[idx]];
                    // Inverse iteration on T itself with a partially
                    // pivoted LU — robust through the multiplet's several
                    // near-singular pivots (dstein's approach).
                    // Perturb each member's shift by a few ulps (dstein's
                    // PERTOL): every member then sits at a comparable
                    // distance from the whole multiplet, so the solve
                    // amplifies the full eigenspace instead of letting one
                    // direction dominate and the orthogonalized remainder
                    // collapse.
                    let base = job.lam_local + job.total_shift;
                    let pertol = 16.0 * f64::EPSILON * base.abs().max(1e-3 * norm);
                    let lam_t = base + c as f64 * pertol;
                    let lu = tstein::lu_factor(t, lam_t);
                    // Deterministic pseudo-random start.
                    let mut b: Vec<f64> = (0..n)
                        .map(|i| ((i * 2654435761 + idx * 40503) % 1000) as f64 / 1000.0 - 0.5)
                        .collect();
                    for _ in 0..4 {
                        tstein::solve_u(&lu, &mut b);
                        // Orthogonalize AFTER the solve: the solve
                        // re-amplifies any residual component along the
                        // earlier members, so projecting beforehand is not
                        // enough (this is what DSTEIN does too).
                        for &jb in &group[..c] {
                            let dot = dcst_matrix::dot(&b, &v[jb * n..jb * n + n]);
                            for (x, y) in b.iter_mut().zip(&v[jb * n..jb * n + n]) {
                                *x -= dot * y;
                            }
                        }
                        let nrm = dcst_matrix::nrm2(&b);
                        let inv = 1.0 / nrm.max(f64::MIN_POSITIVE);
                        b.iter_mut().for_each(|x| *x *= inv);
                    }
                    v[idx * n..idx * n + n].copy_from_slice(&b);
                }
                // Final polish: modified Gram-Schmidt over the group.
                gram_schmidt_columns(&mut v, n, &group);
            }
        }

        // 6. Safety net: a cluster can straddle the singleton/cluster
        // boundary, leaving vectors of nearly-identical eigenvalues
        // computed by *different* tree paths correlated. Those vectors
        // all lie in the multiplet's invariant subspace, so Gram–Schmidt
        // over each near-degenerate run restores orthogonality without
        // hurting residuals.
        {
            let scale = norm;
            let mut run = vec![0usize];
            for j in 1..=k {
                let close = j < k
                    && (values[j] - values[j - 1]).abs()
                        <= 1e4 * f64::EPSILON * values[j].abs().max(1e-3 * scale);
                if close {
                    run.push(j);
                } else {
                    if run.len() > 1 {
                        gram_schmidt_columns(&mut v, n, &run);
                    }
                    run.clear();
                    if j < k {
                        run.push(j);
                    }
                }
            }
        }

        // Refinement against per-cluster representations can reorder
        // near-degenerate values by an ulp; restore ascending order.
        if values.windows(2).any(|w| w[0] > w[1]) {
            let mut order: Vec<usize> = (0..k).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
            let mut sv = Vec::with_capacity(k);
            let mut swv = vec![0.0f64; n * k];
            for (slot, &src) in order.iter().enumerate() {
                sv.push(values[src]);
                swv[slot * n..(slot + 1) * n].copy_from_slice(&v[src * n..(src + 1) * n]);
            }
            values = sv;
            v = swv;
        }

        Ok((values, Matrix::from_vec(n, k, v)))
    }

    /// Recursive representation-tree descent over the eigenvalue index
    /// range `range` of representation `rep` (eigenvalues `lam_local`,
    /// relative to `rep`'s origin; `total_shift` maps back to T).
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        rep: Arc<Rrr>,
        total_shift: f64,
        range: Range<usize>,
        lam_local: &[f64],
        norm: f64,
        depth: usize,
        jobs: &mut Vec<VecJob>,
        gs_groups: &mut usize,
    ) -> Result<(), MrrrError> {
        // Partition `range` into singletons and clusters by relative gap.
        let mut i = range.start;
        while i < range.end {
            let mut j = i;
            while j + 1 < range.end {
                let gap = lam_local[j + 1] - lam_local[j];
                let scale = lam_local[j + 1]
                    .abs()
                    .max(lam_local[j].abs())
                    .max(64.0 * f64::EPSILON * norm);
                if gap > self.opts.reltol * scale {
                    break;
                }
                j += 1;
            }
            if j == i {
                // Singleton: refine to high relative accuracy against this
                // representation, then emit a job.
                let lam = bisect_refine_ldl(&rep, i, lam_local[i], norm);
                jobs.push(VecJob {
                    rep: rep.clone(),
                    idx: i,
                    lam_local: lam,
                    total_shift,
                    gs_group: usize::MAX,
                    twist_rank: 0,
                });
            } else {
                // Cluster i..=j.
                let width = lam_local[j] - lam_local[i];
                let tiny_cluster =
                    width <= 4.0 * f64::EPSILON * lam_local[j].abs().max(f64::EPSILON * norm);
                if depth >= self.opts.max_depth || tiny_cluster {
                    // Fallback: twisted vectors at slightly spread
                    // eigenvalues + Gram–Schmidt.
                    let group = *gs_groups;
                    *gs_groups += 1;
                    for (c, idx) in (i..=j).enumerate() {
                        // Refine against THIS representation with the
                        // count-based bracket: each index lands on its own
                        // side even when T-bisection returned identical
                        // values for the pair.
                        let refined = bisect_refine_ldl(&rep, idx, lam_local[idx], norm);
                        jobs.push(VecJob {
                            rep: rep.clone(),
                            idx,
                            lam_local: refined,
                            total_shift,
                            gs_group: group,
                            twist_rank: c,
                        });
                    }
                } else {
                    // Shift to just below (or, failing that, just above)
                    // the cluster, keeping the candidate with the least
                    // element growth (`dlarrf`-style shift selection).
                    let margin = width.max(1e-6 * lam_local[i].abs()).max(f64::MIN_POSITIVE);
                    let candidates = [
                        lam_local[i] - margin,
                        lam_local[i] - 4.0 * margin,
                        lam_local[j] + margin,
                        lam_local[i] - 16.0 * margin,
                    ];
                    let mut best: Option<(Rrr, f64, f64)> = None;
                    for &tau in &candidates {
                        let (child, growth) = crate::rrr::stqds_shift_checked(&rep, tau);
                        if best.as_ref().map(|(_, _, g)| growth < *g).unwrap_or(true) {
                            let acceptable = growth < 64.0 * (j - i + 1) as f64;
                            best = Some((child, tau, growth));
                            if acceptable {
                                break;
                            }
                        }
                    }
                    let (child, tau, growth) = best.expect("candidate list is non-empty");
                    if !growth.is_finite() || growth > 1e8 {
                        // No relatively robust child exists: treat the
                        // cluster as a numerical multiplet (fallback path).
                        let group = *gs_groups;
                        *gs_groups += 1;
                        for (c, idx) in (i..=j).enumerate() {
                            let refined = bisect_refine_ldl(&rep, idx, lam_local[idx], norm);
                            jobs.push(VecJob {
                                rep: rep.clone(),
                                idx,
                                lam_local: refined,
                                total_shift,
                                gs_group: group,
                                twist_rank: c,
                            });
                        }
                        i = j + 1;
                        continue;
                    }
                    let child = Arc::new(child);
                    let mut refined: Vec<f64> = lam_local.iter().map(|l| l - tau).collect();
                    #[allow(clippy::needless_range_loop)]
                    for idx in i..=j {
                        refined[idx] = bisect_refine_ldl(&child, idx, refined[idx], norm);
                    }
                    self.descend(
                        child,
                        total_shift + tau,
                        i..j + 1,
                        &refined,
                        norm,
                        depth + 1,
                        jobs,
                        gs_groups,
                    )?;
                }
            }
            i = j + 1;
        }
        Ok(())
    }
}

/// Modified Gram–Schmidt over the given (ascending) columns of `v` (ld = n).
fn gram_schmidt_columns(v: &mut [f64], n: usize, cols: &[usize]) {
    for (a, &ja) in cols.iter().enumerate() {
        for &jb in &cols[..a] {
            debug_assert!(jb < ja);
            let dot = {
                let cb = &v[jb * n..jb * n + n];
                let ca = &v[ja * n..ja * n + n];
                dcst_matrix::dot(ca, cb)
            };
            let (head, tail) = v.split_at_mut(ja * n);
            let ca = &mut tail[..n];
            let cb = &head[jb * n..jb * n + n];
            for (x, y) in ca.iter_mut().zip(cb) {
                *x -= dot * y;
            }
        }
        let nrm = dcst_matrix::nrm2(&v[ja * n..ja * n + n]);
        if nrm > 1e-6 {
            let inv = 1.0 / nrm;
            v[ja * n..ja * n + n].iter_mut().for_each(|x| *x *= inv);
        } else {
            // The column collapsed (numerically identical eigenvectors):
            // re-seed with a deterministic vector orthogonalized against
            // the group so the basis stays complete.
            for (i, x) in v[ja * n..ja * n + n].iter_mut().enumerate() {
                *x = ((i * 2654435761 + a * 40503) % 1000) as f64 / 1000.0 - 0.5;
            }
            for &jb in &cols[..a] {
                let dot = {
                    let cb = &v[jb * n..jb * n + n];
                    let ca = &v[ja * n..ja * n + n];
                    dcst_matrix::dot(ca, cb)
                };
                let (head, tail) = v.split_at_mut(ja * n);
                for (x, y) in tail[..n].iter_mut().zip(&head[jb * n..jb * n + n]) {
                    *x -= dot * y;
                }
            }
            let nrm = dcst_matrix::nrm2(&v[ja * n..ja * n + n]);
            let inv = 1.0 / nrm.max(f64::MIN_POSITIVE);
            v[ja * n..ja * n + n].iter_mut().for_each(|x| *x *= inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcst_matrix::{orthogonality_error, residual_error};
    use dcst_tridiag::gen::MatrixType;
    use dcst_tridiag::sturm_count;

    fn check(t: &SymTridiag, lam: &[f64], v: &Matrix, tol: f64) {
        assert!(lam.windows(2).all(|w| w[0] <= w[1]), "sorted");
        let orth = orthogonality_error(v);
        assert!(orth < tol, "orthogonality {orth}");
        let res = residual_error(t.n(), |x, y| t.matvec(x, y), lam, v, t.max_norm());
        assert!(res < tol, "residual {res}");
    }

    fn solver() -> MrrrSolver {
        MrrrSolver::new(MrrrOptions {
            threads: 2,
            ..Default::default()
        })
    }

    fn bisect_reference(t: &SymTridiag) -> Vec<f64> {
        let n = t.n();
        let (gl, gu) = t.gershgorin_bounds();
        (0..n)
            .map(|k| {
                let (mut lo, mut hi) = (gl - 1.0, gu + 1.0);
                for _ in 0..200 {
                    let m = 0.5 * (lo + hi);
                    if sturm_count(t, m) > k {
                        hi = m;
                    } else {
                        lo = m;
                    }
                }
                0.5 * (lo + hi)
            })
            .collect()
    }

    #[test]
    fn solves_toeplitz() {
        let n = 60;
        let t = SymTridiag::toeplitz121(n);
        let (lam, v) = solver().solve(&t).unwrap();
        check(&t, &lam, &v, 1e-11);
        for (k, &l) in lam.iter().enumerate() {
            let want = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - want).abs() < 1e-11, "eig {k}: {l} vs {want}");
        }
    }

    #[test]
    fn eigenvalues_match_independent_bisection() {
        let t = MatrixType::Type6.generate(80, 13);
        let lam = solver().eigenvalues(&t).unwrap();
        let lam_ref = bisect_reference(&t);
        for (a, b) in lam.iter().zip(&lam_ref) {
            assert!((a - b).abs() < 1e-10 * t.max_norm(), "{a} vs {b}");
        }
    }

    #[test]
    fn well_separated_types() {
        for ty in [
            MatrixType::Type4,
            MatrixType::Type6,
            MatrixType::Type13,
            MatrixType::Type14,
        ] {
            let t = ty.generate(64, 5);
            let (lam, v) = solver().solve(&t).unwrap();
            check(&t, &lam, &v, 1e-10);
        }
    }

    #[test]
    fn clustered_types() {
        for ty in [MatrixType::Type1, MatrixType::Type2, MatrixType::Type7] {
            let t = ty.generate(48, 5);
            let (lam, v) = solver().solve(&t).unwrap();
            check(&t, &lam, &v, 1e-8);
        }
    }

    #[test]
    fn wilkinson_close_pairs() {
        let t = dcst_tridiag::gen::wilkinson(31);
        let (lam, v) = solver().solve(&t).unwrap();
        check(&t, &lam, &v, 1e-10);
    }

    #[test]
    fn glued_wilkinson_fallback_path() {
        let t = dcst_tridiag::gen::glued_wilkinson(9, 3, 1e-9);
        let (lam, v) = solver().solve(&t).unwrap();
        check(&t, &lam, &v, 1e-8);
    }

    #[test]
    fn trivial_sizes() {
        let (lam, v) = solver().solve(&SymTridiag::new(vec![3.0], vec![])).unwrap();
        assert_eq!(lam, vec![3.0]);
        assert_eq!(v.as_slice(), &[1.0]);
        let (lam, _) = solver().solve(&SymTridiag::new(vec![], vec![])).unwrap();
        assert!(lam.is_empty());
    }

    #[test]
    fn subset_window_matches_full_solve() {
        let t = MatrixType::Type6.generate(90, 31);
        let (full, vfull) = solver().solve(&t).unwrap();
        let (lo, hi) = (full[20] - 1e-9, full[49] + 1e-9);
        let (vals, vecs) = solver().solve_window(&t, lo, hi).unwrap();
        assert_eq!(vals.len(), 30);
        assert_eq!(vecs.cols(), 30);
        for (i, &l) in vals.iter().enumerate() {
            assert!((l - full[20 + i]).abs() < 1e-10 * t.max_norm(), "{l}");
            // Same vector up to sign.
            let dot: f64 = (0..t.n()).map(|r| vecs[(r, i)] * vfull[(r, 20 + i)]).sum();
            assert!(dot.abs() > 1.0 - 1e-8, "column {i} alignment {dot}");
        }
    }

    #[test]
    fn subset_range_by_index() {
        let n = 80;
        let t = SymTridiag::toeplitz121(n);
        let (vals, vecs) = solver().solve_range(&t, 10, 19).unwrap();
        assert_eq!(vals.len(), 10);
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        for (i, &l) in vals.iter().enumerate() {
            let want = 2.0 - 2.0 * ((11 + i) as f64 * h).cos();
            assert!((l - want).abs() < 1e-11, "{l} vs {want}");
        }
        // Orthonormal subset with small residuals.
        for a in 0..10 {
            for b in 0..=a {
                let g: f64 = (0..n).map(|r| vecs[(r, a)] * vecs[(r, b)]).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((g - want).abs() < 1e-11);
            }
            let mut y = vec![0.0; n];
            let col: Vec<f64> = (0..n).map(|r| vecs[(r, a)]).collect();
            t.matvec(&col, &mut y);
            for r in 0..n {
                assert!((y[r] - vals[a] * col[r]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn subset_spanning_blocks() {
        // A reducible matrix: the window must collect pairs across blocks.
        let t = MatrixType::Type2.generate(60, 9);
        let (full, _) = solver().solve(&t).unwrap();
        let (vals, vecs) = solver().solve_window(&t, 0.5, 1.5).unwrap();
        let expect = full.iter().filter(|&&l| (0.5..1.5).contains(&l)).count();
        assert_eq!(vals.len(), expect);
        assert_eq!(vecs.cols(), expect);
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_window() {
        let t = SymTridiag::toeplitz121(12);
        let (vals, vecs) = solver().solve_window(&t, 100.0, 200.0).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.cols(), 0);
    }

    #[test]
    fn rejects_non_finite() {
        let t = SymTridiag::new(vec![f64::NAN, 1.0], vec![0.5]);
        assert_eq!(solver().solve(&t).unwrap_err(), MrrrError::NonFinite);
    }
}
