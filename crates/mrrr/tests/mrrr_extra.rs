//! MRRR behavior coverage: subset semantics, dqds/bisection agreement,
//! representation tools, hard spectra.

use dcst_mrrr::*;
use dcst_tridiag::gen::MatrixType;
use dcst_tridiag::SymTridiag;

fn solver() -> MrrrSolver {
    MrrrSolver::new(MrrrOptions {
        threads: 2,
        ..Default::default()
    })
}

#[test]
fn dqds_and_bisection_agree_through_options() {
    let t = MatrixType::Type5.generate(120, 9);
    let with = MrrrSolver::new(MrrrOptions {
        threads: 2,
        use_dqds: true,
        ..Default::default()
    });
    let without = MrrrSolver::new(MrrrOptions {
        threads: 2,
        use_dqds: false,
        ..Default::default()
    });
    let a = with.eigenvalues(&t).unwrap();
    let b = without.eigenvalues(&t).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-10 * t.max_norm().max(1.0), "{x} vs {y}");
    }
}

#[test]
fn subset_sizes_add_up() {
    let n = 60;
    let t = MatrixType::Type6.generate(n, 11);
    let s = solver();
    let (full, _) = s.solve(&t).unwrap();
    let mut pieces = Vec::new();
    for w in [(0usize, 19usize), (20, 39), (40, 59)] {
        let (vals, vecs) = s.solve_range(&t, w.0, w.1).unwrap();
        assert_eq!(vecs.cols(), vals.len());
        pieces.extend(vals);
    }
    pieces.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(pieces.len(), n);
    for (a, b) in pieces.iter().zip(&full) {
        assert!((a - b).abs() < 1e-10);
    }
}

#[test]
fn window_selects_by_value() {
    let t = SymTridiag::new(vec![1.0, 2.0, 3.0], vec![0.0, 0.0]);
    let s = solver();
    let (vals, _) = s.solve_window(&t, 0.5, 2.5).unwrap();
    assert_eq!(vals.len(), 2);
    assert!((vals[0] - 1.0).abs() < 1e-14 && (vals[1] - 2.0).abs() < 1e-14);
    // An exactly-boundary eigenvalue is counted on the strict-below side
    // (Sturm convention): [2.0, 3.5) keeps 3 but the guarded pivot puts
    // the boundary value 2.0 below the cut.
    let (vals, _) = s.solve_window(&t, 2.0 + 1e-12, 3.5).unwrap();
    assert_eq!(vals.len(), 1);
    assert!((vals[0] - 3.0).abs() < 1e-14);
}

#[test]
fn single_eigenpair_extraction() {
    let n = 100;
    let t = SymTridiag::toeplitz121(n);
    let s = solver();
    let (vals, vecs) = s.solve_range(&t, 50, 50).unwrap();
    assert_eq!(vals.len(), 1);
    let want = 2.0 - 2.0 * (51.0 * std::f64::consts::PI / 101.0).cos();
    assert!((vals[0] - want).abs() < 1e-11);
    // Residual of the single vector.
    let mut y = vec![0.0; n];
    let col: Vec<f64> = (0..n).map(|r| vecs[(r, 0)]).collect();
    t.matvec(&col, &mut y);
    for r in 0..n {
        assert!((y[r] - vals[0] * col[r]).abs() < 1e-11);
    }
}

#[test]
fn extreme_scaling_invariance() {
    // Eigenvalues scale linearly with the matrix.
    let t = MatrixType::Type6.generate(40, 17);
    let scaled = SymTridiag::new(
        t.d.iter().map(|x| x * 1e150).collect(),
        t.e.iter().map(|x| x * 1e150).collect(),
    );
    let s = solver();
    let a = s.eigenvalues(&t).unwrap();
    let b = s.eigenvalues(&scaled).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x * 1e150 - y).abs() < 1e140, "{x} vs {y}");
    }
}

#[test]
fn representation_tools_compose() {
    // LDL factor → stqds shift → sturm counts stay consistent.
    let t = SymTridiag::toeplitz121(30);
    let rep = ldl_factor(&t, -1.0); // T + I
    let shifted = stqds_shift(&rep, 0.7);
    for x in [0.1, 0.5, 1.3, 2.9, 4.4] {
        // count(LDL - 0.7 < x) == count(T + 1 < x + 0.7)
        assert_eq!(
            sturm_count_ldl(&shifted, x),
            dcst_tridiag::sturm_count(&t, x + 0.7 - 1.0),
            "x = {x}"
        );
    }
}

#[test]
fn twisted_vectors_match_qr_reference() {
    let t = MatrixType::Type14.generate(50, 3);
    let (lam_qr, v_qr) = dcst_qriter_reference(&t);
    let (gl, gu) = t.gershgorin_bounds();
    let sigma = gl - 1e-3 * (gu - gl);
    let rep = ldl_factor(&t, sigma);
    // Check a few well-separated interior eigenpairs.
    for &k in &[5usize, 25, 45] {
        let lam = bisect_refine_ldl(&rep, k, lam_qr[k] - sigma, t.max_norm());
        let mut z = vec![0.0; 50];
        twisted_vector(&rep, lam, &mut z);
        let dot: f64 = (0..50).map(|i| z[i] * v_qr[(i, k)]).sum();
        assert!(dot.abs() > 1.0 - 1e-9, "eigenvector {k}: alignment {dot}");
    }
}

fn dcst_qriter_reference(t: &SymTridiag) -> (Vec<f64>, dcst_matrix::Matrix) {
    // An independent reference (no dependency on the workspace's other
    // eigensolvers): cyclic Jacobi on the dense matrix — slow but simple
    // and fully self-contained at 50×50.
    let n = t.n();
    let mut a = t.to_dense();
    let mut v = dcst_matrix::Matrix::identity(n);
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                off += a[(p, q)] * a[(p, q)];
            }
        }
        if off.sqrt() < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let tau = (a[(q, q)] - a[(p, p)]) / (2.0 * apq);
                let tn = dcst_matrix::util::sign(1.0, tau) / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + tn * tn).sqrt();
                let s = tn * c;
                for i in 0..n {
                    let (aip, aiq) = (a[(i, p)], a[(i, q)]);
                    a[(i, p)] = c * aip - s * aiq;
                    a[(i, q)] = s * aip + c * aiq;
                }
                for j in 0..n {
                    let (apj, aqj) = (a[(p, j)], a[(q, j)]);
                    a[(p, j)] = c * apj - s * aqj;
                    a[(q, j)] = s * apj + c * aqj;
                }
                for i in 0..n {
                    let (vip, viq) = (v[(i, p)], v[(i, q)]);
                    v[(i, p)] = c * vip - s * viq;
                    v[(i, q)] = s * vip + c * viq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    let lam: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vs = dcst_matrix::Matrix::zeros(n, n);
    for (col, &(_, src)) in pairs.iter().enumerate() {
        for i in 0..n {
            vs[(i, col)] = v[(i, src)];
        }
    }
    (lam, vs)
}
